//! Convex polygons given as intersections of half-planes.
//!
//! A dual-space MOR query (Proposition 1 / Figure 4 of the paper) is such
//! an intersection. Point-access methods answer it with the
//! linear-constraint search of Goldstein et al. \[18\]: descend the index,
//! classifying each node region against the polygon — fully inside
//! (report the whole subtree), fully outside (prune), or overlapping
//! (recurse). [`ConvexPolygon::relation`] implements that classification
//! *exactly* via the separating-axis theorem.

use crate::{Aabb, HalfPlane, Point2, Rect2, EPS};

/// How a convex query region relates to an axis-aligned cell. Re-exported
/// at the crate root through [`crate::Relation`].
use crate::region::Relation;

/// A **bounded** convex region `⋂ᵢ {a·x + b·y ≤ cᵢ}` with its vertices
/// materialized.
///
/// Boundedness matters: the exact disjointness test uses the polygon's
/// vertex bounding box as the rectangle-axis half of the separating-axis
/// theorem. The paper's query regions are all bounded (velocities are
/// confined to `[v_min, v_max]` and intercepts to a terrain-derived range),
/// and [`ConvexPolygon::new`] enforces this in debug builds by requiring
/// every feasible direction to be capped (a wedge would yield ≤ 1 vertex).
///
/// An *infeasible* constraint set yields an empty polygon, which relates
/// to every cell as [`Relation::Disjoint`].
#[derive(Debug, Clone)]
pub struct ConvexPolygon {
    constraints: Vec<HalfPlane>,
    vertices: Vec<Point2>,
    bbox: Aabb<2>,
}

impl ConvexPolygon {
    /// Builds the polygon from its defining constraints, materializing the
    /// vertex set (pairwise boundary intersections feasible for every
    /// constraint).
    #[must_use]
    pub fn new(constraints: Vec<HalfPlane>) -> Self {
        let vertices = feasible_vertices(&constraints);
        let pts: Vec<[f64; 2]> = vertices.iter().map(|p| [p.x, p.y]).collect();
        let bbox = Aabb::of_points(&pts);
        Self {
            constraints,
            vertices,
            bbox,
        }
    }

    /// The defining constraints.
    #[must_use]
    pub fn constraints(&self) -> &[HalfPlane] {
        &self.constraints
    }

    /// The materialized vertices (unordered).
    #[must_use]
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// Axis-aligned bounding box of the polygon (empty box if infeasible).
    #[must_use]
    pub fn bbox(&self) -> Aabb<2> {
        self.bbox
    }

    /// Whether the region is empty (infeasible constraints).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Whether `p` satisfies every constraint.
    #[must_use]
    pub fn contains_point(&self, p: Point2) -> bool {
        !self.is_empty() && self.constraints.iter().all(|h| h.contains(p))
    }

    /// Exact classification of an axis-aligned cell against the region.
    ///
    /// * [`Relation::Contains`] — the cell lies entirely inside the region
    ///   (every corner satisfies every constraint; convexity does the
    ///   rest);
    /// * [`Relation::Disjoint`] — the cell and region do not intersect
    ///   (separating-axis theorem over the constraint normals and the two
    ///   coordinate axes);
    /// * [`Relation::Overlaps`] — anything else.
    #[must_use]
    pub fn relation(&self, cell: &Rect2) -> Relation {
        if self.is_empty() {
            return Relation::Disjoint;
        }
        let corners = cell.corners();
        // Cell fully inside the region?
        if corners
            .iter()
            .all(|&p| self.constraints.iter().all(|h| h.contains(p)))
        {
            return Relation::Contains;
        }
        // Separating axis among the constraint normals?
        for h in &self.constraints {
            if corners.iter().all(|&p| h.excludes(p)) {
                return Relation::Disjoint;
            }
        }
        // Separating axis among the cell's axes (x / y extents)?
        let cell_box = Aabb::new([cell.lo.x, cell.lo.y], [cell.hi.x, cell.hi.y]);
        if !self.bbox.intersects(&cell_box) {
            return Relation::Disjoint;
        }
        Relation::Overlaps
    }
}

/// Enumerates the vertices of `⋂ constraints`: every pairwise boundary
/// intersection that satisfies all constraints, deduplicated.
fn feasible_vertices(constraints: &[HalfPlane]) -> Vec<Point2> {
    let mut verts: Vec<Point2> = Vec::new();
    for (i, hi) in constraints.iter().enumerate() {
        for hj in &constraints[i + 1..] {
            let Some(p) = hi.boundary_intersection(hj) else {
                continue;
            };
            if !p.x.is_finite() || !p.y.is_finite() {
                continue;
            }
            // Feasibility with a slightly looser tolerance: the point is
            // computed, so it carries rounding error from the solve.
            if constraints.iter().all(|h| h.eval(p) <= 1e-6) {
                let dup = verts
                    .iter()
                    .any(|q| (q.x - p.x).abs() <= EPS && (q.y - p.y).abs() <= EPS);
                if !dup {
                    verts.push(p);
                }
            }
        }
    }
    verts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The unit square as four half-planes.
    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::new(vec![
            HalfPlane::x_ge(0.0),
            HalfPlane::x_le(1.0),
            HalfPlane::y_ge(0.0),
            HalfPlane::y_le(1.0),
        ])
    }

    /// The triangle with vertices (0,0), (2,0), (0,2).
    fn triangle() -> ConvexPolygon {
        ConvexPolygon::new(vec![
            HalfPlane::x_ge(0.0),
            HalfPlane::y_ge(0.0),
            HalfPlane::new(1.0, 1.0, 2.0), // x + y <= 2
        ])
    }

    #[test]
    fn vertices_of_unit_square() {
        let sq = unit_square();
        assert_eq!(sq.vertices().len(), 4);
        assert!(!sq.is_empty());
        let bb = sq.bbox();
        assert_eq!(bb.lo, [0.0, 0.0]);
        assert_eq!(bb.hi, [1.0, 1.0]);
    }

    #[test]
    fn infeasible_is_empty() {
        let p = ConvexPolygon::new(vec![HalfPlane::x_le(0.0), HalfPlane::x_ge(1.0)]);
        assert!(p.is_empty());
        assert_eq!(
            p.relation(&Rect2::from_bounds(-10.0, -10.0, 10.0, 10.0)),
            Relation::Disjoint
        );
        assert!(!p.contains_point(Point2::new(0.5, 0.0)));
    }

    #[test]
    fn point_containment() {
        let t = triangle();
        assert!(t.contains_point(Point2::new(0.5, 0.5)));
        assert!(t.contains_point(Point2::new(0.0, 2.0))); // vertex
        assert!(t.contains_point(Point2::new(1.0, 1.0))); // edge
        assert!(!t.contains_point(Point2::new(1.1, 1.1)));
        assert!(!t.contains_point(Point2::new(-0.1, 0.5)));
    }

    #[test]
    fn relation_contains() {
        let t = triangle();
        let inner = Rect2::from_bounds(0.1, 0.1, 0.5, 0.5);
        assert_eq!(t.relation(&inner), Relation::Contains);
    }

    #[test]
    fn relation_disjoint_by_constraint() {
        let t = triangle();
        // Entirely beyond x + y <= 2.
        let r = Rect2::from_bounds(1.5, 1.5, 2.0, 2.0);
        assert_eq!(t.relation(&r), Relation::Disjoint);
    }

    #[test]
    fn relation_disjoint_by_axis() {
        // Thin diagonal strip around y = x: the cell at (3,0)..(4,1) is
        // beyond the polygon's x-extent even though no single constraint
        // excludes all of its corners.
        let strip = ConvexPolygon::new(vec![
            HalfPlane::new(-1.0, 1.0, 0.2), // y - x <= 0.2
            HalfPlane::new(1.0, -1.0, 0.2), // x - y <= 0.2
            HalfPlane::x_ge(0.0),
            HalfPlane::x_le(2.0),
        ]);
        let r = Rect2::from_bounds(3.0, 0.0, 4.0, 1.0);
        assert_eq!(strip.relation(&r), Relation::Disjoint);
    }

    #[test]
    fn relation_overlaps() {
        let t = triangle();
        let r = Rect2::from_bounds(-1.0, -1.0, 0.5, 0.5); // straddles two edges
        assert_eq!(t.relation(&r), Relation::Overlaps);
        let r2 = Rect2::from_bounds(1.0, 1.0, 3.0, 3.0); // straddles hypotenuse
        assert_eq!(t.relation(&r2), Relation::Overlaps);
    }

    #[test]
    fn degenerate_cell_relation() {
        let t = triangle();
        let point_in = Rect2::point(Point2::new(0.5, 0.5));
        assert_eq!(t.relation(&point_in), Relation::Contains);
        let point_out = Rect2::point(Point2::new(5.0, 5.0));
        assert_eq!(t.relation(&point_out), Relation::Disjoint);
    }
}
