//! 2-D points and rectangles (R\*-tree geometry).

use crate::EPS;

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate (time `t` in the primal plane, velocity `v`
    /// or inverse velocity `1/v` in the dual planes).
    pub x: f64,
    /// Vertical coordinate (location `y` in the primal plane, intercept
    /// `a` or `b` in the dual planes).
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }
}

/// A closed axis-aligned rectangle `[lo.x, hi.x] × [lo.y, hi.y]`.
///
/// Degenerate rectangles (zero width and/or height) are legal — a point
/// MBR is a degenerate rectangle, and the paper's R\*-tree baseline stores
/// MBRs of near-vertical trajectory segments that can be degenerate in `x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect2 {
    /// Lower-left corner.
    pub lo: Point2,
    /// Upper-right corner.
    pub hi: Point2,
}

impl Rect2 {
    /// Creates a rectangle from its corners.
    ///
    /// # Panics
    /// Panics (debug builds) if `lo` exceeds `hi` on either axis.
    #[must_use]
    pub fn new(lo: Point2, hi: Point2) -> Self {
        debug_assert!(lo.x <= hi.x && lo.y <= hi.y, "inverted rectangle");
        Self { lo, hi }
    }

    /// Creates a rectangle from coordinate bounds.
    #[must_use]
    pub fn from_bounds(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    /// The degenerate rectangle covering just `p`.
    #[must_use]
    pub fn point(p: Point2) -> Self {
        Self { lo: p, hi: p }
    }

    /// The smallest rectangle containing both endpoints of a segment.
    #[must_use]
    pub fn of_corners(a: Point2, b: Point2) -> Self {
        Self {
            lo: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Area (zero for degenerate rectangles).
    #[must_use]
    pub fn area(&self) -> f64 {
        (self.hi.x - self.lo.x) * (self.hi.y - self.lo.y)
    }

    /// Half-perimeter; the R\*-tree split heuristic minimizes the sum of
    /// these "margins".
    #[must_use]
    pub fn margin(&self) -> f64 {
        (self.hi.x - self.lo.x) + (self.hi.y - self.lo.y)
    }

    /// Center point.
    #[must_use]
    pub fn center(&self) -> Point2 {
        Point2::new(0.5 * (self.lo.x + self.hi.x), 0.5 * (self.lo.y + self.hi.y))
    }

    /// Whether the closed rectangles intersect (within [`EPS`]).
    #[must_use]
    pub fn intersects(&self, other: &Rect2) -> bool {
        self.lo.x <= other.hi.x + EPS
            && other.lo.x <= self.hi.x + EPS
            && self.lo.y <= other.hi.y + EPS
            && other.lo.y <= self.hi.y + EPS
    }

    /// Whether `self` fully contains `other`.
    #[must_use]
    pub fn contains_rect(&self, other: &Rect2) -> bool {
        self.lo.x <= other.lo.x + EPS
            && self.lo.y <= other.lo.y + EPS
            && other.hi.x <= self.hi.x + EPS
            && other.hi.y <= self.hi.y + EPS
    }

    /// Whether `self` contains the point `p`.
    #[must_use]
    pub fn contains_point(&self, p: Point2) -> bool {
        self.lo.x <= p.x + EPS
            && p.x <= self.hi.x + EPS
            && self.lo.y <= p.y + EPS
            && p.y <= self.hi.y + EPS
    }

    /// The smallest rectangle containing both operands.
    #[must_use]
    pub fn union(&self, other: &Rect2) -> Rect2 {
        Rect2 {
            lo: Point2::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point2::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Area of the intersection (zero if disjoint).
    #[must_use]
    pub fn overlap_area(&self, other: &Rect2) -> f64 {
        let w = (self.hi.x.min(other.hi.x) - self.lo.x.max(other.lo.x)).max(0.0);
        let h = (self.hi.y.min(other.hi.y) - self.lo.y.max(other.lo.y)).max(0.0);
        w * h
    }

    /// Area increase needed to absorb `other` — the R\*-tree
    /// choose-subtree criterion.
    #[must_use]
    pub fn enlargement(&self, other: &Rect2) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared distance between centers (R\*-tree forced-reinsert orders
    /// entries by this).
    #[must_use]
    pub fn center_distance_sq(&self, other: &Rect2) -> f64 {
        let a = self.center();
        let b = other.center();
        let dx = a.x - b.x;
        let dy = a.y - b.y;
        dx * dx + dy * dy
    }

    /// The four corners, counter-clockwise from `lo`.
    #[must_use]
    pub fn corners(&self) -> [Point2; 4] {
        [
            self.lo,
            Point2::new(self.hi.x, self.lo.y),
            self.hi,
            Point2::new(self.lo.x, self.hi.y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect2 {
        Rect2::from_bounds(x0, y0, x1, y1)
    }

    #[test]
    fn area_margin_center() {
        let a = r(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.area(), 8.0);
        assert_eq!(a.margin(), 6.0);
        assert_eq!(a.center(), Point2::new(2.0, 1.0));
    }

    #[test]
    fn degenerate_rect_is_legal() {
        let p = Rect2::point(Point2::new(1.0, 2.0));
        assert_eq!(p.area(), 0.0);
        assert!(p.contains_point(Point2::new(1.0, 2.0)));
        assert!(p.intersects(&r(0.0, 0.0, 3.0, 3.0)));
    }

    #[test]
    fn intersection_and_containment() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        let c = r(2.5, 2.5, 4.0, 4.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
        assert!(a.contains_rect(&r(0.5, 0.5, 1.5, 1.5)));
        assert!(!a.contains_rect(&b));
        // Touching edges count as intersecting (closed rectangles).
        assert!(a.intersects(&r(2.0, 0.0, 3.0, 1.0)));
    }

    #[test]
    fn union_overlap_enlargement() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.union(&b), r(0.0, 0.0, 3.0, 3.0));
        assert!((a.overlap_area(&b) - 1.0).abs() < 1e-12);
        assert!((a.enlargement(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.overlap_area(&r(5.0, 5.0, 6.0, 6.0)), 0.0);
    }

    #[test]
    fn of_corners_normalizes() {
        let s = Rect2::of_corners(Point2::new(3.0, 1.0), Point2::new(1.0, 4.0));
        assert_eq!(s, r(1.0, 1.0, 3.0, 4.0));
    }

    #[test]
    fn corners_ccw() {
        let a = r(0.0, 0.0, 1.0, 2.0);
        let c = a.corners();
        assert_eq!(c[0], Point2::new(0.0, 0.0));
        assert_eq!(c[2], Point2::new(1.0, 2.0));
    }

    #[test]
    fn center_distance() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(3.0, 4.0, 5.0, 6.0);
        assert!((a.center_distance_sq(&b) - 25.0).abs() < 1e-12);
    }
}
