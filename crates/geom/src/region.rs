//! The query-region abstraction used by all point-access methods.
//!
//! The kd-tree (§3.5.1) and partition tree (§3.4) answer both orthogonal
//! *and* simplex queries with the same descend-and-classify search; the
//! only difference is how a node's cell is classified against the query.
//! [`QueryRegion`] captures exactly that interface.

use crate::{Aabb, ConvexPolygon, Rect2};

/// Classification of an index cell against a query region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Cell and region do not intersect: prune the subtree.
    Disjoint,
    /// Cell and region partially overlap: recurse, filtering points.
    Overlaps,
    /// The region fully contains the cell: report the whole subtree.
    Contains,
}

impl Relation {
    /// Combines the relations of independent factors of a product region:
    /// a cell is disjoint from `A × B` iff it is disjoint from a factor,
    /// and contained iff contained in both.
    #[must_use]
    pub fn product(self, other: Relation) -> Relation {
        use Relation::{Contains, Disjoint, Overlaps};
        match (self, other) {
            (Disjoint, _) | (_, Disjoint) => Disjoint,
            (Contains, Contains) => Contains,
            _ => Overlaps,
        }
    }
}

/// A query region over `R^D` that can classify axis-aligned cells.
pub trait QueryRegion<const D: usize> {
    /// Exact (or conservatively `Overlaps`) classification of `cell`.
    fn cell_relation(&self, cell: &Aabb<D>) -> Relation;

    /// Whether the region contains the point `p`.
    fn contains_point(&self, p: &[f64; D]) -> bool;
}

/// Index cells can be half-unbounded (the root cell of a kd-tree covers
/// everything); constraint arithmetic on infinite corners produces NaNs
/// (`0 × ∞`). Clamping to this huge-but-finite universe first is exact for
/// every workload in this repository (coordinates are ≤ 1e7).
const UNIVERSE: f64 = 1e12;

fn clamp_cell_2d(cell: &Aabb<2>) -> Rect2 {
    Rect2::from_bounds(
        cell.lo[0].max(-UNIVERSE),
        cell.lo[1].max(-UNIVERSE),
        cell.hi[0].min(UNIVERSE),
        cell.hi[1].min(UNIVERSE),
    )
}

/// Orthogonal (hyper-rectangle) queries: a box is itself a query region.
impl<const D: usize> QueryRegion<D> for Aabb<D> {
    fn cell_relation(&self, cell: &Aabb<D>) -> Relation {
        if !self.intersects(cell) {
            Relation::Disjoint
        } else if self.contains_box(cell) {
            Relation::Contains
        } else {
            Relation::Overlaps
        }
    }

    fn contains_point(&self, p: &[f64; D]) -> bool {
        self.contains(p)
    }
}

/// Simplex (linear-constraint) queries in the 2-D dual plane.
impl QueryRegion<2> for ConvexPolygon {
    fn cell_relation(&self, cell: &Aabb<2>) -> Relation {
        self.relation(&clamp_cell_2d(cell))
    }

    fn contains_point(&self, p: &[f64; 2]) -> bool {
        self.contains_point(crate::Point2::new(p[0], p[1]))
    }
}

/// The 4-D dual query of §4.2 of the paper.
///
/// A 2-D MOR query maps to a simplex in `(vx, ax, vy, ay)` space whose
/// constraints involve only `(vx, ax)` or only `(vy, ay)`: it is the
/// cartesian product of two planar wedges (the projections onto the
/// `(t, x)` and `(t, y)` planes, as the paper observes). Classifying a 4-D
/// cell therefore reduces exactly to classifying its two planar shadows.
#[derive(Debug, Clone)]
pub struct ProductRegion {
    /// Region over dimensions `(0, 1)` — `(vx, ax)`.
    pub xy: ConvexPolygon,
    /// Region over dimensions `(2, 3)` — `(vy, ay)`.
    pub zw: ConvexPolygon,
}

impl ProductRegion {
    /// Builds the product `xy × zw`.
    #[must_use]
    pub fn new(xy: ConvexPolygon, zw: ConvexPolygon) -> Self {
        Self { xy, zw }
    }
}

impl QueryRegion<4> for ProductRegion {
    fn cell_relation(&self, cell: &Aabb<4>) -> Relation {
        let shadow_xy = Aabb::new([cell.lo[0], cell.lo[1]], [cell.hi[0], cell.hi[1]]);
        let shadow_zw = Aabb::new([cell.lo[2], cell.lo[3]], [cell.hi[2], cell.hi[3]]);
        let r1 = QueryRegion::<2>::cell_relation(&self.xy, &shadow_xy);
        if r1 == Relation::Disjoint {
            return Relation::Disjoint;
        }
        r1.product(QueryRegion::<2>::cell_relation(&self.zw, &shadow_zw))
    }

    fn contains_point(&self, p: &[f64; 4]) -> bool {
        QueryRegion::<2>::contains_point(&self.xy, &[p[0], p[1]])
            && QueryRegion::<2>::contains_point(&self.zw, &[p[2], p[3]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HalfPlane;

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> ConvexPolygon {
        ConvexPolygon::new(vec![
            HalfPlane::x_ge(x0),
            HalfPlane::x_le(x1),
            HalfPlane::y_ge(y0),
            HalfPlane::y_le(y1),
        ])
    }

    #[test]
    fn relation_product_table() {
        use Relation::{Contains, Disjoint, Overlaps};
        assert_eq!(Disjoint.product(Contains), Disjoint);
        assert_eq!(Contains.product(Disjoint), Disjoint);
        assert_eq!(Contains.product(Contains), Contains);
        assert_eq!(Contains.product(Overlaps), Overlaps);
        assert_eq!(Overlaps.product(Overlaps), Overlaps);
    }

    #[test]
    fn aabb_as_region() {
        let q = Aabb::new([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(
            q.cell_relation(&Aabb::new([0.5, 0.5], [1.0, 1.0])),
            Relation::Contains
        );
        assert_eq!(
            q.cell_relation(&Aabb::new([3.0, 3.0], [4.0, 4.0])),
            Relation::Disjoint
        );
        assert_eq!(
            q.cell_relation(&Aabb::new([1.0, 1.0], [3.0, 3.0])),
            Relation::Overlaps
        );
        assert!(QueryRegion::<2>::contains_point(&q, &[1.0, 1.0]));
    }

    #[test]
    fn polygon_region_on_unbounded_cell() {
        let sq = square(0.0, 0.0, 1.0, 1.0);
        // The root cell of a kd-tree: everything.
        let root: Aabb<2> = Aabb::everything();
        assert_eq!(
            QueryRegion::<2>::cell_relation(&sq, &root),
            Relation::Overlaps
        );
        // A half-unbounded cell clearly to the right of the square.
        let right = Aabb::new([5.0, f64::NEG_INFINITY], [f64::INFINITY, f64::INFINITY]);
        assert_eq!(
            QueryRegion::<2>::cell_relation(&sq, &right),
            Relation::Disjoint
        );
    }

    #[test]
    fn product_region_4d() {
        let r = ProductRegion::new(square(0.0, 0.0, 1.0, 1.0), square(10.0, 10.0, 11.0, 11.0));
        assert!(r.contains_point(&[0.5, 0.5, 10.5, 10.5]));
        assert!(!r.contains_point(&[0.5, 0.5, 9.0, 10.5]));

        let inside = Aabb::new([0.2, 0.2, 10.2, 10.2], [0.8, 0.8, 10.8, 10.8]);
        assert_eq!(r.cell_relation(&inside), Relation::Contains);

        let off_in_zw = Aabb::new([0.2, 0.2, 20.0, 20.0], [0.8, 0.8, 21.0, 21.0]);
        assert_eq!(r.cell_relation(&off_in_zw), Relation::Disjoint);

        let straddle = Aabb::new([0.5, 0.5, 10.5, 10.5], [2.0, 0.8, 10.8, 10.8]);
        assert_eq!(r.cell_relation(&straddle), Relation::Overlaps);
    }
}
