//! # mobidx-geom — computational-geometry kernel for mobile-object indexing
//!
//! Geometry primitives shared by every index in the reproduction of
//! "On Indexing Mobile Objects" (PODS '99):
//!
//! * [`Point2`] / [`Rect2`] — the primal `(t, y)` plane and the dual
//!   Hough planes are both 2-D; the R\*-tree baseline stores segment MBRs
//!   as [`Rect2`]s.
//! * [`Aabb`] — `D`-dimensional axis-aligned boxes for the kd-tree and
//!   partition-tree point-access methods (2-D for the 1-D MOR problem,
//!   4-D for the 2-D problem of §4.2).
//! * [`HalfPlane`] / [`ConvexPolygon`] — linear-constraint query regions.
//!   Proposition 1 of the paper expresses the MOR query as a conjunction of
//!   linear constraints in the dual plane; the indexes answer it with the
//!   simplex-search technique of Goldstein et al. \[18\], which needs exact
//!   *region–rectangle* classification ([`Relation`]).
//! * [`Segment`] — line segments in the primal plane (trajectory MBR
//!   construction, route networks of §4.1).
//!
//! All classification predicates use a small absolute tolerance
//! ([`EPS`]) so that objects lying exactly on a query boundary are
//! reported — the convention the paper's brute-force semantics implies.

mod aabb;
mod halfplane;
mod polygon;
mod rect;
mod region;
mod segment;

pub use aabb::Aabb;
pub use halfplane::HalfPlane;
pub use polygon::ConvexPolygon;
pub use rect::{Point2, Rect2};
pub use region::{ProductRegion, QueryRegion, Relation};
pub use segment::Segment;

/// Absolute tolerance for boundary classification.
///
/// Coordinates in the paper's workloads are O(10³) (terrain `[0, 1000]`,
/// times up to a few thousand instants), so `1e-9` absolute is ~`1e-12`
/// relative — far below any meaningful geometric distinction while
/// absorbing `f64` rounding in the constraint arithmetic.
pub const EPS: f64 = 1e-9;

// Compile-time sanity: EPS must be far below any workload coordinate
// distinction while remaining representable next to terrain-scale values.
const _: () = assert!(EPS < 1e-6);
