//! Line segments in the primal plane.
//!
//! Used by the R\*-tree baseline of §3.1/§5 (does this trajectory segment
//! actually cross the query rectangle, or only its MBR?) and by the route
//! networks of §4.1 (clipping a route against the query's spatial
//! predicate).

use crate::{Point2, Rect2, EPS};

/// A closed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// One endpoint.
    pub a: Point2,
    /// The other endpoint.
    pub b: Point2,
}

impl Segment {
    /// Creates a segment.
    #[must_use]
    pub fn new(a: Point2, b: Point2) -> Self {
        Self { a, b }
    }

    /// The segment's minimum bounding rectangle.
    #[must_use]
    pub fn mbr(&self) -> Rect2 {
        Rect2::of_corners(self.a, self.b)
    }

    /// Euclidean length.
    #[must_use]
    pub fn length(&self) -> f64 {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        dx.hypot(dy)
    }

    /// The point at parameter `s ∈ [0, 1]` along the segment.
    #[must_use]
    pub fn at(&self, s: f64) -> Point2 {
        Point2::new(
            self.a.x + s * (self.b.x - self.a.x),
            self.a.y + s * (self.b.y - self.a.y),
        )
    }

    /// Whether the segment intersects the closed rectangle.
    ///
    /// Liang–Barsky clipping: the segment meets the rectangle iff the
    /// parameter interval `[0, 1]` clipped by the four slabs is non-empty.
    #[must_use]
    pub fn intersects_rect(&self, r: &Rect2) -> bool {
        self.clip_to_rect(r).is_some()
    }

    /// Clips the segment to the rectangle, returning the surviving
    /// parameter interval `(s_enter, s_exit) ⊆ [0, 1]`, or `None` if the
    /// segment misses the rectangle.
    #[must_use]
    pub fn clip_to_rect(&self, r: &Rect2) -> Option<(f64, f64)> {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        let mut t0 = 0.0_f64;
        let mut t1 = 1.0_f64;
        // Each slab contributes p·t <= q.
        let checks = [
            (-dx, self.a.x - r.lo.x), // x >= lo.x
            (dx, r.hi.x - self.a.x),  // x <= hi.x
            (-dy, self.a.y - r.lo.y), // y >= lo.y
            (dy, r.hi.y - self.a.y),  // y <= hi.y
        ];
        for (p, q) in checks {
            if p.abs() < EPS {
                // Parallel to this slab: inside or outside for all t.
                if q < -EPS {
                    return None;
                }
            } else {
                let t = q / p;
                if p < 0.0 {
                    if t > t1 + EPS {
                        return None;
                    }
                    t0 = t0.max(t);
                } else {
                    if t < t0 - EPS {
                        return None;
                    }
                    t1 = t1.min(t);
                }
            }
        }
        if t0 <= t1 + EPS {
            Some((t0.clamp(0.0, 1.0), t1.clamp(0.0, 1.0)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(x0: f64, y0: f64, x1: f64, y1: f64) -> Segment {
        Segment::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    #[test]
    fn mbr_and_length() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.mbr(), Rect2::from_bounds(0.0, 0.0, 3.0, 4.0));
    }

    #[test]
    fn at_interpolates() {
        let s = seg(0.0, 0.0, 2.0, 4.0);
        let m = s.at(0.5);
        assert!((m.x - 1.0).abs() < 1e-12);
        assert!((m.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_segment_intersects() {
        let r = Rect2::from_bounds(0.0, 0.0, 2.0, 2.0);
        assert!(seg(-1.0, 1.0, 3.0, 1.0).intersects_rect(&r));
        assert!(seg(-1.0, -1.0, 3.0, 3.0).intersects_rect(&r)); // diagonal through
        assert!(seg(0.5, 0.5, 1.5, 1.5).intersects_rect(&r)); // fully inside
    }

    #[test]
    fn mbr_overlap_without_true_intersection() {
        // Segment whose MBR overlaps the rect but which itself passes by —
        // exactly the false positive the paper's R*-tree baseline suffers.
        let r = Rect2::from_bounds(0.0, 0.0, 1.0, 1.0);
        let s = seg(-1.0, 0.5, 0.5, 2.5);
        assert!(s.mbr().intersects(&r));
        assert!(!s.intersects_rect(&r));
    }

    #[test]
    fn parallel_outside_misses() {
        let r = Rect2::from_bounds(0.0, 0.0, 2.0, 2.0);
        assert!(!seg(-1.0, 3.0, 3.0, 3.0).intersects_rect(&r));
        assert!(!seg(3.0, -1.0, 3.0, 3.0).intersects_rect(&r));
    }

    #[test]
    fn touching_boundary_counts() {
        let r = Rect2::from_bounds(0.0, 0.0, 2.0, 2.0);
        assert!(seg(-1.0, 2.0, 3.0, 2.0).intersects_rect(&r)); // along top edge
        assert!(seg(2.0, 2.0, 3.0, 3.0).intersects_rect(&r)); // corner touch
    }

    #[test]
    fn clip_interval() {
        let r = Rect2::from_bounds(0.0, 0.0, 2.0, 2.0);
        let s = seg(-2.0, 1.0, 4.0, 1.0);
        let (t0, t1) = s.clip_to_rect(&r).unwrap();
        assert!((s.at(t0).x - 0.0).abs() < 1e-9);
        assert!((s.at(t1).x - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_point_segment() {
        let r = Rect2::from_bounds(0.0, 0.0, 2.0, 2.0);
        assert!(seg(1.0, 1.0, 1.0, 1.0).intersects_rect(&r));
        assert!(!seg(5.0, 5.0, 5.0, 5.0).intersects_rect(&r));
    }
}
