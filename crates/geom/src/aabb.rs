//! `D`-dimensional axis-aligned bounding boxes.
//!
//! The kd-tree point-access method (§3.5.1) works in the 2-D dual Hough-X
//! plane; the full 2-D problem (§4.2) maps objects to points
//! `(vx, ax, vy, ay)` in 4-D. Both are served by one const-generic box
//! type.

use crate::EPS;

/// A closed axis-aligned box `∏ᵢ [lo[i], hi[i]]` in `D` dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb<const D: usize> {
    /// Per-axis lower bounds.
    pub lo: [f64; D],
    /// Per-axis upper bounds.
    pub hi: [f64; D],
}

impl<const D: usize> Aabb<D> {
    /// Creates a box from per-axis bounds.
    ///
    /// # Panics
    /// Panics (debug builds) if any axis is inverted.
    #[must_use]
    pub fn new(lo: [f64; D], hi: [f64; D]) -> Self {
        debug_assert!(
            lo.iter().zip(&hi).all(|(l, h)| l <= h),
            "inverted box: {lo:?} .. {hi:?}"
        );
        Self { lo, hi }
    }

    /// The box covering all of `R^D`.
    #[must_use]
    pub fn everything() -> Self {
        Self {
            lo: [f64::NEG_INFINITY; D],
            hi: [f64::INFINITY; D],
        }
    }

    /// The empty box (used as a fold seed for [`Aabb::union`]).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            lo: [f64::INFINITY; D],
            hi: [f64::NEG_INFINITY; D],
        }
    }

    /// Whether this is the (canonical) empty box.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(l, h)| l > h)
    }

    /// The degenerate box covering just `p`.
    #[must_use]
    pub fn point(p: [f64; D]) -> Self {
        Self { lo: p, hi: p }
    }

    /// The smallest box covering every point in `pts` (empty box for an
    /// empty slice).
    #[must_use]
    pub fn of_points(pts: &[[f64; D]]) -> Self {
        let mut b = Self::empty();
        for p in pts {
            b.extend(*p);
        }
        b
    }

    /// Grows the box to cover `p`.
    pub fn extend(&mut self, p: [f64; D]) {
        for (i, &coord) in p.iter().enumerate() {
            self.lo[i] = self.lo[i].min(coord);
            self.hi[i] = self.hi[i].max(coord);
        }
    }

    /// Whether the box contains `p` (closed, within [`EPS`]).
    #[must_use]
    pub fn contains(&self, p: &[f64; D]) -> bool {
        (0..D).all(|i| self.lo[i] <= p[i] + EPS && p[i] <= self.hi[i] + EPS)
    }

    /// Whether the closed boxes intersect.
    #[must_use]
    pub fn intersects(&self, other: &Self) -> bool {
        (0..D).all(|i| self.lo[i] <= other.hi[i] + EPS && other.lo[i] <= self.hi[i] + EPS)
    }

    /// Whether `self` fully contains `other`.
    #[must_use]
    pub fn contains_box(&self, other: &Self) -> bool {
        (0..D).all(|i| self.lo[i] <= other.lo[i] + EPS && other.hi[i] <= self.hi[i] + EPS)
    }

    /// The smallest box containing both operands.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for i in 0..D {
            lo[i] = lo[i].min(other.lo[i]);
            hi[i] = hi[i].max(other.hi[i]);
        }
        Self { lo, hi }
    }

    /// Splits the box along `axis` at `at`, returning `(low, high)` halves.
    ///
    /// # Panics
    /// Panics (debug builds) if `at` lies outside the box on `axis`.
    #[must_use]
    pub fn split(&self, axis: usize, at: f64) -> (Self, Self) {
        debug_assert!(self.lo[axis] <= at && at <= self.hi[axis]);
        let mut left = *self;
        let mut right = *self;
        left.hi[axis] = at;
        right.lo[axis] = at;
        (left, right)
    }

    /// Side length on `axis`.
    #[must_use]
    pub fn extent(&self, axis: usize) -> f64 {
        self.hi[axis] - self.lo[axis]
    }

    /// The axis with the largest extent.
    #[must_use]
    pub fn longest_axis(&self) -> usize {
        (0..D)
            .max_by(|&a, &b| {
                self.extent(a)
                    .partial_cmp(&self.extent(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_intersects_2d() {
        let b = Aabb::new([0.0, 0.0], [2.0, 3.0]);
        assert!(b.contains(&[1.0, 1.0]));
        assert!(b.contains(&[2.0, 3.0])); // closed boundary
        assert!(!b.contains(&[2.1, 1.0]));
        assert!(b.intersects(&Aabb::new([2.0, 3.0], [4.0, 5.0]))); // corner touch
        assert!(!b.intersects(&Aabb::new([3.0, 0.0], [4.0, 1.0])));
    }

    #[test]
    fn everything_contains_all() {
        let e: Aabb<4> = Aabb::everything();
        assert!(e.contains(&[1e300, -1e300, 0.0, 42.0]));
        assert!(!e.is_empty());
    }

    #[test]
    fn empty_box_folds() {
        let pts = [[1.0, 5.0], [3.0, 2.0], [-1.0, 4.0]];
        let b = Aabb::of_points(&pts);
        assert_eq!(b.lo, [-1.0, 2.0]);
        assert_eq!(b.hi, [3.0, 5.0]);
        assert!(Aabb::<2>::of_points(&[]).is_empty());
    }

    #[test]
    fn split_partitions() {
        let b = Aabb::new([0.0, 0.0], [4.0, 4.0]);
        let (l, r) = b.split(0, 1.5);
        assert_eq!(l.hi[0], 1.5);
        assert_eq!(r.lo[0], 1.5);
        assert_eq!(l.lo, b.lo);
        assert_eq!(r.hi, b.hi);
    }

    #[test]
    fn longest_axis_4d() {
        let b = Aabb::new([0.0; 4], [1.0, 5.0, 2.0, 4.0]);
        assert_eq!(b.longest_axis(), 1);
    }

    #[test]
    fn union_and_contains_box() {
        let a = Aabb::new([0.0, 0.0], [1.0, 1.0]);
        let b = Aabb::new([2.0, -1.0], [3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&b));
        assert!(!a.contains_box(&b));
    }
}
