//! Half-planes: one linear constraint `a·x + b·y ≤ c`.
//!
//! Proposition 1 of the paper writes the 1-D MOR query as the conjunction
//! of four such constraints in the dual Hough-X plane (`x = v`, `y = a`).

use crate::{Point2, EPS};

/// The closed half-plane `{ (x, y) : a·x + b·y ≤ c }`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfPlane {
    /// Coefficient of `x`.
    pub a: f64,
    /// Coefficient of `y`.
    pub b: f64,
    /// Right-hand side.
    pub c: f64,
}

impl HalfPlane {
    /// Creates the constraint `a·x + b·y ≤ c`.
    ///
    /// # Panics
    /// Panics (debug builds) on the degenerate constraint `a = b = 0`.
    #[must_use]
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        debug_assert!(a != 0.0 || b != 0.0, "degenerate half-plane");
        Self { a, b, c }
    }

    /// The vertical constraint `x ≤ c` (used for velocity bounds
    /// `v ≤ v_max` etc.).
    #[must_use]
    pub fn x_le(c: f64) -> Self {
        Self::new(1.0, 0.0, c)
    }

    /// The vertical constraint `x ≥ c`, i.e. `-x ≤ -c`.
    #[must_use]
    pub fn x_ge(c: f64) -> Self {
        Self::new(-1.0, 0.0, -c)
    }

    /// The horizontal constraint `y ≤ c`.
    #[must_use]
    pub fn y_le(c: f64) -> Self {
        Self::new(0.0, 1.0, c)
    }

    /// The horizontal constraint `y ≥ c`.
    #[must_use]
    pub fn y_ge(c: f64) -> Self {
        Self::new(0.0, -1.0, -c)
    }

    /// Signed violation of the constraint at `p` (≤ 0 means satisfied).
    #[must_use]
    pub fn eval(&self, p: Point2) -> f64 {
        self.a * p.x + self.b * p.y - self.c
    }

    /// Whether `p` satisfies the constraint (within [`EPS`]).
    #[must_use]
    pub fn contains(&self, p: Point2) -> bool {
        self.eval(p) <= EPS
    }

    /// Whether `p` strictly violates the constraint (beyond [`EPS`]).
    #[must_use]
    pub fn excludes(&self, p: Point2) -> bool {
        self.eval(p) > EPS
    }

    /// Intersection point of the boundary lines of two constraints, or
    /// `None` if (numerically) parallel.
    #[must_use]
    pub fn boundary_intersection(&self, other: &HalfPlane) -> Option<Point2> {
        let det = self.a * other.b - other.a * self.b;
        if det.abs() < 1e-15 {
            return None;
        }
        let x = (self.c * other.b - other.c * self.b) / det;
        let y = (self.a * other.c - other.a * self.c) / det;
        Some(Point2::new(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_constraints() {
        let p = Point2::new(2.0, 3.0);
        assert!(HalfPlane::x_le(2.0).contains(p));
        assert!(HalfPlane::x_le(1.9).excludes(p));
        assert!(HalfPlane::x_ge(2.0).contains(p));
        assert!(HalfPlane::y_le(3.5).contains(p));
        assert!(HalfPlane::y_ge(3.5).excludes(p));
    }

    #[test]
    fn general_constraint() {
        // y <= x + 1, i.e. -x + y <= 1.
        let h = HalfPlane::new(-1.0, 1.0, 1.0);
        assert!(h.contains(Point2::new(0.0, 1.0))); // on boundary
        assert!(h.contains(Point2::new(0.0, 0.0)));
        assert!(h.excludes(Point2::new(0.0, 2.0)));
    }

    #[test]
    fn boundary_intersection() {
        let h1 = HalfPlane::x_le(2.0); // boundary x = 2
        let h2 = HalfPlane::new(-1.0, 1.0, 1.0); // boundary y = x + 1
        let p = h1.boundary_intersection(&h2).unwrap();
        assert!((p.x - 2.0).abs() < 1e-12);
        assert!((p.y - 3.0).abs() < 1e-12);
        // Parallel boundaries have no intersection.
        assert!(HalfPlane::x_le(1.0)
            .boundary_intersection(&HalfPlane::x_ge(0.0))
            .is_none());
    }
}
