//! Property tests for the geometry kernel: the classification predicates
//! must agree with definitional (point-sampling / algebraic) oracles.

use mobidx_geom::{Aabb, ConvexPolygon, HalfPlane, Point2, QueryRegion, Rect2, Relation, Segment};
use proptest::prelude::*;

fn rect_strategy() -> impl Strategy<Value = Rect2> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.0f64..80.0,
        0.0f64..80.0,
    )
        .prop_map(|(x, y, w, h)| Rect2::from_bounds(x, y, x + w, y + h))
}

fn point_strategy() -> impl Strategy<Value = Point2> {
    (-150.0f64..150.0, -150.0f64..150.0).prop_map(|(x, y)| Point2::new(x, y))
}

/// A random bounded convex polygon: an axis box plus up to 3 extra cuts.
fn polygon_strategy() -> impl Strategy<Value = ConvexPolygon> {
    (
        rect_strategy(),
        prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -80.0f64..80.0), 0..3),
    )
        .prop_map(|(r, cuts)| {
            let mut hs = vec![
                HalfPlane::x_ge(r.lo.x),
                HalfPlane::x_le(r.hi.x),
                HalfPlane::y_ge(r.lo.y),
                HalfPlane::y_le(r.hi.y),
            ];
            for (a, b, c) in cuts {
                if a.abs() + b.abs() > 0.1 {
                    hs.push(HalfPlane::new(a, b, c));
                }
            }
            ConvexPolygon::new(hs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rect operations agree with coordinate arithmetic.
    #[test]
    fn rect_union_contains_operands(a in rect_strategy(), b in rect_strategy()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn rect_overlap_is_symmetric_and_bounded(a in rect_strategy(), b in rect_strategy()) {
        let o = a.overlap_area(&b);
        prop_assert!((o - b.overlap_area(&a)).abs() < 1e-9);
        prop_assert!(o <= a.area() + 1e-9);
        prop_assert!(o <= b.area() + 1e-9);
        prop_assert_eq!(o > 0.0, a.intersects(&b) &&
            (a.hi.x - b.lo.x).min(b.hi.x - a.lo.x) > 0.0 &&
            (a.hi.y - b.lo.y).min(b.hi.y - a.lo.y) > 0.0);
    }

    /// Polygon cell classification is sound w.r.t. point membership.
    #[test]
    fn polygon_relation_sound(poly in polygon_strategy(), cell in rect_strategy(),
                              sx in 0.0f64..1.0, sy in 0.0f64..1.0) {
        let cell_box = Aabb::new([cell.lo.x, cell.lo.y], [cell.hi.x, cell.hi.y]);
        let rel = QueryRegion::<2>::cell_relation(&poly, &cell_box);
        // Any sampled point of the cell obeys the classification.
        let p = Point2::new(
            cell.lo.x + sx * (cell.hi.x - cell.lo.x),
            cell.lo.y + sy * (cell.hi.y - cell.lo.y),
        );
        match rel {
            Relation::Contains => prop_assert!(poly.contains_point(p)),
            Relation::Disjoint => prop_assert!(
                // Interior points must be outside (boundary EPS slack).
                !poly.contains_point(p) || on_cell_boundary(&cell, p),
            ),
            Relation::Overlaps => {} // no constraint on single samples
        }
        // Vertices of the polygon inside the cell force non-disjoint.
        if poly.vertices().iter().any(|&v| strictly_inside(&cell, v)) {
            prop_assert_ne!(rel, Relation::Disjoint);
        }
    }

    /// Segment–rectangle intersection agrees with dense sampling.
    #[test]
    fn segment_rect_intersection_sound(a in point_strategy(), b in point_strategy(),
                                       r in rect_strategy()) {
        let seg = Segment::new(a, b);
        let hit = seg.intersects_rect(&r);
        let sampled = (0..=64).any(|i| {
            let p = seg.at(f64::from(i) / 64.0);
            strictly_inside(&r, p)
        });
        // Sampling finds a strictly interior point => must intersect.
        if sampled {
            prop_assert!(hit, "sampled interior point but intersects_rect=false");
        }
        // Clip interval endpoints lie in (or on) the rectangle.
        if let Some((t0, t1)) = seg.clip_to_rect(&r) {
            prop_assert!(t0 <= t1 + 1e-9);
            for t in [t0, t1] {
                let p = seg.at(t);
                prop_assert!(r.contains_point(p),
                    "clip endpoint {:?} outside rect {:?}", p, r);
            }
        }
    }

    /// Aabb splits partition exactly.
    #[test]
    fn aabb_split_partitions(cell in rect_strategy(), frac in 0.0f64..1.0, axis in 0usize..2,
                             p in point_strategy()) {
        let cell = Aabb::new([cell.lo.x, cell.lo.y], [cell.hi.x, cell.hi.y]);
        let at = cell.lo[axis] + frac * (cell.hi[axis] - cell.lo[axis]);
        let (l, r) = cell.split(axis, at);
        let pt = [p.x, p.y];
        if cell.contains(&pt) {
            prop_assert!(l.contains(&pt) || r.contains(&pt));
        }
        prop_assert!(cell.contains_box(&l));
        prop_assert!(cell.contains_box(&r));
    }
}

fn strictly_inside(r: &Rect2, p: Point2) -> bool {
    r.lo.x + 1e-7 < p.x && p.x < r.hi.x - 1e-7 && r.lo.y + 1e-7 < p.y && p.y < r.hi.y - 1e-7
}

fn on_cell_boundary(r: &Rect2, p: Point2) -> bool {
    !strictly_inside(r, p)
}
