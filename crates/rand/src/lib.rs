//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no access to a crates.io mirror, so the real
//! `rand` cannot be downloaded. This shim is patched over `crates-io` in
//! the workspace manifest and implements the subset the workspace uses:
//!
//! * [`rngs::SmallRng`] + [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive);
//! * [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic
//! per seed, with distribution quality far beyond what the workload
//! simulators and property tests require. It does **not** reproduce the
//! exact streams of the real `rand` crate; all in-repo consumers treat
//! seeds as opaque, so only determinism matters.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling, as a blanket extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(&mut Sampler(self))
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_open(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Uniform integer in `[0, n)` by widening multiply.
fn uniform_u64<G: RngCore + ?Sized>(rng: &mut G, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

/// Uniform float in `[0, 1)` (`unit = false`) or `[0, 1]` (`unit = true`).
fn unit_f64<G: RngCore + ?Sized>(rng: &mut G, inclusive: bool) -> f64 {
    let bits = rng.next_u64() >> 11; // 53 significant bits
    #[allow(clippy::cast_precision_loss)]
    if inclusive {
        bits as f64 / ((1u64 << 53) - 1) as f64
    } else {
        bits as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn unit_open<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    unit_f64(rng, false)
}

/// Object-safe sampling facade handed to [`SampleRange`] impls.
pub struct Sampler<'a>(&'a mut dyn RngCore);

impl Sampler<'_> {
    /// Uniform integer in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        uniform_u64(self.0, n)
    }

    /// Uniform float in `[0, 1)` / `[0, 1]`.
    fn unit(&mut self, inclusive: bool) -> f64 {
        unit_f64(self.0, inclusive)
    }

    /// The next 64 random bits.
    fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, sampler: &mut Sampler<'_>) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, sampler: &mut Sampler<'_>) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = sampler.below(span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, sampler: &mut Sampler<'_>) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                // span + 1 would wrap for the full u64 domain; that case
                // is "any 64-bit value".
                let off = if span == u64::MAX {
                    sampler.bits()
                } else {
                    sampler.below(span + 1)
                };
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn sample(self, sampler: &mut Sampler<'_>) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = sampler.unit(false);
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * u;
                // Guard against rounding up to the excluded endpoint.
                let v = if v >= self.end as f64 { self.start as f64 } else { v };
                v as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn sample(self, sampler: &mut Sampler<'_>) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = sampler.unit(true);
                (start as f64 + (end as f64 - start as f64) * u) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real SmallRng documents.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The standard generator; aliased to [`SmallRng`] in this shim.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..100).filter(|_| {
            let mut a2 = a.clone();
            a2.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX)
        });
        assert!(same.count() < 100);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_frequencies() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (1_800..3_200).contains(&hits),
            "p=0.25 produced {hits}/10000"
        );
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}
