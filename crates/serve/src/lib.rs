//! `mobidx-serve`: a sharded, multi-threaded MOR serving front end over
//! any [`Index1D`](mobidx_core::Index1D).
//!
//! The paper's methods are single-threaded index structures; a tracking
//! service runs them behind a server. This crate supplies that tier:
//!
//! * **Shard ownership** — objects are partitioned across `S` index
//!   instances by a pluggable [`ShardFn`]; each instance is owned by one
//!   worker thread fed through a bounded queue ([`worker`] has the
//!   model). No locks around index internals; backpressure by blocking
//!   `send` on a full queue.
//! * **Batched writes** — [`Batch`]es of insert/update/remove are
//!   validated atomically against the facade's authoritative motion
//!   table, split into per-shard op lists, and dispatched as one message
//!   per shard ([`batch`]).
//! * **Fan-out queries** — MOR queries go to every shard (or, for
//!   speed-filtered queries under [`SpeedBandShard`], only the shards
//!   whose sub-band overlaps the filter) and the sorted per-shard
//!   answers are k-way-merged back into the single-index contract
//!   ([`merge`]).
//! * **Epoch-stamped snapshot reads** — after every drained apply group
//!   each worker freezes its index (page-level copy-on-write, O(dirty
//!   pages)) and the facade publishes an immutable [`DbSnapshot`] at
//!   the next commit epoch; plain queries run against it from any
//!   caller thread with zero queueing behind writes ([`snapshot`]).
//! * **Fault isolation** — a worker converts an index panic (e.g. an
//!   unrecovered pager fault) into a typed [`ServeError`]; the shard is
//!   poisoned until [`ShardedDb::rebuild_shard`] re-syncs it from the
//!   motion table, and the rest of the pool keeps serving.
//!
//! [`SpeedBandShard`] is where sharding pays beyond concurrency: each
//! shard's index covers a narrow speed band, so the dual-B+ method's
//! query enlargement — quadratic in the band's spread — collapses, and
//! per-shard candidate scans shrink superlinearly in `S`.

pub mod batch;
pub mod db;
pub mod flight;
pub mod health;
pub mod merge;
pub mod repartition;
pub mod shard;
pub mod snapshot;
pub mod telemetry;
pub(crate) mod worker;

pub use batch::{Batch, Op};
pub use db::{ReadView, ServeConfig, ShardedDb};
pub use flight::{FlightConfig, FlightRecorder};
pub use health::{HealthSnapshot, ReadPoolSnapshot, ShardHealth, ShardHealthSnapshot};
pub use mobidx_pager::FsyncPolicy;
pub use repartition::{
    start_repartitioner, RepartitionConfig, RepartitionPolicy, RepartitionReport, RepartitionStats,
    Repartitioner,
};
pub use shard::{IdHashShard, ShardFn, SpeedBandShard};
pub use snapshot::DbSnapshot;
pub use telemetry::{default_slos, SamplerConfig, ServeSampler};

use mobidx_core::{DuplicateId, UnknownId};
use std::fmt;

/// Everything that can go wrong at the serving tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Batch rejected: an insert's id is already tracked.
    Duplicate(DuplicateId),
    /// Batch rejected: an update/remove names an untracked id.
    Unknown(UnknownId),
    /// A worker's index panicked mid-request (e.g. an unrecovered pager
    /// fault). The shard is poisoned until
    /// [`ShardedDb::rebuild_shard`]; the rest of the pool keeps serving.
    ShardFault {
        /// The faulted shard.
        shard: usize,
        /// The panic payload.
        panic: String,
    },
    /// The shard faulted earlier and awaits a rebuild.
    ShardPoisoned {
        /// The poisoned shard.
        shard: usize,
    },
    /// The worker thread is gone (its queue is closed) — only possible
    /// after an external shutdown.
    ShardDown {
        /// The dead shard.
        shard: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Duplicate(e) => write!(f, "batch rejected: {e}"),
            ServeError::Unknown(e) => write!(f, "batch rejected: {e}"),
            ServeError::ShardFault { shard, panic } => {
                write!(f, "shard {shard} faulted: {panic}")
            }
            ServeError::ShardPoisoned { shard } => {
                write!(f, "shard {shard} is poisoned (rebuild required)")
            }
            ServeError::ShardDown { shard } => write!(f, "shard {shard} worker is gone"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DuplicateId> for ServeError {
    fn from(e: DuplicateId) -> Self {
        ServeError::Duplicate(e)
    }
}

impl From<UnknownId> for ServeError {
    fn from(e: UnknownId) -> Self {
        ServeError::Unknown(e)
    }
}
