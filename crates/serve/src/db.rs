//! The sharded motion database facade.

use crate::batch::{Batch, Op, ShardOp};
use crate::health::{HealthSnapshot, ShardHealth};
use crate::merge::merge_sorted_ids;
use crate::shard::ShardFn;
use crate::snapshot::{DbSnapshot, ReadPool, SnapshotRegistry};
use crate::worker::{self, Request};
use crate::ServeError;
use mobidx_core::{FrozenIndex1D, FrozenReadStats, Index1D, IoTotals, QueryOutput, QueryRequest};
use mobidx_obs::telemetry::{ProfileConfig, WorkloadProfile};
use mobidx_obs::{EventLog, OpenSpan, QueryTrace, Span, SpanIo};
use mobidx_pager::FsyncPolicy;
use mobidx_workload::{MorQuery1D, Motion1D};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many recent query span trees the facade's [`EventLog`] retains.
/// Sized for diagnostics, not archival: at the default 4 shards a span
/// tree is ~15 nodes, so the ring tops out around a few hundred KiB.
const EVENT_LOG_CAPACITY: usize = 256;

/// Sizing of the worker pool.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Number of shards (= worker threads).
    pub shards: usize,
    /// Bound of each worker's request queue. A full queue blocks the
    /// sender — backpressure instead of unbounded buffering.
    pub queue_depth: usize,
    /// Durability policy for shards whose indexes sit on durable
    /// backends ([`mobidx_pager::FileBackend`]). With [`FsyncPolicy::Never`]
    /// the workers skip sealing commit windows after each drained apply
    /// group; any other policy makes the worker's group-commit drain
    /// also a durability group commit — one sealed window (and, under
    /// [`FsyncPolicy::OnCommit`], one fsync per store) for the whole
    /// drained group. Irrelevant — and free — when every backend is
    /// memory-resident, so the default is [`FsyncPolicy::OnCommit`].
    pub fsync: FsyncPolicy,
    /// Helper threads in the snapshot read pool. Snapshot queries fan
    /// their per-shard legs out across these threads (the submitting
    /// thread runs one leg inline and steals further work while it
    /// waits); `0` degrades to fully serial snapshot reads.
    pub read_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_depth: 64,
            fsync: FsyncPolicy::OnCommit,
            read_threads: 3,
        }
    }
}

/// A sharded, multi-threaded motion database over any [`Index1D`] — the
/// serving-tier analogue of [`MotionDb`].
///
/// Objects are partitioned across `shards` index instances by a
/// [`ShardFn`]; each instance is owned by a dedicated worker thread fed
/// through a bounded queue. Writes go through [`ShardedDb::apply`]
/// (serialized on the facade's table lock); each successfully committed
/// group is *frozen* by the worker and published as an immutable,
/// epoch-stamped [`DbSnapshot`]. Queries take `&self` from any thread:
/// by default they run against the latest published snapshot with zero
/// queueing behind writes, fanned out across a small work-stealing read
/// pool, and k-way-merged back into the sorted, deduplicated contract
/// of a single index. [`QueryRequest::queued`] opts back into the
/// worker-queue read path (read-your-own-write against an apply the
/// caller just enqueued).
///
/// The facade owns the authoritative motion table (id → current motion
/// record), exactly like [`MotionDb`]: updates are routed by id, and a
/// faulted shard can always be rebuilt from the table
/// ([`ShardedDb::rebuild_shard`]).
///
/// ```
/// use mobidx_serve::{Batch, IdHashShard, ServeConfig, ShardedDb};
/// use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
/// use mobidx_core::{Motion1D, MorQuery1D, QueryRequest};
///
/// let db = ShardedDb::new(
///     ServeConfig { shards: 2, queue_depth: 8, ..ServeConfig::default() },
///     Box::new(IdHashShard),
///     |_shard, _shards| DualBPlusIndex::new(DualBPlusConfig::default()),
/// );
/// let mut batch = Batch::new();
/// batch.insert(Motion1D { id: 1, t0: 0.0, y0: 100.0, v: 1.0 });
/// batch.insert(Motion1D { id: 2, t0: 0.0, y0: 900.0, v: -1.0 });
/// db.apply(&batch).unwrap();
///
/// let q = MorQuery1D { y1: 90.0, y2: 130.0, t1: 10.0, t2: 20.0 };
/// let out = db.query(&QueryRequest::new(&q)).unwrap();
/// assert_eq!(out, vec![1]);
/// assert_eq!(out.epoch, Some(1)); // served by the post-commit snapshot
/// ```
///
/// [`MotionDb`]: mobidx_core::MotionDb
pub struct ShardedDb<I: Index1D + Send + 'static> {
    senders: Vec<SyncSender<Request<I>>>,
    handles: Vec<JoinHandle<()>>,
    /// The authoritative motion table. Writers ([`ShardedDb::apply`],
    /// [`ShardedDb::rebuild_shard`]) hold the write lock end to end, so
    /// batches serialize; readers only take the read lock for point
    /// lookups and speed filtering.
    table: RwLock<HashMap<u64, Motion1D>>,
    /// Lock-free mirror of `table.len()`, refreshed inside every
    /// `apply` while the write lock is held. Read paths (and anything
    /// else on the query side) must use this instead of locking the
    /// table: `apply` holds the write lock across its full
    /// dispatch-and-publish round trip, and under a saturating writer
    /// loop the writer-preferring `RwLock` would starve readers that
    /// merely want the object count.
    object_count: AtomicUsize,
    shard_fn: Box<dyn ShardFn>,
    #[allow(clippy::type_complexity)]
    factory: Box<dyn Fn(usize, usize) -> I + Send + Sync>,
    /// Pooled query buffers: capacity is recycled across requests so a
    /// steady query load settles into zero per-query allocation inside
    /// the workers.
    buffers: Mutex<Vec<Vec<u64>>>,
    shards: usize,
    /// Per-shard health state, shared with the workers.
    health: Vec<Arc<ShardHealth>>,
    /// The facade-wide time base every trace span measures from, fixed
    /// at construction so spans from different queries (and different
    /// worker threads) share one reconcilable timeline.
    epoch: Instant,
    /// Ring buffer of recently finished query span trees (and drift
    /// events), shared with the workers' workload profile and any
    /// running telemetry sampler.
    events: Arc<EventLog>,
    /// The workload characterizer: workers feed it insert velocities,
    /// the facade feeds it query selectivities, and its windowed drift
    /// detector raises `drift` events into the event log.
    profile: Arc<WorkloadProfile>,
    /// Snapshot publication state: latest per-shard frozen views, the
    /// monotone commit-epoch counter, and the currently published
    /// [`DbSnapshot`].
    registry: Arc<SnapshotRegistry>,
    /// Work-stealing helpers for snapshot-read fan-out.
    read_pool: ReadPool,
    /// The always-on black box: captures diagnostic bundles on shard
    /// poison, SLO breach, drift, or [`ShardedDb::dump_bundle`] (see
    /// [`crate::flight`]).
    flight: Arc<crate::flight::FlightRecorder>,
    /// Online-repartitioning progress counters (see
    /// [`crate::repartition`]); identically zero for index types
    /// without velocity partitioning.
    repartition: Arc<crate::repartition::RepartitionStats>,
}

impl<I: Index1D + Send + 'static> ShardedDb<I> {
    /// Spawns the worker pool. `factory(shard, shards)` builds the index
    /// instance owned by each worker — a speed-band deployment
    /// configures each instance with its narrow
    /// [`sub_band`](crate::SpeedBandShard::sub_band).
    ///
    /// # Panics
    /// Panics if `cfg.shards` or `cfg.queue_depth` is zero.
    #[must_use]
    pub fn new(
        cfg: ServeConfig,
        shard_fn: Box<dyn ShardFn>,
        factory: impl Fn(usize, usize) -> I + Send + Sync + 'static,
    ) -> Self {
        Self::with_profile(cfg, ProfileConfig::default(), shard_fn, factory)
    }

    /// [`ShardedDb::new`] with an explicit [`ProfileConfig`] for the
    /// workload characterizer (bin count, speed band, drift window and
    /// threshold) — tests and deployments with a non-paper speed band
    /// tune drift detection here.
    ///
    /// # Panics
    /// Panics if `cfg.shards` or `cfg.queue_depth` is zero, or if
    /// `profile_cfg` is degenerate (see [`WorkloadProfile::new`]).
    #[must_use]
    pub fn with_profile(
        cfg: ServeConfig,
        profile_cfg: ProfileConfig,
        shard_fn: Box<dyn ShardFn>,
        factory: impl Fn(usize, usize) -> I + Send + Sync + 'static,
    ) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.queue_depth > 0, "need a nonempty queue");
        let events = Arc::new(EventLog::new(EVENT_LOG_CAPACITY));
        let profile =
            Arc::new(WorkloadProfile::new(profile_cfg).with_event_log(Arc::clone(&events)));
        let registry = Arc::new(SnapshotRegistry::new(cfg.shards));
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        let mut health = Vec::with_capacity(cfg.shards);
        let mut initial_views = Vec::with_capacity(cfg.shards);
        let commit_on_apply = cfg.fsync != FsyncPolicy::Never;
        for shard in 0..cfg.shards {
            let (tx, rx) = sync_channel(cfg.queue_depth);
            let index = factory(shard, cfg.shards);
            // Freeze the empty index before it moves into its worker —
            // the initial snapshot (epoch 0) is published at
            // construction, so snapshot reads work before any write.
            initial_views.push(index.freeze().map(Arc::from));
            let shard_health = Arc::new(ShardHealth::new());
            let worker_health = Arc::clone(&shard_health);
            let worker_profile = Arc::clone(&profile);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mobidx-shard-{shard}"))
                    .spawn(move || {
                        worker::run(
                            shard,
                            index,
                            &rx,
                            &worker_health,
                            &worker_profile,
                            commit_on_apply,
                        );
                    })
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
            health.push(shard_health);
        }
        registry.publish_initial(initial_views);
        let epoch = Instant::now();
        let read_pool = ReadPool::new(cfg.read_threads);
        let flight = Arc::new(crate::flight::FlightRecorder::new(
            crate::flight::FlightConfig::default(),
            cfg.shards,
            epoch,
            Arc::clone(&events),
            health.clone(),
            Arc::clone(read_pool.metrics()),
            Arc::clone(&profile),
            Arc::clone(&registry),
        ));
        Self {
            senders,
            handles,
            table: RwLock::new(HashMap::new()),
            object_count: AtomicUsize::new(0),
            shard_fn,
            factory: Box::new(factory),
            buffers: Mutex::new(Vec::new()),
            shards: cfg.shards,
            health,
            epoch,
            events,
            profile,
            registry,
            read_pool,
            flight,
            repartition: Arc::new(crate::repartition::RepartitionStats::new(cfg.shards)),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard function's display name.
    #[must_use]
    pub fn shard_fn_name(&self) -> String {
        self.shard_fn.name()
    }

    /// Number of tracked objects. Served from the lock-free counter, so
    /// it never waits on an in-flight `apply`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.object_count.load(Ordering::Acquire)
    }

    /// Whether the database is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current motion record of an object. A precise-state read: it
    /// takes the table lock and so waits out any in-flight `apply`.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<Motion1D> {
        self.table.read().expect("motion table").get(&id).copied()
    }

    /// The full motion table (the brute-force oracle's input), in
    /// unspecified order. A precise-state read: it takes the table lock
    /// and so waits out any in-flight `apply`.
    #[must_use]
    pub fn objects(&self) -> Vec<Motion1D> {
        self.table
            .read()
            .expect("motion table")
            .values()
            .copied()
            .collect()
    }

    /// Validates and applies a batch of writes, then publishes the
    /// post-commit state as the next read snapshot.
    ///
    /// Validation is atomic: every op is checked (in order, against the
    /// state the preceding ops of the same batch would leave) *before*
    /// anything is dispatched, so an inadmissible op aborts the whole
    /// batch with the database unchanged. After validation the table
    /// commits and each shard's op slice is dispatched as one message.
    /// The facade's table lock is held for the whole call, so concurrent
    /// `apply` calls serialize (single logical writer); snapshot reads
    /// are never blocked by it.
    ///
    /// Each worker freezes its index once per drained group and the
    /// facade publishes a new [`DbSnapshot`] at the next commit epoch —
    /// after `apply` returns `Ok`, [`ShardedDb::snapshot_epoch`] has
    /// advanced past the batch (group commit may collapse several
    /// batches into one epoch).
    ///
    /// # Errors
    /// * [`ServeError::Duplicate`] / [`ServeError::Unknown`] — batch
    ///   rejected, nothing changed.
    /// * [`ServeError::ShardFault`] / [`ServeError::ShardPoisoned`] — a
    ///   worker hit an injected or real fault mid-batch. The table (the
    ///   authoritative state) has committed; call
    ///   [`ShardedDb::rebuild_shard`] on the reported shard to re-sync
    ///   its index from the table. Snapshot publication pauses (reads
    ///   keep serving the last good epoch) until the rebuild.
    ///
    /// # Panics
    /// Panics if the table lock is poisoned (a prior `apply` panicked).
    pub fn apply(&self, batch: &Batch) -> Result<(), ServeError> {
        let mut table = self.table.write().expect("motion table");
        // Stage: validate against table ∪ staged without mutating either.
        let mut staged: HashMap<u64, Option<Motion1D>> = HashMap::new();
        let mut per_shard: Vec<Vec<ShardOp>> = vec![Vec::new(); self.shards];
        for op in &batch.ops {
            let lookup = |id: u64| match staged.get(&id) {
                Some(s) => *s,
                None => table.get(&id).copied(),
            };
            match *op {
                Op::Insert(m) => {
                    if lookup(m.id).is_some() {
                        return Err(ServeError::Duplicate(mobidx_core::DuplicateId(m.id)));
                    }
                    per_shard[self.shard_fn.shard_of(&m, self.shards)].push(ShardOp::Insert(m));
                    staged.insert(m.id, Some(m));
                }
                Op::Update(m) => {
                    let old =
                        lookup(m.id).ok_or(ServeError::Unknown(mobidx_core::UnknownId(m.id)))?;
                    per_shard[self.shard_fn.shard_of(&old, self.shards)].push(ShardOp::Remove(old));
                    per_shard[self.shard_fn.shard_of(&m, self.shards)].push(ShardOp::Insert(m));
                    staged.insert(m.id, Some(m));
                }
                Op::Remove(id) => {
                    let old = lookup(id).ok_or(ServeError::Unknown(mobidx_core::UnknownId(id)))?;
                    per_shard[self.shard_fn.shard_of(&old, self.shards)].push(ShardOp::Remove(old));
                    staged.insert(id, None);
                }
            }
        }
        // Commit the authoritative table, then dispatch.
        for (id, slot) in staged {
            match slot {
                Some(m) => {
                    table.insert(id, m);
                }
                None => {
                    table.remove(&id);
                }
            }
        }
        self.object_count.store(table.len(), Ordering::Release);
        let mut waits = Vec::new();
        for (shard, ops) in per_shard.into_iter().enumerate() {
            if ops.is_empty() {
                continue;
            }
            let (reply, rx) = channel();
            self.send(shard, Request::Apply { ops, reply })?;
            waits.push((shard, rx));
        }
        let mut first_err = None;
        let mut published = Vec::new();
        for (shard, rx) in waits {
            match rx.recv() {
                Ok(Ok(view)) => published.push((shard, view)),
                Ok(Err(e)) => {
                    // The shard's index no longer matches the table;
                    // clearing its view pauses publication (reads keep
                    // the last good snapshot) until a rebuild.
                    published.push((shard, None));
                    first_err.get_or_insert(e);
                }
                Err(_) => {
                    published.push((shard, None));
                    first_err.get_or_insert(ServeError::ShardDown { shard });
                }
            }
        }
        self.registry.publish(published);
        drop(table);
        first_err.map_or(Ok(()), Err)
    }

    /// Answers one read request — the single, options-driven entry point
    /// that replaced the historical `query` / `query_filtered` /
    /// `query_traced` family.
    ///
    /// Routing: plain requests run against the latest published
    /// [`DbSnapshot`] — no worker queue, fan-out across the read pool,
    /// `epoch` stamped on the output. Requests that force
    /// [`QueryRequest::queued`], carry a
    /// [`speed filter`](QueryRequest::speed_band), or arrive before any
    /// snapshot exists take the worker-queue path instead (and leave
    /// `epoch` as `None`).
    ///
    /// Both paths honor tracing: [`QueryRequest::traced`] /
    /// [`QueryRequest::spanned`] produce a root `query` span with one
    /// `s<shard>/execute` leg per shard. Queued legs carry
    /// `queue_wait_nanos`; snapshot legs instead carry
    /// `snapshot_epoch` and the frozen-page read count — snapshot reads
    /// never wait in a queue, which is the point.
    ///
    /// # Errors
    /// [`ServeError::ShardFault`] / [`ServeError::ShardPoisoned`] /
    /// [`ServeError::ShardDown`] when a queued-path worker cannot
    /// answer. The snapshot path is infallible once a snapshot exists.
    pub fn query(&self, req: &QueryRequest<'_, MorQuery1D>) -> Result<QueryOutput, ServeError> {
        if req.is_queued() || req.speed_filter().is_some() {
            return self.query_queued(req);
        }
        match self.registry.current() {
            Some(snap) => Ok(self.query_snapshot(&snap, req)),
            None => self.query_queued(req),
        }
    }

    /// A detached, immutable read handle on the latest published
    /// snapshot: queries against it are serial, infallible, and keep
    /// answering from the *same* epoch no matter how many commits land
    /// after — the hook for "query a stale snapshot against a
    /// pre-commit oracle" checks.
    #[must_use]
    pub fn read_view(&self) -> Option<ReadView> {
        self.registry.current().map(|snap| ReadView { snap })
    }

    /// The last published commit epoch (0 until the first apply
    /// publishes).
    #[must_use]
    pub fn snapshot_epoch(&self) -> u64 {
        self.registry.epoch()
    }

    /// Arms the snapshot read path's disk model: every frozen page a
    /// snapshot leg visits charges `per_page` of wall-clock wait
    /// (recorded in the shard's `io_wait` histogram). Zero — the default
    /// — disables the model.
    pub fn set_snapshot_read_delay(&self, per_page: Duration) {
        self.registry
            .set_read_delay_nanos(u64::try_from(per_page.as_nanos()).unwrap_or(u64::MAX));
    }

    /// The queued (worker fan-out) read path.
    fn query_queued(&self, req: &QueryRequest<'_, MorQuery1D>) -> Result<QueryOutput, ServeError> {
        let q = req.query();
        if let Some((v_lo, v_hi)) = req.speed_filter() {
            let targets = self
                .shard_fn
                .shards_for_speed(v_lo, v_hi, self.shards)
                .unwrap_or_else(|| (0..self.shards).collect());
            let mut ids = self.fan_out(q, &targets)?;
            let table = self.table.read().expect("motion table");
            ids.retain(|id| {
                table.get(id).is_some_and(|m| {
                    let s = m.v.abs();
                    v_lo <= s && s <= v_hi
                })
            });
            drop(table);
            return Ok(QueryOutput {
                ids,
                ..QueryOutput::default()
            });
        }
        if req.wants_span() {
            return self.query_queued_span(req);
        }
        let all: Vec<usize> = (0..self.shards).collect();
        Ok(QueryOutput {
            ids: self.fan_out(q, &all)?,
            ..QueryOutput::default()
        })
    }

    /// The queued read path with a span tree: the root `query` span
    /// (method, summed candidates, merged result count) has one
    /// `s<shard>/execute` child per fan-out leg, each carrying its queue
    /// wait and the worker's `index.query` subtree down to per-store I/O
    /// leaves. All spans measure from the facade's shared epoch, so the
    /// tree renders as one timeline (one lane per worker) in the Chrome
    /// trace export, and [`Span::total_io`] reconciles with the
    /// [`ShardedDb::io_totals`] delta. The finished tree is also pushed
    /// into the facade's [`EventLog`] ([`ShardedDb::recent_spans`]).
    fn query_queued_span(
        &self,
        req: &QueryRequest<'_, MorQuery1D>,
    ) -> Result<QueryOutput, ServeError> {
        let q = req.query();
        let span_epoch = req.span_epoch().unwrap_or(self.epoch);
        let mut root = OpenSpan::begin("query", span_epoch);
        root.set_attr(
            "method",
            format!("sharded[{}x {}]", self.shards, self.shard_fn.name()).as_str(),
        );
        root.set_attr("lane", 0u64);
        root.set_attr("lane_name", "client");
        let sent_nanos = root.start_nanos();
        let mut waits = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (reply, rx) = channel();
            self.send(
                shard,
                Request::Traced {
                    q: *q,
                    epoch: span_epoch,
                    sent_nanos,
                    reply,
                },
            )?;
            waits.push((shard, rx));
        }
        let mut candidates = 0u64;
        let mut lists = Vec::with_capacity(self.shards);
        for (shard, rx) in waits {
            let (ids, leg) = rx.recv().map_err(|_| ServeError::ShardDown { shard })??;
            candidates += leg.attr_u64("candidates").unwrap_or(0);
            root.push(leg);
            lists.push(ids);
        }
        let merged = merge_sorted_ids(&lists);
        root.set_attr("candidates", candidates);
        root.set_attr("results", merged.len() as u64);
        let span = root.finish();
        self.events.push(Arc::new(span.clone()));
        self.profile
            .record_query(merged.len() as u64, self.len() as u64);
        Ok(QueryOutput {
            trace: req.wants_trace().then(|| QueryTrace::from_span(&span)),
            span: req.span_epoch().is_some().then_some(span),
            ids: merged,
            candidates,
            epoch: None,
        })
    }

    /// The snapshot read path: per-shard legs against the frozen views,
    /// fanned out across the read pool (the calling thread runs shard
    /// 0's leg inline and steals queued legs while waiting), then k-way
    /// merged. No worker queue is touched, so concurrent writers never
    /// delay this path.
    fn query_snapshot(
        &self,
        snap: &Arc<DbSnapshot>,
        req: &QueryRequest<'_, MorQuery1D>,
    ) -> QueryOutput {
        let q = *req.query();
        let n = snap.shards();
        let span_epoch = req
            .wants_span()
            .then(|| req.span_epoch().unwrap_or(self.epoch));
        let root = span_epoch.map(|e| {
            let mut root = OpenSpan::begin("query", e);
            root.set_attr(
                "method",
                format!("snapshot[{}x {}]", n, self.shard_fn.name()).as_str(),
            );
            root.set_attr("lane", 0u64);
            root.set_attr("lane_name", "client");
            root.set_attr("snapshot_epoch", snap.epoch);
            root
        });
        let delay_nanos = self.registry.read_delay_nanos();
        let (tx, rx) = channel::<(usize, SnapLeg)>();
        for shard in 1..n {
            let view = Arc::clone(&snap.views[shard]);
            let health = Arc::clone(&self.health[shard]);
            let buf = self.pop_buffer();
            let tx = tx.clone();
            let snap_epoch = snap.epoch;
            self.read_pool.submit(Box::new(move || {
                let leg = snapshot_leg(
                    &*view,
                    &q,
                    buf,
                    shard,
                    snap_epoch,
                    delay_nanos,
                    &health,
                    span_epoch,
                );
                let _ = tx.send((shard, leg));
            }));
        }
        drop(tx);
        let mut legs: Vec<Option<SnapLeg>> = Vec::with_capacity(n);
        legs.resize_with(n, || None);
        legs[0] = Some(snapshot_leg(
            &*snap.views[0],
            &q,
            self.pop_buffer(),
            0,
            snap.epoch,
            delay_nanos,
            &self.health[0],
            span_epoch,
        ));
        let mut remaining = n - 1;
        while remaining > 0 {
            match rx.try_recv() {
                Ok((shard, leg)) => {
                    legs[shard] = Some(leg);
                    remaining -= 1;
                }
                Err(TryRecvError::Empty) => {
                    // Steal: run someone's queued leg (possibly our own)
                    // instead of blocking, unless the queue is dry and
                    // our stragglers are mid-flight on pool threads.
                    if !self.read_pool.try_run_one() {
                        if let Ok((shard, leg)) = rx.recv() {
                            legs[shard] = Some(leg);
                            remaining -= 1;
                        }
                    }
                }
                Err(TryRecvError::Disconnected) => break,
            }
        }
        let legs: Vec<SnapLeg> = legs.into_iter().map(|l| l.expect("all legs ran")).collect();
        let lists: Vec<Vec<u64>> = legs.iter().map(|l| l.ids.clone()).collect();
        let merged = merge_sorted_ids(&lists);
        let candidates = legs.iter().map(|l| l.stats.candidates).sum();
        let span = root.map(|mut root| {
            for leg in &legs {
                root.push(leg.span.clone().expect("span requested"));
            }
            root.set_attr("candidates", candidates);
            root.set_attr("results", merged.len() as u64);
            let span = root.finish();
            self.events.push(Arc::new(span.clone()));
            span
        });
        {
            let mut pool = self.buffers.lock().expect("buffer pool");
            for mut leg in legs {
                leg.ids.clear();
                pool.push(leg.ids);
            }
        }
        self.profile
            .record_query(merged.len() as u64, self.len() as u64);
        QueryOutput {
            trace: match (&span, req.wants_trace()) {
                (Some(span), true) => Some(QueryTrace::from_span(span)),
                _ => None,
            },
            span: if req.span_epoch().is_some() {
                span
            } else {
                None
            },
            ids: merged,
            candidates,
            epoch: Some(snap.epoch),
        }
    }

    /// A point-in-time health summary of every shard: queue depth and
    /// high-water gauges, applied/queued counters, poisoned state, and
    /// query/update/io-wait latency percentiles. Reads shared atomics
    /// directly — no worker round-trip, so it works even when a worker
    /// is wedged on a full queue or poisoned.
    #[must_use]
    pub fn health(&self) -> HealthSnapshot {
        HealthSnapshot {
            shards: self
                .health
                .iter()
                .enumerate()
                .map(|(shard, h)| h.snapshot(shard))
                .collect(),
            read_pool: self.read_pool.metrics().snapshot(),
            spans_recorded: self.events.recorded(),
            spans_dropped: self.events.dropped(),
        }
    }

    /// One shard's live health state — the hook for wiring a
    /// `DelayBackend::with_histogram` to the shard's `io_wait`
    /// histogram.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard_health(&self, shard: usize) -> &Arc<ShardHealth> {
        &self.health[shard]
    }

    /// The most recent traced-query span trees, oldest first (bounded
    /// ring; see [`ShardedDb::event_log`] for drop accounting).
    #[must_use]
    pub fn recent_spans(&self) -> Vec<Arc<Span>> {
        self.events.snapshot()
    }

    /// The facade's span ring buffer.
    #[must_use]
    pub fn event_log(&self) -> &EventLog {
        &self.events
    }

    /// The live workload characterizer: velocity bands, query
    /// selectivity, update:query mix, and windowed drift detection (see
    /// [`WorkloadProfile`]). Call
    /// [`rebaseline`](WorkloadProfile::rebaseline) after adapting to a
    /// drifted distribution.
    #[must_use]
    pub fn profile(&self) -> &Arc<WorkloadProfile> {
        &self.profile
    }

    /// Online-repartitioning progress counters (fed by
    /// [`crate::repartition`], harvested by the telemetry sampler and
    /// `mobidx-top`; identically zero for index types without velocity
    /// partitioning).
    #[must_use]
    pub fn repartition_stats(&self) -> &Arc<crate::repartition::RepartitionStats> {
        &self.repartition
    }

    /// One shard's motion records from the authoritative table, in id
    /// order (crate-internal: the repartition scheduler's migration
    /// snapshot).
    pub(crate) fn shard_motions(&self, shard: usize) -> Vec<Motion1D> {
        let table = self.table.read().expect("motion table");
        let mut motions: Vec<Motion1D> = table
            .values()
            .filter(|m| self.shard_fn.shard_of(m, self.shards) == shard)
            .copied()
            .collect();
        motions.sort_unstable_by_key(|m| m.id);
        motions
    }

    /// The facade-wide trace time base (crate-internal).
    pub(crate) fn telemetry_epoch(&self) -> Instant {
        self.epoch
    }

    /// Worker queue handles for the telemetry sampler (crate-internal).
    pub(crate) fn telemetry_senders(&self) -> &[SyncSender<Request<I>>] {
        &self.senders
    }

    /// Shared health state for the telemetry sampler (crate-internal).
    pub(crate) fn telemetry_health(&self) -> &[Arc<ShardHealth>] {
        &self.health
    }

    /// Shared event log for the telemetry sampler (crate-internal).
    pub(crate) fn telemetry_events(&self) -> &Arc<EventLog> {
        &self.events
    }

    /// Shared snapshot registry for the telemetry sampler
    /// (crate-internal).
    pub(crate) fn telemetry_registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }

    /// Shared read-pool instrumentation for the telemetry sampler
    /// (crate-internal).
    pub(crate) fn telemetry_read_pool(&self) -> &Arc<crate::snapshot::ReadPoolMetrics> {
        self.read_pool.metrics()
    }

    /// The flight recorder: the bounded ring of diagnostic bundles this
    /// database has captured, and its per-trigger accounting (see
    /// [`crate::flight`]).
    #[must_use]
    pub fn flight_recorder(&self) -> &Arc<crate::flight::FlightRecorder> {
        &self.flight
    }

    /// Per-shard I/O totals without failing the whole poll when one
    /// worker is gone: `None` for shards that did not answer
    /// (crate-internal; the manual bundle dump uses it).
    pub(crate) fn stats_best_effort(&self) -> Vec<Option<IoTotals>> {
        let mut waits = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (reply, rx) = channel();
            waits.push(self.send(shard, Request::Stats { reply }).ok().map(|()| rx));
        }
        waits
            .into_iter()
            .map(|rx| rx.and_then(|rx| rx.recv().ok()).map(|(totals, _)| totals))
            .collect()
    }

    /// Aggregated I/O counters across every shard.
    ///
    /// # Errors
    /// [`ServeError::ShardDown`] when a worker is gone.
    pub fn io_totals(&self) -> Result<IoTotals, ServeError> {
        Ok(self
            .stats()?
            .into_iter()
            .fold(IoTotals::default(), |acc, (t, _)| acc.merge(t)))
    }

    /// Per-store I/O breakdown across every shard, labels prefixed
    /// `s<shard>/`.
    ///
    /// # Errors
    /// [`ServeError::ShardDown`] when a worker is gone.
    pub fn store_io(&self) -> Result<Vec<(String, IoTotals)>, ServeError> {
        let mut out = Vec::new();
        for (shard, (_, stores)) in self.stats()?.into_iter().enumerate() {
            for (label, totals) in stores {
                out.push((format!("s{shard}/{label}"), totals));
            }
        }
        Ok(out)
    }

    /// Clears every shard's buffer pools (cold-query protocol).
    ///
    /// # Errors
    /// [`ServeError::ShardDown`] when a worker is gone.
    pub fn clear_buffers(&self) -> Result<(), ServeError> {
        self.broadcast_unit(|reply| Request::ClearBuffers { reply })
    }

    /// Resets every shard's I/O counters.
    ///
    /// # Errors
    /// [`ServeError::ShardDown`] when a worker is gone.
    pub fn reset_io(&self) -> Result<(), ServeError> {
        self.broadcast_unit(|reply| Request::ResetIo { reply })
    }

    /// Runs `f` against the index instance owned by `shard`, on the
    /// worker thread, and returns its result. The escape hatch for
    /// method-specific extensions and for the `mobidx-check` harness
    /// (which uses it to install fault-injecting backends).
    ///
    /// # Errors
    /// [`ServeError::ShardPoisoned`] when the shard awaits a rebuild,
    /// [`ServeError::ShardFault`] when `f` itself panics.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn with_shard<R, F>(&self, shard: usize, f: F) -> Result<R, ServeError>
    where
        F: FnOnce(&mut I) -> R + Send + 'static,
        R: Send + 'static,
    {
        assert!(shard < self.shards, "shard {shard} out of range");
        let (value_tx, value_rx) = channel();
        let (reply, rx) = channel();
        self.send(
            shard,
            Request::With {
                f: Box::new(move |index: &mut I| {
                    let _ = value_tx.send(f(index));
                }),
                reply,
            },
        )?;
        rx.recv().map_err(|_| ServeError::ShardDown { shard })??;
        value_rx.recv().map_err(|_| ServeError::ShardDown { shard })
    }

    /// Rebuilds one shard from the authoritative motion table: a fresh
    /// index instance (from the factory) is shipped to the worker, which
    /// swaps it in, clears its poisoned flag, and re-inserts the shard's
    /// motions. The recovery path after [`ServeError::ShardFault`]; a
    /// successful rebuild also re-publishes the shard's frozen view and
    /// so resumes snapshot publication.
    ///
    /// Returns the index it replaced, in its last (possibly poisoned,
    /// mid-operation) state, so callers can run a post-mortem — e.g.
    /// read I/O or fault counters out of its stores. Drop it to discard.
    ///
    /// # Errors
    /// [`ServeError::ShardFault`] when the rebuild itself faults (e.g. a
    /// still-installed fault backend fires again) — the shard stays
    /// poisoned and the replaced index is lost; [`ServeError::ShardDown`]
    /// when the worker is gone.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn rebuild_shard(&self, shard: usize) -> Result<Box<I>, ServeError> {
        assert!(shard < self.shards, "shard {shard} out of range");
        let table = self.table.write().expect("motion table");
        let mut motions: Vec<Motion1D> = table
            .values()
            .filter(|m| self.shard_fn.shard_of(m, self.shards) == shard)
            .copied()
            .collect();
        // Replay in id order, not hash-map order, so a rebuild produces
        // the same page layout on every run of the same seed (the
        // model-checking harness depends on this for reproducibility).
        motions.sort_unstable_by_key(|m| m.id);
        let index = Box::new((self.factory)(shard, self.shards));
        let (reply, rx) = channel();
        self.send(
            shard,
            Request::Rebuild {
                index,
                motions,
                reply,
            },
        )?;
        let (old, view) = rx.recv().map_err(|_| ServeError::ShardDown { shard })??;
        self.registry.publish([(shard, view)]);
        drop(table);
        Ok(old)
    }

    /// Pops a pooled result buffer (or a fresh one).
    fn pop_buffer(&self) -> Vec<u64> {
        self.buffers
            .lock()
            .expect("buffer pool")
            .pop()
            .unwrap_or_default()
    }

    /// Sends a fan-out query to `targets` and merges the answers,
    /// recycling result buffers through the pool.
    fn fan_out(&self, q: &MorQuery1D, targets: &[usize]) -> Result<Vec<u64>, ServeError> {
        if targets.is_empty() {
            return Ok(Vec::new());
        }
        let mut waits = Vec::with_capacity(targets.len());
        for &shard in targets {
            let buf = self.pop_buffer();
            let (reply, rx) = channel();
            self.send(shard, Request::Query { q: *q, buf, reply })?;
            waits.push((shard, rx));
        }
        let mut lists = Vec::with_capacity(waits.len());
        for (shard, rx) in waits {
            lists.push(rx.recv().map_err(|_| ServeError::ShardDown { shard })??);
        }
        let merged = merge_sorted_ids(&lists);
        let mut pool = self.buffers.lock().expect("buffer pool");
        for mut l in lists {
            l.clear();
            pool.push(l);
        }
        drop(pool);
        self.profile
            .record_query(merged.len() as u64, self.len() as u64);
        Ok(merged)
    }

    /// Collects `(io_totals, store_io)` from every shard.
    #[allow(clippy::type_complexity)]
    fn stats(&self) -> Result<Vec<(IoTotals, Vec<(String, IoTotals)>)>, ServeError> {
        let mut waits = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (reply, rx) = channel();
            self.send(shard, Request::Stats { reply })?;
            waits.push((shard, rx));
        }
        waits
            .into_iter()
            .map(|(shard, rx)| rx.recv().map_err(|_| ServeError::ShardDown { shard }))
            .collect()
    }

    /// Broadcasts a unit-reply request to every shard and waits.
    fn broadcast_unit(
        &self,
        make: impl Fn(std::sync::mpsc::Sender<()>) -> Request<I>,
    ) -> Result<(), ServeError> {
        let mut waits: Vec<(usize, Receiver<()>)> = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (reply, rx) = channel();
            self.send(shard, make(reply))?;
            waits.push((shard, rx));
        }
        for (shard, rx) in waits {
            rx.recv().map_err(|_| ServeError::ShardDown { shard })?;
        }
        Ok(())
    }

    /// Sends one request, mapping a closed queue to `ShardDown`. The
    /// queue-depth gauge is bumped *before* the send — a send blocked on
    /// a full queue counts toward the depth, so the gauge reads as the
    /// congestion on the shard, not just its buffered requests. The
    /// worker decrements at dequeue.
    fn send(&self, shard: usize, req: Request<I>) -> Result<(), ServeError> {
        let h = &self.health[shard];
        let depth = h.queue_depth.incr();
        h.queue_high_water.set_max(depth);
        match self.senders[shard].send(req) {
            Ok(()) => {
                h.enqueued.incr();
                Ok(())
            }
            Err(_) => {
                // Never dequeued; undo the depth bump.
                h.queue_depth.decr();
                Err(ServeError::ShardDown { shard })
            }
        }
    }
}

/// One shard's snapshot-read result.
struct SnapLeg {
    ids: Vec<u64>,
    stats: FrozenReadStats,
    span: Option<Span>,
}

/// Runs one per-shard snapshot leg: searches the frozen view, charges
/// the simulated disk wait, and bumps the shard's snapshot-read
/// accounting. Runs on the caller's thread or a read-pool helper —
/// never on the shard's worker.
#[allow(clippy::too_many_arguments)]
fn snapshot_leg(
    view: &dyn FrozenIndex1D,
    q: &MorQuery1D,
    mut buf: Vec<u64>,
    shard: usize,
    snapshot_epoch: u64,
    delay_nanos: u64,
    health: &ShardHealth,
    span_epoch: Option<Instant>,
) -> SnapLeg {
    let started = Instant::now();
    let mut leg = span_epoch.map(|e| {
        let mut leg = OpenSpan::begin(format!("s{shard}/execute"), e);
        leg.set_attr("shard", shard as u64);
        leg.set_attr("lane", shard as u64 + 1);
        leg.set_attr("lane_name", format!("mobidx-read-s{shard}").as_str());
        leg.set_attr("read_path", "snapshot");
        leg.set_attr("snapshot_epoch", snapshot_epoch);
        leg
    });
    let stats = view.search(q, &mut buf);
    if delay_nanos > 0 && stats.pages > 0 {
        let wait = Duration::from_nanos(delay_nanos.saturating_mul(stats.pages));
        std::thread::sleep(wait);
        health
            .io_wait
            .record(u64::try_from(wait.as_micros()).unwrap_or(u64::MAX));
    }
    // A snapshot leg is still a query answered on this shard's behalf:
    // count it so `queries` keeps matching the latency histogram.
    health.queries.incr();
    health.reads_on_snapshot.incr();
    health
        .query_latency
        .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    let span = leg.take().map(|mut leg| {
        leg.set_attr("candidates", stats.candidates);
        leg.set_io(SpanIo {
            reads: stats.pages,
            ..SpanIo::default()
        });
        leg.finish()
    });
    SnapLeg {
        ids: buf,
        stats,
        span,
    }
}

/// A detached handle on one published [`DbSnapshot`] (see
/// [`ShardedDb::read_view`]): serial snapshot queries pinned to a fixed
/// epoch.
pub struct ReadView {
    snap: Arc<DbSnapshot>,
}

impl ReadView {
    /// The pinned commit epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.snap.epoch
    }

    /// Answers a MOR query against the pinned snapshot — serial (no
    /// read pool), infallible, identical answers forever.
    #[must_use]
    pub fn query(&self, q: &MorQuery1D) -> Vec<u64> {
        let mut lists = Vec::with_capacity(self.snap.views.len());
        let mut buf = Vec::new();
        for view in &self.snap.views {
            view.search(q, &mut buf);
            lists.push(std::mem::take(&mut buf));
        }
        merge_sorted_ids(&lists)
    }
}

impl std::fmt::Debug for ReadView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadView")
            .field("epoch", &self.snap.epoch)
            .field("shards", &self.snap.views.len())
            .finish_non_exhaustive()
    }
}

impl<I: Index1D + Send + 'static> Drop for ShardedDb<I> {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<I: Index1D + Send + 'static> std::fmt::Debug for ShardedDb<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDb")
            .field("shards", &self.shards)
            .field("shard_fn", &self.shard_fn.name())
            .field("objects", &self.len())
            .field("snapshot_epoch", &self.snapshot_epoch())
            .finish_non_exhaustive()
    }
}
