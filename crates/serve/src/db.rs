//! The sharded motion database facade.

use crate::batch::{Batch, Op, ShardOp};
use crate::health::{HealthSnapshot, ShardHealth};
use crate::merge::merge_sorted_ids;
use crate::shard::ShardFn;
use crate::worker::{self, Request};
use crate::ServeError;
use mobidx_core::{Index1D, IoTotals};
use mobidx_obs::telemetry::{ProfileConfig, WorkloadProfile};
use mobidx_obs::{EventLog, OpenSpan, Span};
use mobidx_pager::FsyncPolicy;
use mobidx_workload::{MorQuery1D, Motion1D};
use std::collections::HashMap;
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// How many recent query span trees the facade's [`EventLog`] retains.
/// Sized for diagnostics, not archival: at the default 4 shards a span
/// tree is ~15 nodes, so the ring tops out around a few hundred KiB.
const EVENT_LOG_CAPACITY: usize = 256;

/// Sizing of the worker pool.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Number of shards (= worker threads).
    pub shards: usize,
    /// Bound of each worker's request queue. A full queue blocks the
    /// sender — backpressure instead of unbounded buffering.
    pub queue_depth: usize,
    /// Durability policy for shards whose indexes sit on durable
    /// backends ([`mobidx_pager::FileBackend`]). With [`FsyncPolicy::Never`]
    /// the workers skip sealing commit windows after each drained apply
    /// group; any other policy makes the worker's group-commit drain
    /// also a durability group commit — one sealed window (and, under
    /// [`FsyncPolicy::OnCommit`], one fsync per store) for the whole
    /// drained group. Irrelevant — and free — when every backend is
    /// memory-resident, so the default is [`FsyncPolicy::OnCommit`].
    pub fsync: FsyncPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_depth: 64,
            fsync: FsyncPolicy::OnCommit,
        }
    }
}

/// A sharded, multi-threaded motion database over any [`Index1D`] — the
/// serving-tier analogue of [`MotionDb`].
///
/// Objects are partitioned across `shards` index instances by a
/// [`ShardFn`]; each instance is owned by a dedicated worker thread fed
/// through a bounded queue. Writes go through [`ShardedDb::apply`]
/// (single logical writer, `&mut self`); queries take `&self` and may be
/// submitted concurrently from many client threads — fan-out legs use
/// per-request reply channels, and per-shard answers are k-way-merged
/// back into the sorted, deduplicated contract of a single index.
///
/// The facade owns the authoritative motion table (id → current motion
/// record), exactly like [`MotionDb`]: updates are routed by id, and a
/// faulted shard can always be rebuilt from the table
/// ([`ShardedDb::rebuild_shard`]).
///
/// ```
/// use mobidx_serve::{Batch, IdHashShard, ServeConfig, ShardedDb};
/// use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
/// use mobidx_core::{Motion1D, MorQuery1D};
///
/// let mut db = ShardedDb::new(
///     ServeConfig { shards: 2, queue_depth: 8, ..ServeConfig::default() },
///     Box::new(IdHashShard),
///     |_shard, _shards| DualBPlusIndex::new(DualBPlusConfig::default()),
/// );
/// let mut batch = Batch::new();
/// batch.insert(Motion1D { id: 1, t0: 0.0, y0: 100.0, v: 1.0 });
/// batch.insert(Motion1D { id: 2, t0: 0.0, y0: 900.0, v: -1.0 });
/// db.apply(&batch).unwrap();
///
/// let q = MorQuery1D { y1: 90.0, y2: 130.0, t1: 10.0, t2: 20.0 };
/// assert_eq!(db.query(&q).unwrap(), vec![1]);
/// ```
///
/// [`MotionDb`]: mobidx_core::MotionDb
pub struct ShardedDb<I: Index1D + Send + 'static> {
    senders: Vec<SyncSender<Request<I>>>,
    handles: Vec<JoinHandle<()>>,
    table: HashMap<u64, Motion1D>,
    shard_fn: Box<dyn ShardFn>,
    #[allow(clippy::type_complexity)]
    factory: Box<dyn Fn(usize, usize) -> I + Send + Sync>,
    /// Pooled query buffers: capacity is recycled across requests so a
    /// steady query load settles into zero per-query allocation inside
    /// the workers.
    buffers: Mutex<Vec<Vec<u64>>>,
    shards: usize,
    /// Per-shard health state, shared with the workers.
    health: Vec<Arc<ShardHealth>>,
    /// The facade-wide time base every trace span measures from, fixed
    /// at construction so spans from different queries (and different
    /// worker threads) share one reconcilable timeline.
    epoch: Instant,
    /// Ring buffer of recently finished query span trees (and drift
    /// events), shared with the workers' workload profile and any
    /// running telemetry sampler.
    events: Arc<EventLog>,
    /// The workload characterizer: workers feed it insert velocities,
    /// the facade feeds it query selectivities, and its windowed drift
    /// detector raises `drift` events into the event log.
    profile: Arc<WorkloadProfile>,
}

impl<I: Index1D + Send + 'static> ShardedDb<I> {
    /// Spawns the worker pool. `factory(shard, shards)` builds the index
    /// instance owned by each worker — a speed-band deployment
    /// configures each instance with its narrow
    /// [`sub_band`](crate::SpeedBandShard::sub_band).
    ///
    /// # Panics
    /// Panics if `cfg.shards` or `cfg.queue_depth` is zero.
    #[must_use]
    pub fn new(
        cfg: ServeConfig,
        shard_fn: Box<dyn ShardFn>,
        factory: impl Fn(usize, usize) -> I + Send + Sync + 'static,
    ) -> Self {
        Self::with_profile(cfg, ProfileConfig::default(), shard_fn, factory)
    }

    /// [`ShardedDb::new`] with an explicit [`ProfileConfig`] for the
    /// workload characterizer (bin count, speed band, drift window and
    /// threshold) — tests and deployments with a non-paper speed band
    /// tune drift detection here.
    ///
    /// # Panics
    /// Panics if `cfg.shards` or `cfg.queue_depth` is zero, or if
    /// `profile_cfg` is degenerate (see [`WorkloadProfile::new`]).
    #[must_use]
    pub fn with_profile(
        cfg: ServeConfig,
        profile_cfg: ProfileConfig,
        shard_fn: Box<dyn ShardFn>,
        factory: impl Fn(usize, usize) -> I + Send + Sync + 'static,
    ) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.queue_depth > 0, "need a nonempty queue");
        let events = Arc::new(EventLog::new(EVENT_LOG_CAPACITY));
        let profile =
            Arc::new(WorkloadProfile::new(profile_cfg).with_event_log(Arc::clone(&events)));
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        let mut health = Vec::with_capacity(cfg.shards);
        let commit_on_apply = cfg.fsync != FsyncPolicy::Never;
        for shard in 0..cfg.shards {
            let (tx, rx) = sync_channel(cfg.queue_depth);
            let index = factory(shard, cfg.shards);
            let shard_health = Arc::new(ShardHealth::new());
            let worker_health = Arc::clone(&shard_health);
            let worker_profile = Arc::clone(&profile);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mobidx-shard-{shard}"))
                    .spawn(move || {
                        worker::run(
                            shard,
                            index,
                            &rx,
                            &worker_health,
                            &worker_profile,
                            commit_on_apply,
                        );
                    })
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
            health.push(shard_health);
        }
        Self {
            senders,
            handles,
            table: HashMap::new(),
            shard_fn,
            factory: Box::new(factory),
            buffers: Mutex::new(Vec::new()),
            shards: cfg.shards,
            health,
            epoch: Instant::now(),
            events,
            profile,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard function's display name.
    #[must_use]
    pub fn shard_fn_name(&self) -> String {
        self.shard_fn.name()
    }

    /// Number of tracked objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the database is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The current motion record of an object.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<&Motion1D> {
        self.table.get(&id)
    }

    /// The full motion table (the brute-force oracle's input).
    pub fn objects(&self) -> impl Iterator<Item = &Motion1D> {
        self.table.values()
    }

    /// Validates and applies a batch of writes.
    ///
    /// Validation is atomic: every op is checked (in order, against the
    /// state the preceding ops of the same batch would leave) *before*
    /// anything is dispatched, so an inadmissible op aborts the whole
    /// batch with the database unchanged. After validation the table
    /// commits and each shard's op slice is dispatched as one message.
    ///
    /// # Errors
    /// * [`ServeError::Duplicate`] / [`ServeError::Unknown`] — batch
    ///   rejected, nothing changed.
    /// * [`ServeError::ShardFault`] / [`ServeError::ShardPoisoned`] — a
    ///   worker hit an injected or real fault mid-batch. The table (the
    ///   authoritative state) has committed; call
    ///   [`ShardedDb::rebuild_shard`] on the reported shard to re-sync
    ///   its index from the table.
    pub fn apply(&mut self, batch: &Batch) -> Result<(), ServeError> {
        // Stage: validate against table ∪ staged without mutating either.
        let mut staged: HashMap<u64, Option<Motion1D>> = HashMap::new();
        let mut per_shard: Vec<Vec<ShardOp>> = vec![Vec::new(); self.shards];
        for op in &batch.ops {
            let lookup = |id: u64| match staged.get(&id) {
                Some(s) => *s,
                None => self.table.get(&id).copied(),
            };
            match *op {
                Op::Insert(m) => {
                    if lookup(m.id).is_some() {
                        return Err(ServeError::Duplicate(mobidx_core::DuplicateId(m.id)));
                    }
                    per_shard[self.shard_fn.shard_of(&m, self.shards)].push(ShardOp::Insert(m));
                    staged.insert(m.id, Some(m));
                }
                Op::Update(m) => {
                    let old =
                        lookup(m.id).ok_or(ServeError::Unknown(mobidx_core::UnknownId(m.id)))?;
                    per_shard[self.shard_fn.shard_of(&old, self.shards)].push(ShardOp::Remove(old));
                    per_shard[self.shard_fn.shard_of(&m, self.shards)].push(ShardOp::Insert(m));
                    staged.insert(m.id, Some(m));
                }
                Op::Remove(id) => {
                    let old = lookup(id).ok_or(ServeError::Unknown(mobidx_core::UnknownId(id)))?;
                    per_shard[self.shard_fn.shard_of(&old, self.shards)].push(ShardOp::Remove(old));
                    staged.insert(id, None);
                }
            }
        }
        // Commit the authoritative table, then dispatch.
        for (id, slot) in staged {
            match slot {
                Some(m) => {
                    self.table.insert(id, m);
                }
                None => {
                    self.table.remove(&id);
                }
            }
        }
        let mut waits = Vec::new();
        for (shard, ops) in per_shard.into_iter().enumerate() {
            if ops.is_empty() {
                continue;
            }
            let (reply, rx) = channel();
            self.send(shard, Request::Apply { ops, reply })?;
            waits.push((shard, rx));
        }
        let mut first_err = None;
        for (shard, rx) in waits {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Err(_) => {
                    first_err.get_or_insert(ServeError::ShardDown { shard });
                }
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Answers a MOR query: fans out to every shard, k-way-merges the
    /// sorted per-shard answers. Takes `&self` — client threads may call
    /// this concurrently.
    ///
    /// # Errors
    /// [`ServeError::ShardFault`] / [`ServeError::ShardPoisoned`] /
    /// [`ServeError::ShardDown`] when a worker cannot answer.
    pub fn query(&self, q: &MorQuery1D) -> Result<Vec<u64>, ServeError> {
        let all: Vec<usize> = (0..self.shards).collect();
        self.fan_out(q, &all)
    }

    /// Answers a MOR query restricted to objects whose absolute speed
    /// lies in `[v_lo, v_hi]`. A speed-aware [`ShardFn`] proves which
    /// shards can hold such objects and the fan-out skips the rest; the
    /// facade then filters exactly against the motion table, so the
    /// answer is identical for every shard function.
    ///
    /// # Errors
    /// As [`ShardedDb::query`].
    pub fn query_filtered(
        &self,
        q: &MorQuery1D,
        v_lo: f64,
        v_hi: f64,
    ) -> Result<Vec<u64>, ServeError> {
        let targets = self
            .shard_fn
            .shards_for_speed(v_lo, v_hi, self.shards)
            .unwrap_or_else(|| (0..self.shards).collect());
        let mut ids = self.fan_out(q, &targets)?;
        ids.retain(|id| {
            self.table.get(id).is_some_and(|m| {
                let s = m.v.abs();
                v_lo <= s && s <= v_hi
            })
        });
        Ok(ids)
    }

    /// Answers a MOR query inside a hierarchical trace span: the root
    /// `query` span (method, summed candidates, merged result count)
    /// has one `s<shard>/execute` child per fan-out leg, each carrying
    /// its queue wait and the worker's `index.query` subtree down to
    /// per-store I/O leaves. All spans measure from the facade's shared
    /// epoch, so the tree renders as one timeline (one lane per worker)
    /// in the Chrome trace export, and
    /// [`Span::total_io`] reconciles with the [`ShardedDb::io_totals`]
    /// delta. The finished tree is also pushed into the facade's
    /// [`EventLog`] ([`ShardedDb::recent_spans`]); flatten it with
    /// [`QueryTrace::from_span`](mobidx_obs::QueryTrace::from_span) for
    /// the legacy per-query record (store labels keep their `s<shard>/`
    /// prefixes).
    ///
    /// # Errors
    /// As [`ShardedDb::query`].
    pub fn query_traced(&self, q: &MorQuery1D) -> Result<(Vec<u64>, Span), ServeError> {
        let mut root = OpenSpan::begin("query", self.epoch);
        root.set_attr(
            "method",
            format!("sharded[{}x {}]", self.shards, self.shard_fn.name()).as_str(),
        );
        root.set_attr("lane", 0u64);
        root.set_attr("lane_name", "client");
        let sent_nanos = root.start_nanos();
        let mut waits = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (reply, rx) = channel();
            self.send(
                shard,
                Request::Traced {
                    q: *q,
                    epoch: self.epoch,
                    sent_nanos,
                    reply,
                },
            )?;
            waits.push((shard, rx));
        }
        let mut candidates = 0u64;
        let mut lists = Vec::with_capacity(self.shards);
        for (shard, rx) in waits {
            let (ids, leg) = rx.recv().map_err(|_| ServeError::ShardDown { shard })??;
            candidates += leg.attr_u64("candidates").unwrap_or(0);
            root.push(leg);
            lists.push(ids);
        }
        let merged = merge_sorted_ids(&lists);
        root.set_attr("candidates", candidates);
        root.set_attr("results", merged.len() as u64);
        let span = root.finish();
        self.events.push(Arc::new(span.clone()));
        self.profile
            .record_query(merged.len() as u64, self.table.len() as u64);
        Ok((merged, span))
    }

    /// A point-in-time health summary of every shard: queue depth and
    /// high-water gauges, applied/queued counters, poisoned state, and
    /// query/update/io-wait latency percentiles. Reads shared atomics
    /// directly — no worker round-trip, so it works even when a worker
    /// is wedged on a full queue or poisoned.
    #[must_use]
    pub fn health(&self) -> HealthSnapshot {
        HealthSnapshot {
            shards: self
                .health
                .iter()
                .enumerate()
                .map(|(shard, h)| h.snapshot(shard))
                .collect(),
            spans_recorded: self.events.recorded(),
            spans_dropped: self.events.dropped(),
        }
    }

    /// One shard's live health state — the hook for wiring a
    /// `DelayBackend::with_histogram` to the shard's `io_wait`
    /// histogram.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard_health(&self, shard: usize) -> &Arc<ShardHealth> {
        &self.health[shard]
    }

    /// The most recent traced-query span trees, oldest first (bounded
    /// ring; see [`ShardedDb::event_log`] for drop accounting).
    #[must_use]
    pub fn recent_spans(&self) -> Vec<Arc<Span>> {
        self.events.snapshot()
    }

    /// The facade's span ring buffer.
    #[must_use]
    pub fn event_log(&self) -> &EventLog {
        &self.events
    }

    /// The live workload characterizer: velocity bands, query
    /// selectivity, update:query mix, and windowed drift detection (see
    /// [`WorkloadProfile`]). Call
    /// [`rebaseline`](WorkloadProfile::rebaseline) after adapting to a
    /// drifted distribution.
    #[must_use]
    pub fn profile(&self) -> &Arc<WorkloadProfile> {
        &self.profile
    }

    /// Worker queue handles for the telemetry sampler (crate-internal).
    pub(crate) fn telemetry_senders(&self) -> &[SyncSender<Request<I>>] {
        &self.senders
    }

    /// Shared health state for the telemetry sampler (crate-internal).
    pub(crate) fn telemetry_health(&self) -> &[Arc<ShardHealth>] {
        &self.health
    }

    /// Shared event log for the telemetry sampler (crate-internal).
    pub(crate) fn telemetry_events(&self) -> &Arc<EventLog> {
        &self.events
    }

    /// Aggregated I/O counters across every shard.
    ///
    /// # Errors
    /// [`ServeError::ShardDown`] when a worker is gone.
    pub fn io_totals(&self) -> Result<IoTotals, ServeError> {
        Ok(self
            .stats()?
            .into_iter()
            .fold(IoTotals::default(), |acc, (t, _)| acc.merge(t)))
    }

    /// Per-store I/O breakdown across every shard, labels prefixed
    /// `s<shard>/`.
    ///
    /// # Errors
    /// [`ServeError::ShardDown`] when a worker is gone.
    pub fn store_io(&self) -> Result<Vec<(String, IoTotals)>, ServeError> {
        let mut out = Vec::new();
        for (shard, (_, stores)) in self.stats()?.into_iter().enumerate() {
            for (label, totals) in stores {
                out.push((format!("s{shard}/{label}"), totals));
            }
        }
        Ok(out)
    }

    /// Clears every shard's buffer pools (cold-query protocol).
    ///
    /// # Errors
    /// [`ServeError::ShardDown`] when a worker is gone.
    pub fn clear_buffers(&self) -> Result<(), ServeError> {
        self.broadcast_unit(|reply| Request::ClearBuffers { reply })
    }

    /// Resets every shard's I/O counters.
    ///
    /// # Errors
    /// [`ServeError::ShardDown`] when a worker is gone.
    pub fn reset_io(&self) -> Result<(), ServeError> {
        self.broadcast_unit(|reply| Request::ResetIo { reply })
    }

    /// Runs `f` against the index instance owned by `shard`, on the
    /// worker thread, and returns its result. The escape hatch for
    /// method-specific extensions and for the `mobidx-check` harness
    /// (which uses it to install fault-injecting backends).
    ///
    /// # Errors
    /// [`ServeError::ShardPoisoned`] when the shard awaits a rebuild,
    /// [`ServeError::ShardFault`] when `f` itself panics.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn with_shard<R, F>(&self, shard: usize, f: F) -> Result<R, ServeError>
    where
        F: FnOnce(&mut I) -> R + Send + 'static,
        R: Send + 'static,
    {
        assert!(shard < self.shards, "shard {shard} out of range");
        let (value_tx, value_rx) = channel();
        let (reply, rx) = channel();
        self.send(
            shard,
            Request::With {
                f: Box::new(move |index: &mut I| {
                    let _ = value_tx.send(f(index));
                }),
                reply,
            },
        )?;
        rx.recv().map_err(|_| ServeError::ShardDown { shard })??;
        value_rx.recv().map_err(|_| ServeError::ShardDown { shard })
    }

    /// Rebuilds one shard from the authoritative motion table: a fresh
    /// index instance (from the factory) is shipped to the worker, which
    /// swaps it in, clears its poisoned flag, and re-inserts the shard's
    /// motions. The recovery path after [`ServeError::ShardFault`].
    ///
    /// Returns the index it replaced, in its last (possibly poisoned,
    /// mid-operation) state, so callers can run a post-mortem — e.g.
    /// read I/O or fault counters out of its stores. Drop it to discard.
    ///
    /// # Errors
    /// [`ServeError::ShardFault`] when the rebuild itself faults (e.g. a
    /// still-installed fault backend fires again) — the shard stays
    /// poisoned and the replaced index is lost; [`ServeError::ShardDown`]
    /// when the worker is gone.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn rebuild_shard(&mut self, shard: usize) -> Result<Box<I>, ServeError> {
        assert!(shard < self.shards, "shard {shard} out of range");
        let mut motions: Vec<Motion1D> = self
            .table
            .values()
            .filter(|m| self.shard_fn.shard_of(m, self.shards) == shard)
            .copied()
            .collect();
        // Replay in id order, not hash-map order, so a rebuild produces
        // the same page layout on every run of the same seed (the
        // model-checking harness depends on this for reproducibility).
        motions.sort_unstable_by_key(|m| m.id);
        let index = Box::new((self.factory)(shard, self.shards));
        let (reply, rx) = channel();
        self.send(
            shard,
            Request::Rebuild {
                index,
                motions,
                reply,
            },
        )?;
        rx.recv().map_err(|_| ServeError::ShardDown { shard })?
    }

    /// Sends a fan-out query to `targets` and merges the answers,
    /// recycling result buffers through the pool.
    fn fan_out(&self, q: &MorQuery1D, targets: &[usize]) -> Result<Vec<u64>, ServeError> {
        if targets.is_empty() {
            return Ok(Vec::new());
        }
        let mut waits = Vec::with_capacity(targets.len());
        for &shard in targets {
            let buf = self
                .buffers
                .lock()
                .expect("buffer pool")
                .pop()
                .unwrap_or_default();
            let (reply, rx) = channel();
            self.send(shard, Request::Query { q: *q, buf, reply })?;
            waits.push((shard, rx));
        }
        let mut lists = Vec::with_capacity(waits.len());
        for (shard, rx) in waits {
            lists.push(rx.recv().map_err(|_| ServeError::ShardDown { shard })??);
        }
        let merged = merge_sorted_ids(&lists);
        let mut pool = self.buffers.lock().expect("buffer pool");
        for mut l in lists {
            l.clear();
            pool.push(l);
        }
        drop(pool);
        self.profile
            .record_query(merged.len() as u64, self.table.len() as u64);
        Ok(merged)
    }

    /// Collects `(io_totals, store_io)` from every shard.
    #[allow(clippy::type_complexity)]
    fn stats(&self) -> Result<Vec<(IoTotals, Vec<(String, IoTotals)>)>, ServeError> {
        let mut waits = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (reply, rx) = channel();
            self.send(shard, Request::Stats { reply })?;
            waits.push((shard, rx));
        }
        waits
            .into_iter()
            .map(|(shard, rx)| rx.recv().map_err(|_| ServeError::ShardDown { shard }))
            .collect()
    }

    /// Broadcasts a unit-reply request to every shard and waits.
    fn broadcast_unit(
        &self,
        make: impl Fn(std::sync::mpsc::Sender<()>) -> Request<I>,
    ) -> Result<(), ServeError> {
        let mut waits: Vec<(usize, Receiver<()>)> = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (reply, rx) = channel();
            self.send(shard, make(reply))?;
            waits.push((shard, rx));
        }
        for (shard, rx) in waits {
            rx.recv().map_err(|_| ServeError::ShardDown { shard })?;
        }
        Ok(())
    }

    /// Sends one request, mapping a closed queue to `ShardDown`. The
    /// queue-depth gauge is bumped *before* the send — a send blocked on
    /// a full queue counts toward the depth, so the gauge reads as the
    /// congestion on the shard, not just its buffered requests. The
    /// worker decrements at dequeue.
    fn send(&self, shard: usize, req: Request<I>) -> Result<(), ServeError> {
        let h = &self.health[shard];
        let depth = h.queue_depth.incr();
        h.queue_high_water.set_max(depth);
        match self.senders[shard].send(req) {
            Ok(()) => {
                h.enqueued.incr();
                Ok(())
            }
            Err(_) => {
                // Never dequeued; undo the depth bump.
                h.queue_depth.decr();
                Err(ServeError::ShardDown { shard })
            }
        }
    }
}

impl<I: Index1D + Send + 'static> Drop for ShardedDb<I> {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<I: Index1D + Send + 'static> std::fmt::Debug for ShardedDb<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDb")
            .field("shards", &self.shards)
            .field("shard_fn", &self.shard_fn.name())
            .field("objects", &self.table.len())
            .finish_non_exhaustive()
    }
}
