//! Shard functions: how the object population is partitioned across the
//! worker pool.
//!
//! A [`ShardFn`] maps a motion record to a shard deterministically *from
//! the record alone*, so the facade can route an update's delete-half to
//! the shard holding the old record and its insert-half to the shard the
//! new record belongs on — which may differ (an object that changes
//! speed migrates between speed-band shards).

use mobidx_core::SpeedBand;
use mobidx_workload::Motion1D;

/// A deterministic partition of motion records over `shards` workers.
pub trait ShardFn: Send + Sync {
    /// Display name used in traces and benchmark reports.
    fn name(&self) -> String;

    /// The shard owning `m`, in `0..shards`.
    fn shard_of(&self, m: &Motion1D, shards: usize) -> usize;

    /// The shards that can possibly hold an object whose absolute speed
    /// lies in `[v_lo, v_hi]` — `None` when the partition carries no
    /// speed information (query all shards). Used by
    /// [`crate::ShardedDb::query`] when the request carries a
    /// [`mobidx_core::QueryRequest::speed_band`] filter, to prune the
    /// fan-out.
    fn shards_for_speed(&self, v_lo: f64, v_hi: f64, shards: usize) -> Option<Vec<usize>> {
        let _ = (v_lo, v_hi, shards);
        None
    }
}

/// Hash partitioning on the object id (SplitMix64 finalizer): uniform
/// load, no pruning. The baseline shard function.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdHashShard;

impl ShardFn for IdHashShard {
    fn name(&self) -> String {
        "id-hash".to_owned()
    }

    fn shard_of(&self, m: &Motion1D, shards: usize) -> usize {
        let mut z = m.id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % shards as u64) as usize
    }
}

/// Speed-band partitioning: shard `i` holds the objects whose absolute
/// speed falls in the `i`-th of `shards` geometrically spaced sub-bands
/// of the global band (Xu et al.'s velocity partitioning; [[PAPERS.md]]).
///
/// Geometric (log-spaced) edges equalize the per-band ratio
/// `v_max/v_min`, which governs the dual-B+ method's query enlargement
/// `E ∝ ((v_max − v_min)/(v_min·v_max))²` — each shard's index is
/// configured with its *narrow* sub-band, so per-shard candidate scans
/// shrink superlinearly with the shard count. That, not thread
/// parallelism, is where the serving tier's query speed-up comes from.
#[derive(Debug, Clone, Copy)]
pub struct SpeedBandShard {
    band: SpeedBand,
}

impl SpeedBandShard {
    /// Partitions `band` geometrically.
    #[must_use]
    pub fn new(band: SpeedBand) -> Self {
        Self { band }
    }

    /// The sub-band assigned to shard `i` of `shards`: edges at
    /// `v_min · r^(i/S)` with `r = v_max/v_min`.
    #[must_use]
    pub fn sub_band(&self, i: usize, shards: usize) -> SpeedBand {
        #[allow(clippy::cast_precision_loss)]
        let frac = |k: usize| k as f64 / shards as f64;
        let r = self.band.v_max / self.band.v_min;
        SpeedBand::new(
            self.band.v_min * r.powf(frac(i)),
            self.band.v_min * r.powf(frac(i + 1)),
        )
    }

    /// The band to *configure shard `i`'s index with*: the sub-band
    /// padded by a relative epsilon on both edges. Shard assignment is
    /// computed in floating point, so a speed sitting exactly on an edge
    /// may land one ulp outside the exact sub-band; an index configured
    /// with the padded band still covers it (a dual-B+ instance misses
    /// objects whose speed falls outside its configured band). The
    /// padding's effect on query enlargement is negligible.
    #[must_use]
    pub fn index_band(&self, i: usize, shards: usize) -> SpeedBand {
        let b = self.sub_band(i, shards);
        SpeedBand::new(b.v_min * (1.0 - 1e-6), b.v_max * (1.0 + 1e-6))
    }

    /// The shard whose sub-band contains absolute speed `s` (clamped to
    /// the global band).
    fn shard_of_speed(&self, s: f64, shards: usize) -> usize {
        let r = self.band.v_max / self.band.v_min;
        let s = s.clamp(self.band.v_min, self.band.v_max);
        #[allow(clippy::cast_precision_loss)]
        let raw = (shards as f64 * (s / self.band.v_min).ln() / r.ln()).floor();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let i = raw.max(0.0) as usize;
        i.min(shards - 1)
    }
}

impl ShardFn for SpeedBandShard {
    fn name(&self) -> String {
        "speed-band".to_owned()
    }

    fn shard_of(&self, m: &Motion1D, shards: usize) -> usize {
        self.shard_of_speed(m.v.abs(), shards)
    }

    fn shards_for_speed(&self, v_lo: f64, v_hi: f64, shards: usize) -> Option<Vec<usize>> {
        if v_hi < v_lo {
            return Some(Vec::new());
        }
        let first = self.shard_of_speed(v_lo, shards);
        let last = self.shard_of_speed(v_hi, shards);
        Some((first..=last).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(id: u64, v: f64) -> Motion1D {
        Motion1D {
            id,
            t0: 0.0,
            y0: 0.0,
            v,
        }
    }

    #[test]
    fn id_hash_is_deterministic_and_in_range() {
        let f = IdHashShard;
        for id in 0..1000 {
            let s = f.shard_of(&m(id, 1.0), 7);
            assert!(s < 7);
            assert_eq!(s, f.shard_of(&m(id, -0.5), 7), "id decides, not speed");
        }
        assert!(f.shards_for_speed(0.2, 0.3, 7).is_none());
    }

    #[test]
    fn id_hash_spreads_load() {
        let f = IdHashShard;
        let mut counts = [0usize; 4];
        for id in 0..4000 {
            counts[f.shard_of(&m(id, 1.0), 4)] += 1;
        }
        for c in counts {
            assert!((800..=1200).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn speed_bands_tile_the_global_band() {
        let f = SpeedBandShard::new(SpeedBand::paper());
        for shards in [1usize, 2, 4, 8] {
            let mut prev = SpeedBand::paper().v_min;
            for i in 0..shards {
                let b = f.sub_band(i, shards);
                assert!((b.v_min - prev).abs() < 1e-9, "gap at shard {i}");
                prev = b.v_max;
            }
            assert!((prev - SpeedBand::paper().v_max).abs() < 1e-9);
        }
    }

    #[test]
    fn shard_of_matches_sub_band() {
        let f = SpeedBandShard::new(SpeedBand::paper());
        let shards = 5;
        for k in 0..200 {
            let v = 0.16 + (1.66 - 0.16) * f64::from(k) / 200.0;
            let s = f.shard_of(&m(1, v), shards);
            let b = f.sub_band(s, shards);
            assert!(
                b.v_min - 1e-9 <= v && v <= b.v_max + 1e-9,
                "v={v} landed in shard {s} = {b:?}"
            );
            assert_eq!(s, f.shard_of(&m(1, -v), shards), "speed is |v|");
        }
    }

    #[test]
    fn speed_pruning_covers_the_range() {
        let f = SpeedBandShard::new(SpeedBand::paper());
        let shards = 8;
        let pruned = f.shards_for_speed(0.3, 0.5, shards).expect("prunable");
        assert!(!pruned.is_empty() && pruned.len() < shards);
        // Every object with speed in range maps to a listed shard.
        for k in 0..100 {
            let v = 0.3 + 0.2 * f64::from(k) / 100.0;
            assert!(pruned.contains(&f.shard_of(&m(1, v), shards)));
        }
        // Degenerate and full-range cases.
        assert!(f.shards_for_speed(0.5, 0.4, shards).unwrap().is_empty());
        assert_eq!(f.shards_for_speed(0.0, 99.0, shards).unwrap().len(), shards);
    }
}
