//! Update batches: the unit of write admission.
//!
//! §2 of the paper: objects report motion changes as discrete updates.
//! A serving tier admits them in batches — the facade validates the
//! whole batch against the authoritative motion table, splits it into
//! per-shard op lists, and dispatches each list as one queue message, so
//! a 1000-op batch costs each worker one dequeue, not a thousand.

use mobidx_workload::Motion1D;

/// One logical write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Register a new object (fails on a tracked id).
    Insert(Motion1D),
    /// Replace a tracked object's motion record (fails on an unknown
    /// id). May migrate the object between shards.
    Update(Motion1D),
    /// Deregister an object by id (fails on an unknown id).
    Remove(u64),
}

/// An ordered list of writes applied atomically with respect to
/// validation: either every op is admissible (in sequence) and the batch
/// is dispatched, or the first inadmissible op aborts the whole batch
/// before anything changes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    /// The writes, in application order.
    pub ops: Vec<Op>,
}

impl Batch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an insert.
    pub fn insert(&mut self, m: Motion1D) -> &mut Self {
        self.ops.push(Op::Insert(m));
        self
    }

    /// Appends an update.
    pub fn update(&mut self, m: Motion1D) -> &mut Self {
        self.ops.push(Op::Update(m));
        self
    }

    /// Appends a remove.
    pub fn remove(&mut self, id: u64) -> &mut Self {
        self.ops.push(Op::Remove(id));
        self
    }

    /// Number of ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A shard-local physical op, produced by splitting a [`Batch`]: a
/// logical `Update` becomes a `Remove(old)` on the old record's shard
/// plus an `Insert(new)` on the new record's shard.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ShardOp {
    Insert(Motion1D),
    Remove(Motion1D),
}
