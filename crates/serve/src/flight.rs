//! The flight recorder: an always-on black box over a [`ShardedDb`].
//!
//! Every piece of observable state in the serving tier — recent span
//! trees, per-shard health, the telemetry window, WAL/I/O counter
//! deltas, the workload profile, and the SLO engine's active alerts —
//! already lives in shared, cheaply readable structures. The
//! [`FlightRecorder`] holds `Arc`s to all of them and, on a *trigger*,
//! serializes a single self-contained JSON **diagnostic bundle** into a
//! bounded in-memory ring. Nothing is written on the hot path: the
//! recorder piggybacks on the telemetry sampler's tick
//! ([`FlightRecorder::on_tick`] runs on the sampler thread, after the
//! harvest), so a capture costs a few hundred microseconds of
//! serialization *on the sampler thread* and zero on serving threads.
//!
//! ## Triggers
//!
//! * `shard_poison` — a shard's poisoned gauge rose since the last
//!   tick;
//! * `slo_breach` — the [`SloEngine`] raised a new alert (burn-rate or
//!   anomaly);
//! * `drift` — the workload profile's drift detector fired;
//! * `manual` — an explicit [`ShardedDb::dump_bundle`] call.
//!
//! At most one bundle is captured per tick (poison outranks SLO
//! outranks drift), and the ring keeps the most recent
//! [`FlightConfig::max_bundles`] — a crashed-over-and-over shard cannot
//! grow memory without bound.
//!
//! ## Bundle schema
//!
//! A bundle is one JSON object, `kind: "mobidx-bundle"`, and is fully
//! self-contained: `mobidx-doctor` parses it back (spans via
//! `Span::from_json`, series via the telemetry section) with no access
//! to the process that wrote it. See EXPERIMENTS.md for the full field
//! list and DESIGN.md §11 for the semantics.

use crate::db::ShardedDb;
use crate::health::{HealthSnapshot, ShardHealth};
use crate::snapshot::{ReadPoolMetrics, SnapshotRegistry};
use mobidx_core::{Index1D, IoTotals};
use mobidx_obs::json::Value;
use mobidx_obs::slo::SloEngine;
use mobidx_obs::telemetry::{Telemetry, WorkloadProfile};
use mobidx_obs::EventLog;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Bounds of the flight recorder's black box.
#[derive(Debug, Clone, Copy)]
pub struct FlightConfig {
    /// Diagnostic bundles retained (ring; oldest evicted first).
    pub max_bundles: usize,
    /// Span trees serialized into each bundle (the most recent ones
    /// from the event log).
    pub max_spans: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        Self {
            max_bundles: 4,
            max_spans: 48,
        }
    }
}

/// Everything the sampler attaches once it starts: the series registry
/// and the SLO engine whose alert edges drive the `slo_breach` trigger.
#[derive(Default)]
struct Attached {
    telemetry: Option<Arc<Telemetry>>,
    slo: Option<Arc<SloEngine>>,
}

/// Trigger edge-detection state, advanced once per tick.
struct TriggerState {
    poisoned: Vec<bool>,
    alerts_raised: u64,
    drift_events: u64,
}

/// Per-trigger capture counters plus the bundle ring.
struct RecorderState {
    bundles: VecDeque<Value>,
    seq: u64,
    captures: u64,
    by_trigger: Vec<(String, u64)>,
    /// Per-shard I/O totals at the last capture, for the bundle's
    /// `delta` section.
    last_io: Vec<IoTotals>,
}

/// The always-on black box (see the module docs). One per
/// [`ShardedDb`], created at construction; triggers are evaluated on
/// the telemetry sampler's tick, and [`ShardedDb::dump_bundle`]
/// captures on demand.
pub struct FlightRecorder {
    cfg: FlightConfig,
    shards: usize,
    /// The facade's span time base — bundle timestamps share the span
    /// timeline.
    epoch: Instant,
    events: Arc<EventLog>,
    health: Vec<Arc<ShardHealth>>,
    read_pool: Arc<ReadPoolMetrics>,
    profile: Arc<WorkloadProfile>,
    registry: Arc<SnapshotRegistry>,
    attached: Mutex<Attached>,
    triggers: Mutex<TriggerState>,
    state: Mutex<RecorderState>,
}

impl FlightRecorder {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cfg: FlightConfig,
        shards: usize,
        epoch: Instant,
        events: Arc<EventLog>,
        health: Vec<Arc<ShardHealth>>,
        read_pool: Arc<ReadPoolMetrics>,
        profile: Arc<WorkloadProfile>,
        registry: Arc<SnapshotRegistry>,
    ) -> Self {
        Self {
            cfg,
            shards,
            epoch,
            events,
            health,
            read_pool,
            profile,
            registry,
            attached: Mutex::new(Attached::default()),
            triggers: Mutex::new(TriggerState {
                poisoned: vec![false; shards],
                alerts_raised: 0,
                drift_events: 0,
            }),
            state: Mutex::new(RecorderState {
                bundles: VecDeque::new(),
                seq: 0,
                captures: 0,
                by_trigger: Vec::new(),
                last_io: vec![IoTotals::default(); shards],
            }),
        }
    }

    /// Wires the sampler-owned registry and SLO engine in (called by
    /// `start_sampler`; the last started sampler wins).
    pub(crate) fn attach(&self, telemetry: Arc<Telemetry>, slo: Arc<SloEngine>) {
        let mut a = self.attached.lock().expect("recorder attachments");
        a.telemetry = Some(telemetry);
        a.slo = Some(slo);
    }

    /// Evaluates the automatic triggers against the current state and
    /// captures at most one bundle. Runs on the sampler thread, once
    /// per tick, after the harvest and the SLO evaluation; `io` is the
    /// sampler's freshly polled per-shard totals (`None` where a worker
    /// did not answer).
    pub(crate) fn on_tick(&self, io: &[Option<IoTotals>]) {
        let trigger = {
            let mut t = self.triggers.lock().expect("recorder triggers");
            let mut fired: Option<&'static str> = None;
            for (shard, h) in self.health.iter().enumerate() {
                let poisoned = h.poisoned.get() != 0;
                if poisoned && !t.poisoned[shard] {
                    fired = Some("shard_poison");
                }
                t.poisoned[shard] = poisoned;
            }
            let raised = self
                .attached
                .lock()
                .expect("recorder attachments")
                .slo
                .as_ref()
                .map_or(0, |s| s.alerts_raised());
            if raised > t.alerts_raised && fired.is_none() {
                fired = Some("slo_breach");
            }
            t.alerts_raised = raised;
            let drift = self.profile.drift_events();
            if drift > t.drift_events && fired.is_none() {
                fired = Some("drift");
            }
            t.drift_events = drift;
            fired
        };
        if let Some(trigger) = trigger {
            self.capture(trigger, io);
        }
    }

    /// Serializes one diagnostic bundle from the shared state and
    /// pushes it into the ring (evicting the oldest past
    /// [`FlightConfig::max_bundles`]). Returns the bundle.
    pub(crate) fn capture(&self, trigger: &str, io: &[Option<IoTotals>]) -> Value {
        let t_nanos = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let health = HealthSnapshot {
            shards: self
                .health
                .iter()
                .enumerate()
                .map(|(shard, h)| h.snapshot(shard))
                .collect(),
            read_pool: self.read_pool.snapshot(),
            spans_recorded: self.events.recorded(),
            spans_dropped: self.events.dropped(),
        };
        let spans: Vec<Value> = {
            let all = self.events.snapshot();
            let skip = all.len().saturating_sub(self.cfg.max_spans);
            all[skip..].iter().map(|s| s.to_json()).collect()
        };
        let (telemetry_json, alerts_json) = {
            let a = self.attached.lock().expect("recorder attachments");
            (
                a.telemetry.as_ref().map_or(Value::Null, |t| t.to_json()),
                a.slo.as_ref().map_or(Value::Null, |s| s.to_json()),
            )
        };
        let mut st = self.state.lock().expect("recorder state");
        let io_json: Vec<Value> = (0..self.shards)
            .map(|shard| {
                let totals = io
                    .get(shard)
                    .copied()
                    .flatten()
                    .unwrap_or(st.last_io[shard]);
                let prev = st.last_io[shard];
                st.last_io[shard] = totals;
                let delta = totals.delta_since(prev);
                Value::Obj(vec![
                    ("shard".to_owned(), Value::from(shard)),
                    ("totals".to_owned(), io_totals_json(totals)),
                    ("delta".to_owned(), io_totals_json(delta)),
                ])
            })
            .collect();
        st.seq += 1;
        st.captures += 1;
        match st.by_trigger.iter_mut().find(|(t, _)| t == trigger) {
            Some(slot) => slot.1 += 1,
            None => st.by_trigger.push((trigger.to_owned(), 1)),
        }
        let bundle = Value::Obj(vec![
            ("kind".to_owned(), Value::from("mobidx-bundle")),
            ("version".to_owned(), Value::from(1u64)),
            ("seq".to_owned(), Value::from(st.seq)),
            ("trigger".to_owned(), Value::from(trigger)),
            ("t_nanos".to_owned(), Value::from(t_nanos)),
            ("shards".to_owned(), Value::from(self.shards)),
            (
                "snapshot_epoch".to_owned(),
                Value::from(self.registry.epoch()),
            ),
            ("health".to_owned(), health.to_json()),
            ("io".to_owned(), Value::Arr(io_json)),
            ("alerts".to_owned(), alerts_json),
            ("events".to_owned(), Value::Arr(spans)),
            ("telemetry".to_owned(), telemetry_json),
            ("profile".to_owned(), self.profile.to_json()),
        ]);
        st.bundles.push_back(bundle.clone());
        while st.bundles.len() > self.cfg.max_bundles.max(1) {
            st.bundles.pop_front();
        }
        drop(st);
        bundle
    }

    /// Bundles captured since startup (captures, not retained bundles).
    #[must_use]
    pub fn captures(&self) -> u64 {
        self.state.lock().expect("recorder state").captures
    }

    /// Capture counts per trigger, in first-seen order.
    #[must_use]
    pub fn trigger_counts(&self) -> Vec<(String, u64)> {
        self.state
            .lock()
            .expect("recorder state")
            .by_trigger
            .clone()
    }

    /// The retained bundles, oldest first.
    #[must_use]
    pub fn bundles(&self) -> Vec<Value> {
        self.state
            .lock()
            .expect("recorder state")
            .bundles
            .iter()
            .cloned()
            .collect()
    }

    /// The most recent bundle, if any was captured.
    #[must_use]
    pub fn last_bundle(&self) -> Option<Value> {
        self.state
            .lock()
            .expect("recorder state")
            .bundles
            .back()
            .cloned()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("shards", &self.shards)
            .field("captures", &self.captures())
            .finish_non_exhaustive()
    }
}

/// Serializes [`IoTotals`] for the bundle's `io` section.
fn io_totals_json(t: IoTotals) -> Value {
    Value::Obj(vec![
        ("reads".to_owned(), Value::from(t.reads)),
        ("writes".to_owned(), Value::from(t.writes)),
        ("pages".to_owned(), Value::from(t.pages)),
        ("hits".to_owned(), Value::from(t.hits)),
        ("wal_records".to_owned(), Value::from(t.wal_records)),
        ("wal_fsyncs".to_owned(), Value::from(t.wal_fsyncs)),
    ])
}

impl<I: Index1D + Send + 'static> ShardedDb<I> {
    /// Captures a diagnostic bundle *now* (trigger `manual`) and
    /// returns it. The bundle also lands in the recorder's ring, next
    /// to any automatically triggered ones. Worker I/O totals are
    /// polled best-effort: a poisoned shard still answers, a dead
    /// worker's totals freeze at their last captured value.
    #[must_use]
    pub fn dump_bundle(&self) -> Value {
        let io = self.stats_best_effort();
        self.flight_recorder().capture("manual", &io)
    }
}
