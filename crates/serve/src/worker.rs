//! Shard workers: one thread owning one index.
//!
//! The concurrency model is shard ownership, not shared locks: each
//! worker thread exclusively owns its [`Index1D`] instance and drains a
//! bounded request queue. `&mut` access is therefore free of
//! synchronization — the queue *is* the synchronization — and a slow
//! shard exerts backpressure by letting its queue fill, blocking the
//! facade's `send` instead of growing memory without bound.
//!
//! Index methods are written against the infallible [`Index1D`] surface
//! and panic when a pager fault goes unrecovered. A serving layer must
//! not let one poisoned request take the pool down, so every index
//! operation runs under `catch_unwind`: a panic marks the shard
//! *poisoned* (subsequent requests fail fast with a typed error; the
//! worker keeps draining its queue) until the facade ships a freshly
//! rebuilt index via [`Request::Rebuild`].
//!
//! [`Index1D`]: mobidx_core::Index1D

use crate::batch::ShardOp;
use crate::health::ShardHealth;
use crate::ServeError;
use mobidx_core::{FrozenIndex1D, Index1D, IoTotals, QueryRequest};
use mobidx_obs::telemetry::WorkloadProfile;
use mobidx_obs::{OpenSpan, Span};
use mobidx_workload::{MorQuery1D, Motion1D};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// A message to a shard worker. Replies travel on per-request channels
/// so concurrent clients never see each other's answers.
pub(crate) enum Request<I> {
    /// Apply this shard's slice of a batch, in order. On success the
    /// reply carries the shard's freshly frozen read view (one freeze
    /// per drained group, shared by every reply of the group), or `None`
    /// when the index cannot freeze — the facade's snapshot registry
    /// then keeps serving the previous snapshot.
    Apply {
        ops: Vec<ShardOp>,
        #[allow(clippy::type_complexity)]
        reply: Sender<Result<Option<Arc<dyn FrozenIndex1D>>, ServeError>>,
    },
    /// Answer a MOR query into `buf` (a pooled buffer whose capacity is
    /// reused across requests) and send it back.
    Query {
        q: MorQuery1D,
        buf: Vec<u64>,
        reply: Sender<Result<Vec<u64>, ServeError>>,
    },
    /// Answer a MOR query inside a hierarchical trace span. `epoch` is
    /// the facade-wide time base every span of the tree measures from,
    /// and `sent_nanos` the enqueue time against that base (the worker
    /// derives its queue wait from it).
    Traced {
        q: MorQuery1D,
        epoch: Instant,
        sent_nanos: u64,
        #[allow(clippy::type_complexity)]
        reply: Sender<Result<(Vec<u64>, Span), ServeError>>,
    },
    /// Report I/O totals and the per-store breakdown.
    Stats {
        #[allow(clippy::type_complexity)]
        reply: Sender<(IoTotals, Vec<(String, IoTotals)>)>,
    },
    /// Flush and clear buffer pools.
    ClearBuffers { reply: Sender<()> },
    /// Reset I/O counters.
    ResetIo { reply: Sender<()> },
    /// Run an arbitrary closure against the owned index (the
    /// fault-injection hook of `mobidx-check`; see
    /// [`crate::ShardedDb::with_shard`]).
    With {
        f: Box<dyn FnOnce(&mut I) + Send>,
        reply: Sender<Result<(), ServeError>>,
    },
    /// Replace the owned index with `index` and load `motions` into it,
    /// clearing the poisoned flag. The facade sends the authoritative
    /// motion records for this shard.
    Rebuild {
        index: Box<I>,
        motions: Vec<Motion1D>,
        #[allow(clippy::type_complexity)]
        reply: Sender<Result<(Box<I>, Option<Arc<dyn FrozenIndex1D>>), ServeError>>,
    },
    /// Drain and exit (sent on facade drop).
    Shutdown,
}

/// The worker loop: owns `index` until shutdown. `health` is shared
/// with the facade: the worker decrements the queue-depth gauge at each
/// dequeue, feeds the latency histograms, and mirrors its poisoned flag
/// into the gauge so [`crate::ShardedDb::health`] sees it without a
/// queue round-trip. `profile` is the facade-wide workload
/// characterizer: the worker feeds it the velocity of every record it
/// inserts (updates arrive as remove+insert, so inserts carry the
/// current velocity distribution).
///
/// When `commit_on_apply` is set (any fsync policy but `Never`), every
/// drained apply group ends by sealing one durability commit window on
/// the index's stores ([`Index1D::commit_group`]) — the opportunistic
/// queue drain below thereby doubles as WAL group commit: `k` queued
/// applies cost one sealed window, not `k`. A rejected window reports
/// [`ServeError::ShardFault`] to every batch in the group but does
/// *not* poison the shard — the in-memory index is intact and the
/// window is retried wholesale by the next group's commit.
pub(crate) fn run<I: Index1D>(
    shard: usize,
    mut index: I,
    rx: &Receiver<Request<I>>,
    health: &Arc<ShardHealth>,
    profile: &Arc<WorkloadProfile>,
    commit_on_apply: bool,
) {
    let mut poisoned = false;
    'serve: while let Ok(req) = rx.recv() {
        health.queue_depth.decr();
        health.dequeued.incr();
        // An `Apply` may coalesce queued `Apply`s behind it; the first
        // non-`Apply` drained is carried over to the next iteration.
        let mut carried = Some(req);
        while let Some(req) = carried.take() {
            match req {
                Request::Apply { ops, reply } => {
                    // Group commit: opportunistically drain every Apply
                    // already queued so their ops are sorted and applied
                    // as a single batch (one descent and one dirty page
                    // per touched leaf, not one per op).
                    let mut group = ops;
                    let mut replies = vec![reply];
                    while let Ok(next) = rx.try_recv() {
                        health.queue_depth.decr();
                        health.dequeued.incr();
                        match next {
                            Request::Apply { ops, reply } => {
                                group.extend(ops);
                                replies.push(reply);
                            }
                            other => {
                                carried = Some(other);
                                break;
                            }
                        }
                    }
                    health.drained_batch_size.record(group.len() as u64);
                    let n_ops = group.len() as u64;
                    let started = Instant::now();
                    let mut r = guarded(shard, &mut poisoned, || {
                        apply_group(&mut index, &group);
                    });
                    if r.is_ok() && commit_on_apply {
                        // Durability group commit: one sealed window for
                        // the whole drained group (no-op on memory
                        // backends). A rejection leaves the index state
                        // valid and the window pending, so the shard is
                        // not poisoned.
                        if let Err((store, error)) = index.commit_group() {
                            r = Err(ServeError::ShardFault {
                                shard,
                                panic: format!("commit window rejected on {store}: {error}"),
                            });
                        }
                    }
                    let mut view: Option<Arc<dyn FrozenIndex1D>> = None;
                    if r.is_ok() {
                        health.update_latency.record(elapsed_us(started));
                        health.applied_batches.incr();
                        health.applied_ops.add(n_ops);
                        for op in &group {
                            if let ShardOp::Insert(m) = op {
                                profile.record_update(m.v);
                            }
                        }
                        // One freeze per drained group: the sealed
                        // post-commit state becomes the shard's next
                        // published read view (O(dirty pages) — the
                        // frozen page handles are shared, not copied).
                        view = index.freeze().map(Arc::from);
                    }
                    for reply in replies {
                        let _ = reply.send(r.clone().map(|()| view.clone()));
                    }
                }
                Request::Query { q, mut buf, reply } => {
                    let started = Instant::now();
                    let r = guarded(shard, &mut poisoned, || {
                        index.search(&q, &mut buf);
                        buf
                    });
                    if r.is_ok() {
                        health.query_latency.record(elapsed_us(started));
                        health.queries.incr();
                    }
                    let _ = reply.send(r);
                }
                Request::Traced {
                    q,
                    epoch,
                    sent_nanos,
                    reply,
                } => {
                    let started = Instant::now();
                    // The worker's leg of the query tree: carries shard
                    // identity, Chrome-trace lane routing, the `s<i>/` store
                    // attribution prefix, and the time the request sat in
                    // the queue; the index's own span nests inside it.
                    let mut leg = OpenSpan::begin(format!("s{shard}/execute"), epoch);
                    leg.set_attr("shard", shard as u64);
                    leg.set_attr("lane", shard as u64 + 1);
                    leg.set_attr("lane_name", format!("mobidx-shard-{shard}").as_str());
                    leg.set_attr("store_prefix", format!("s{shard}/").as_str());
                    leg.set_attr(
                        "queue_wait_nanos",
                        leg.start_nanos().saturating_sub(sent_nanos),
                    );
                    let r = guarded(shard, &mut poisoned, || {
                        let out = index.query(&QueryRequest::new(&q).spanned(epoch));
                        let span = out.span.clone().expect("spanned request yields a span");
                        (out.into_ids(), span)
                    });
                    let r = r.map(|(ids, span)| {
                        if let Some(c) = span.attr_u64("candidates") {
                            leg.set_attr("candidates", c);
                        }
                        leg.push(span);
                        health.query_latency.record(elapsed_us(started));
                        health.queries.incr();
                        (ids, leg.finish())
                    });
                    let _ = reply.send(r);
                }
                Request::Stats { reply } => {
                    let _ = reply.send((index.io_totals(), index.store_io()));
                }
                Request::ClearBuffers { reply } => {
                    index.clear_buffers();
                    let _ = reply.send(());
                }
                Request::ResetIo { reply } => {
                    index.reset_io();
                    let _ = reply.send(());
                }
                Request::With { f, reply } => {
                    let r = guarded(shard, &mut poisoned, || f(&mut index));
                    let _ = reply.send(r);
                }
                Request::Rebuild {
                    index: fresh,
                    motions,
                    reply,
                } => {
                    // The replaced index travels back to the facade in its
                    // last (possibly poisoned) state for post-mortem reads.
                    let old = std::mem::replace(&mut index, *fresh);
                    poisoned = false;
                    let mut r = guarded(shard, &mut poisoned, || {
                        for m in &motions {
                            index.insert(m);
                        }
                    });
                    if r.is_ok() && commit_on_apply {
                        if let Err((store, error)) = index.commit_group() {
                            r = Err(ServeError::ShardFault {
                                shard,
                                panic: format!("commit window rejected on {store}: {error}"),
                            });
                        }
                    }
                    let _ = reply.send(r.map(|()| (Box::new(old), index.freeze().map(Arc::from))));
                }
                Request::Shutdown => break 'serve,
            }
            health.poisoned.set(u64::from(poisoned));
        }
    }
}

/// Elapsed wall-clock since `started`, in microseconds.
fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Applies a shard-local op group as one net batch.
///
/// The ops are folded to their net effect per object id (an insert
/// cancelled by a later remove disappears; remove-then-reinsert of an id
/// nets to one removal of the old record plus one insertion of the final
/// one), sorted by dual-space locality, and handed to
/// [`Index1D::batch_update`] so methods with a grouped write path dirty
/// each touched page once.
fn apply_group<I: Index1D>(index: &mut I, ops: &[ShardOp]) {
    #[derive(Default)]
    struct Net {
        removed: Option<Motion1D>,
        inserted: Option<Motion1D>,
    }
    let mut net: std::collections::HashMap<u64, Net> = std::collections::HashMap::new();
    for op in ops {
        match op {
            ShardOp::Insert(m) => {
                let e = net.entry(m.id).or_default();
                debug_assert!(e.inserted.is_none(), "double insert of object {}", m.id);
                e.inserted = Some(*m);
            }
            ShardOp::Remove(m) => {
                let e = net.entry(m.id).or_default();
                if let Some(pending) = e.inserted.take() {
                    // A record inserted earlier in this group and removed
                    // again nets to nothing.
                    debug_assert_eq!(pending, *m, "remove of a stale record");
                } else {
                    debug_assert!(e.removed.is_none(), "double remove of object {}", m.id);
                    e.removed = Some(*m);
                }
            }
        }
    }
    let mut removes = Vec::with_capacity(net.len());
    let mut inserts = Vec::with_capacity(net.len());
    for e in net.into_values() {
        removes.extend(e.removed);
        inserts.extend(e.inserted);
    }
    mobidx_core::sort_by_dual_locality(&mut removes);
    mobidx_core::sort_by_dual_locality(&mut inserts);
    let removed = index.batch_update(&removes, &inserts);
    debug_assert_eq!(removed, removes.len(), "shard lost objects in batch");
}

/// Runs `f` under `catch_unwind`, honoring and updating the poisoned
/// flag. `AssertUnwindSafe` is sound here: on panic the index is never
/// touched again until a `Rebuild` replaces it wholesale.
fn guarded<T>(shard: usize, poisoned: &mut bool, f: impl FnOnce() -> T) -> Result<T, ServeError> {
    if *poisoned {
        return Err(ServeError::ShardPoisoned { shard });
    }
    catch_unwind(AssertUnwindSafe(f)).map_err(|cause| {
        *poisoned = true;
        let panic = cause
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| cause.downcast_ref::<&str>().copied())
            .unwrap_or("non-string panic payload")
            .to_owned();
        ServeError::ShardFault { shard, panic }
    })
}
