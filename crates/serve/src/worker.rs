//! Shard workers: one thread owning one index.
//!
//! The concurrency model is shard ownership, not shared locks: each
//! worker thread exclusively owns its [`Index1D`] instance and drains a
//! bounded request queue. `&mut` access is therefore free of
//! synchronization — the queue *is* the synchronization — and a slow
//! shard exerts backpressure by letting its queue fill, blocking the
//! facade's `send` instead of growing memory without bound.
//!
//! Index methods are written against the infallible [`Index1D`] surface
//! and panic when a pager fault goes unrecovered. A serving layer must
//! not let one poisoned request take the pool down, so every index
//! operation runs under `catch_unwind`: a panic marks the shard
//! *poisoned* (subsequent requests fail fast with a typed error; the
//! worker keeps draining its queue) until the facade ships a freshly
//! rebuilt index via [`Request::Rebuild`].
//!
//! [`Index1D`]: mobidx_core::Index1D

use crate::batch::ShardOp;
use crate::ServeError;
use mobidx_core::{Index1D, IoTotals};
use mobidx_obs::QueryTrace;
use mobidx_workload::{MorQuery1D, Motion1D};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};

/// A message to a shard worker. Replies travel on per-request channels
/// so concurrent clients never see each other's answers.
pub(crate) enum Request<I> {
    /// Apply this shard's slice of a batch, in order.
    Apply {
        ops: Vec<ShardOp>,
        reply: Sender<Result<(), ServeError>>,
    },
    /// Answer a MOR query into `buf` (a pooled buffer whose capacity is
    /// reused across requests) and send it back.
    Query {
        q: MorQuery1D,
        buf: Vec<u64>,
        reply: Sender<Result<Vec<u64>, ServeError>>,
    },
    /// Answer a MOR query inside a trace span.
    Traced {
        q: MorQuery1D,
        #[allow(clippy::type_complexity)]
        reply: Sender<Result<(Vec<u64>, QueryTrace), ServeError>>,
    },
    /// Report I/O totals and the per-store breakdown.
    Stats {
        #[allow(clippy::type_complexity)]
        reply: Sender<(IoTotals, Vec<(String, IoTotals)>)>,
    },
    /// Flush and clear buffer pools.
    ClearBuffers { reply: Sender<()> },
    /// Reset I/O counters.
    ResetIo { reply: Sender<()> },
    /// Run an arbitrary closure against the owned index (the
    /// fault-injection hook of `mobidx-check`; see
    /// [`crate::ShardedDb::with_shard`]).
    With {
        f: Box<dyn FnOnce(&mut I) + Send>,
        reply: Sender<Result<(), ServeError>>,
    },
    /// Replace the owned index with `index` and load `motions` into it,
    /// clearing the poisoned flag. The facade sends the authoritative
    /// motion records for this shard.
    Rebuild {
        index: Box<I>,
        motions: Vec<Motion1D>,
        reply: Sender<Result<Box<I>, ServeError>>,
    },
    /// Drain and exit (sent on facade drop).
    Shutdown,
}

/// The worker loop: owns `index` until shutdown.
pub(crate) fn run<I: Index1D>(shard: usize, mut index: I, rx: &Receiver<Request<I>>) {
    let mut poisoned = false;
    while let Ok(req) = rx.recv() {
        match req {
            Request::Apply { ops, reply } => {
                let r = guarded(shard, &mut poisoned, || {
                    apply_ops(&mut index, &ops);
                });
                let _ = reply.send(r);
            }
            Request::Query { q, mut buf, reply } => {
                let r = guarded(shard, &mut poisoned, || {
                    index.query_into(&q, &mut buf);
                    buf
                });
                let _ = reply.send(r);
            }
            Request::Traced { q, reply } => {
                let r = guarded(shard, &mut poisoned, || index.query_traced(&q));
                let _ = reply.send(r);
            }
            Request::Stats { reply } => {
                let _ = reply.send((index.io_totals(), index.store_io()));
            }
            Request::ClearBuffers { reply } => {
                index.clear_buffers();
                let _ = reply.send(());
            }
            Request::ResetIo { reply } => {
                index.reset_io();
                let _ = reply.send(());
            }
            Request::With { f, reply } => {
                let r = guarded(shard, &mut poisoned, || f(&mut index));
                let _ = reply.send(r);
            }
            Request::Rebuild {
                index: fresh,
                motions,
                reply,
            } => {
                // The replaced index travels back to the facade in its
                // last (possibly poisoned) state for post-mortem reads.
                let old = std::mem::replace(&mut index, *fresh);
                poisoned = false;
                let r = guarded(shard, &mut poisoned, || {
                    for m in &motions {
                        index.insert(m);
                    }
                });
                let _ = reply.send(r.map(|()| Box::new(old)));
            }
            Request::Shutdown => break,
        }
    }
}

/// Applies a shard-local op list in order.
fn apply_ops<I: Index1D>(index: &mut I, ops: &[ShardOp]) {
    for op in ops {
        match op {
            ShardOp::Insert(m) => index.insert(m),
            ShardOp::Remove(m) => {
                let removed = index.remove(m);
                debug_assert!(removed, "shard lost object {}", m.id);
            }
        }
    }
}

/// Runs `f` under `catch_unwind`, honoring and updating the poisoned
/// flag. `AssertUnwindSafe` is sound here: on panic the index is never
/// touched again until a `Rebuild` replaces it wholesale.
fn guarded<T>(shard: usize, poisoned: &mut bool, f: impl FnOnce() -> T) -> Result<T, ServeError> {
    if *poisoned {
        return Err(ServeError::ShardPoisoned { shard });
    }
    catch_unwind(AssertUnwindSafe(f)).map_err(|cause| {
        *poisoned = true;
        let panic = cause
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| cause.downcast_ref::<&str>().copied())
            .unwrap_or("non-string panic payload")
            .to_owned();
        ServeError::ShardFault { shard, panic }
    })
}
