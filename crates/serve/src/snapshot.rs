//! Epoch-stamped snapshot publication and the work-stealing read pool.
//!
//! The write path stays single-owner (each worker thread exclusively
//! owns its live index), but after every drained apply group the worker
//! *freezes* its index — [`Index1D::freeze`] publishes an immutable,
//! page-level copy-on-write view ([`FrozenIndex1D`]) whose cost is
//! O(dirty pages), not O(index). The facade's [`SnapshotRegistry`]
//! collects the per-shard views and, once every shard has one, swaps in
//! a new [`DbSnapshot`] stamped with the next commit epoch.
//!
//! Reads then never touch a worker queue: any caller thread grabs the
//! latest published snapshot (`Arc` clone under a read lock), fans its
//! per-shard legs out across the [`ReadPool`], and k-way-merges the
//! answers. The result is *reads-see-a-prefix*: every answer equals the
//! oracle state as of some sealed group commit ≤ the current epoch —
//! never a torn mid-batch state — because a snapshot is only published
//! after the whole group both applied and committed.
//!
//! [`Index1D::freeze`]: mobidx_core::Index1D::freeze
//! [`FrozenIndex1D`]: mobidx_core::FrozenIndex1D

use crate::health::ReadPoolSnapshot;
use mobidx_core::FrozenIndex1D;
use mobidx_obs::{Counter, Gauge};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// An immutable, epoch-stamped view of the whole sharded database: one
/// frozen index view per shard, all sealed by the same publication.
pub struct DbSnapshot {
    /// The commit epoch this snapshot was published at. Monotonically
    /// increasing; epoch `e` contains exactly the first `e` published
    /// group commits (plus the initial load at epoch 0).
    pub epoch: u64,
    /// Per-shard frozen views, in shard order.
    pub(crate) views: Vec<Arc<dyn FrozenIndex1D>>,
}

impl DbSnapshot {
    /// Number of shards in the snapshot.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.views.len()
    }
}

impl std::fmt::Debug for DbSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbSnapshot")
            .field("epoch", &self.epoch)
            .field("shards", &self.views.len())
            .finish_non_exhaustive()
    }
}

/// The facade's snapshot bookkeeping: the latest frozen view per shard,
/// the monotone commit-epoch counter, and the currently published
/// [`DbSnapshot`].
///
/// Publication is gated on completeness: a new snapshot is swapped in
/// only when *every* shard has a view (a method that cannot freeze —
/// e.g. dual-B+ with subterrain interval trees armed — or a faulted
/// shard leaves the previous snapshot serving until it recovers).
pub(crate) struct SnapshotRegistry {
    /// Monotone commit-epoch counter; the last published epoch.
    epoch: AtomicU64,
    /// Latest frozen view per shard (`None` until the shard first
    /// publishes, or while it cannot freeze).
    latest: Mutex<Vec<Option<Arc<dyn FrozenIndex1D>>>>,
    /// The currently published snapshot, if complete.
    current: RwLock<Option<Arc<DbSnapshot>>>,
    /// Simulated per-frozen-page read latency, in nanoseconds (the
    /// snapshot path bypasses the pager's pluggable backends, so the
    /// disk model is charged here).
    read_delay_nanos: AtomicU64,
}

impl SnapshotRegistry {
    pub(crate) fn new(shards: usize) -> Self {
        Self {
            epoch: AtomicU64::new(0),
            latest: Mutex::new(vec![None; shards]),
            current: RwLock::new(None),
            read_delay_nanos: AtomicU64::new(0),
        }
    }

    /// Patches the given shards' latest views and, if every shard now
    /// has one, publishes a new snapshot at the next epoch. Returns the
    /// published epoch, if any.
    pub(crate) fn publish(
        &self,
        updates: impl IntoIterator<Item = (usize, Option<Arc<dyn FrozenIndex1D>>)>,
    ) -> Option<u64> {
        let mut latest = self.latest.lock().expect("snapshot registry");
        for (shard, view) in updates {
            latest[shard] = view;
        }
        if latest.iter().any(Option::is_none) {
            return None;
        }
        let views: Vec<Arc<dyn FrozenIndex1D>> = latest
            .iter()
            .map(|v| Arc::clone(v.as_ref().expect("checked")))
            .collect();
        // The epoch bump and the swap happen under the `latest` lock, so
        // epochs are published in order and never skip backwards.
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        *self.current.write().expect("snapshot slot") = Some(Arc::new(DbSnapshot { epoch, views }));
        drop(latest);
        Some(epoch)
    }

    /// Publishes the initial snapshot (epoch stays 0 — nothing has
    /// committed yet) from the freshly built per-shard indexes.
    pub(crate) fn publish_initial(&self, views: Vec<Option<Arc<dyn FrozenIndex1D>>>) {
        let mut latest = self.latest.lock().expect("snapshot registry");
        *latest = views;
        if latest.iter().all(Option::is_some) {
            let views = latest
                .iter()
                .map(|v| Arc::clone(v.as_ref().expect("checked")))
                .collect();
            *self.current.write().expect("snapshot slot") =
                Some(Arc::new(DbSnapshot { epoch: 0, views }));
        }
    }

    /// The currently published snapshot, if any.
    pub(crate) fn current(&self) -> Option<Arc<DbSnapshot>> {
        self.current.read().expect("snapshot slot").clone()
    }

    /// The last published commit epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Whether a complete snapshot is published.
    pub(crate) fn has_snapshot(&self) -> bool {
        self.current.read().expect("snapshot slot").is_some()
    }

    pub(crate) fn set_read_delay_nanos(&self, nanos: u64) {
        self.read_delay_nanos.store(nanos, Ordering::Relaxed);
    }

    pub(crate) fn read_delay_nanos(&self) -> u64 {
        self.read_delay_nanos.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SnapshotRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotRegistry")
            .field("epoch", &self.epoch())
            .field("published", &self.has_snapshot())
            .finish_non_exhaustive()
    }
}

type Job = Box<dyn FnOnce() + Send>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// Shared instrumentation of the read pool — the snapshot read path's
/// answer to [`crate::health::ShardHealth`]. All relaxed atomics, so
/// the telemetry sampler and [`crate::ShardedDb::health`] read it
/// without touching the pool's queue lock ordering.
#[derive(Debug, Default)]
pub(crate) struct ReadPoolMetrics {
    /// Fan-out legs ever enqueued.
    pub(crate) submitted: Counter,
    /// Legs executed by a *submitting* thread via
    /// [`ReadPool::try_run_one`] — the work-stealing half. High values
    /// mean callers answer their own fan-out faster than the helpers
    /// pick it up.
    pub(crate) stolen: Counter,
    /// Legs executed by each helper thread, in worker order.
    pub(crate) executed: Vec<Counter>,
    /// Legs currently queued (shared queue — the pool has no per-worker
    /// queues, so this is the pool-wide backlog gauge).
    pub(crate) depth: Gauge,
    /// High-water mark of `depth` since startup.
    pub(crate) depth_high_water: Gauge,
}

impl ReadPoolMetrics {
    fn new(threads: usize) -> Self {
        Self {
            executed: (0..threads).map(|_| Counter::new()).collect(),
            ..Self::default()
        }
    }

    /// A point-in-time summary.
    pub(crate) fn snapshot(&self) -> ReadPoolSnapshot {
        ReadPoolSnapshot {
            threads: self.executed.len(),
            submitted: self.submitted.get(),
            stolen: self.stolen.get(),
            executed: self.executed.iter().map(Counter::get).collect(),
            depth: self.depth.get(),
            depth_high_water: self.depth_high_water.get(),
        }
    }
}

/// A small work-stealing pool for snapshot-read fan-out legs.
///
/// Queries are answered cooperatively: the submitting thread runs one
/// leg inline and then *helps* — it keeps popping queued jobs (its own
/// remaining legs, or another query's) until its reply channel drains.
/// With zero pool threads the caller simply executes every leg itself,
/// so `read_threads: 0` degrades to serial snapshot reads rather than
/// deadlock.
pub(crate) struct ReadPool {
    shared: Arc<PoolShared>,
    metrics: Arc<ReadPoolMetrics>,
    handles: Vec<JoinHandle<()>>,
}

impl ReadPool {
    pub(crate) fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let metrics = Arc::new(ReadPoolMetrics::new(threads));
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("mobidx-read-{i}"))
                    .spawn(move || worker_loop(&shared, &metrics, i))
                    .expect("spawn read worker")
            })
            .collect();
        Self {
            shared,
            metrics,
            handles,
        }
    }

    /// The pool's shared instrumentation (for the health snapshot and
    /// the telemetry sampler).
    pub(crate) fn metrics(&self) -> &Arc<ReadPoolMetrics> {
        &self.metrics
    }

    /// Enqueues one fan-out leg.
    pub(crate) fn submit(&self, job: Job) {
        self.metrics.submitted.incr();
        let depth = {
            let mut q = self.shared.queue.lock().expect("read queue");
            q.push_back(job);
            self.metrics.depth.incr()
        };
        self.metrics.depth_high_water.set_max(depth);
        self.shared.available.notify_one();
    }

    /// Runs one queued job on the calling thread, if any is waiting —
    /// the help-while-waiting half of the stealing protocol.
    pub(crate) fn try_run_one(&self) -> bool {
        let job = self.shared.queue.lock().expect("read queue").pop_front();
        match job {
            Some(j) => {
                self.metrics.depth.decr();
                self.metrics.stolen.incr();
                j();
                true
            }
            None => false,
        }
    }
}

fn worker_loop(shared: &PoolShared, metrics: &ReadPoolMetrics, worker: usize) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("read queue");
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared.available.wait(q).expect("read queue");
            }
        };
        metrics.depth.decr();
        metrics.executed[worker].incr();
        job();
    }
}

impl Drop for ReadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ReadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadPool")
            .field("threads", &self.handles.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_core::FrozenReadStats;
    use mobidx_workload::MorQuery1D;
    use std::sync::atomic::AtomicUsize;

    struct FixedView(Vec<u64>);
    impl FrozenIndex1D for FixedView {
        fn search(&self, _q: &MorQuery1D, out: &mut Vec<u64>) -> FrozenReadStats {
            out.clear();
            out.extend_from_slice(&self.0);
            FrozenReadStats {
                candidates: self.0.len() as u64,
                pages: 1,
            }
        }
    }

    #[test]
    fn publication_requires_every_shard() {
        let reg = SnapshotRegistry::new(2);
        assert!(!reg.has_snapshot());
        assert_eq!(
            reg.publish([(
                0,
                Some(Arc::new(FixedView(vec![1])) as Arc<dyn FrozenIndex1D>)
            )]),
            None
        );
        assert!(!reg.has_snapshot());
        let e = reg.publish([(
            1,
            Some(Arc::new(FixedView(vec![2])) as Arc<dyn FrozenIndex1D>),
        )]);
        assert_eq!(e, Some(1));
        let snap = reg.current().expect("published");
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.shards(), 2);
        // A shard dropping its view (e.g. a fault) keeps the old
        // snapshot serving.
        assert_eq!(reg.publish([(0, None)]), None);
        assert_eq!(reg.current().expect("stale snapshot").epoch, 1);
        // Recovery publishes the next epoch.
        let e = reg.publish([(
            0,
            Some(Arc::new(FixedView(vec![3])) as Arc<dyn FrozenIndex1D>),
        )]);
        assert_eq!(e, Some(2));
    }

    #[test]
    fn pool_drains_jobs_with_and_without_threads() {
        for threads in [0usize, 2] {
            let pool = ReadPool::new(threads);
            let done = Arc::new(AtomicUsize::new(0));
            for _ in 0..16 {
                let done = Arc::clone(&done);
                pool.submit(Box::new(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                }));
            }
            while done.load(Ordering::Relaxed) < 16 {
                if !pool.try_run_one() {
                    std::thread::yield_now();
                }
            }
            assert_eq!(done.load(Ordering::Relaxed), 16);
            // Every leg is accounted for exactly once: stolen by the
            // submitter or executed by a helper, never both.
            let snap = pool.metrics().snapshot();
            assert_eq!(snap.threads, threads);
            assert_eq!(snap.submitted, 16);
            assert_eq!(snap.executed_total(), 16);
            assert_eq!(snap.stolen + snap.executed.iter().sum::<u64>(), 16);
            if threads == 0 {
                assert_eq!(snap.stolen, 16, "no helpers: every leg is stolen");
            }
            assert_eq!(snap.depth, 0, "drained pool has no backlog");
            assert!(snap.depth_high_water >= 1);
        }
    }
}
