//! Per-shard health instrumentation.
//!
//! Each shard worker shares one [`ShardHealth`] with the facade: the
//! facade updates the queue gauges on enqueue, the worker updates them
//! on dequeue and feeds the latency histograms around every request it
//! executes. All fields are relaxed atomics ([`Counter`] / [`Gauge`] /
//! [`Histogram`]), so [`crate::ShardedDb::health`] reads a snapshot
//! without a queue round-trip — which is the point: a wedged or poisoned
//! worker can't block its own diagnosis.

use mobidx_obs::json::Value;
use mobidx_obs::{Counter, Gauge, Histogram, HistogramSnapshot};

/// Live health state of one shard (see the module docs for who updates
/// what).
#[derive(Debug, Default)]
pub struct ShardHealth {
    /// Requests currently queued plus senders currently blocked on the
    /// full queue — the congestion signal. Incremented by the facade
    /// *before* the (possibly blocking) send, decremented by the worker
    /// at dequeue.
    pub queue_depth: Gauge,
    /// High-water mark of `queue_depth` since startup.
    pub queue_high_water: Gauge,
    /// Requests successfully enqueued.
    pub enqueued: Counter,
    /// Requests dequeued by the worker.
    pub dequeued: Counter,
    /// Write batches applied (one per `Apply` request).
    pub applied_batches: Counter,
    /// Individual shard ops applied across all batches.
    pub applied_ops: Counter,
    /// Query legs answered for this shard — queued (worker-run, traced
    /// or untraced) and snapshot (run on the caller / read pool)
    /// alike. Always matches `query_latency`'s sample count.
    pub queries: Counter,
    /// Snapshot-path reads served against this shard's frozen view —
    /// these never touch the worker queue, so they are invisible to
    /// `queries`/`enqueued`. Incremented by the facade per fan-out leg.
    pub reads_on_snapshot: Counter,
    /// Ops per group commit: each `Apply` the worker dequeues drains
    /// every `Apply` queued behind it and applies their ops as one
    /// sorted batch; this histogram records the resulting group sizes
    /// (in ops). A mean well above the per-request op count means the
    /// shard is amortizing update I/O across requests.
    pub drained_batch_size: Histogram,
    /// 1 while the shard is poisoned (awaiting a rebuild), else 0.
    pub poisoned: Gauge,
    /// Per-query wall-clock on the worker, in microseconds.
    pub query_latency: Histogram,
    /// Per-batch apply wall-clock on the worker, in microseconds.
    pub update_latency: Histogram,
    /// Per-I/O wait charged by a `DelayBackend::with_histogram` armed on
    /// this shard's stores, in microseconds. Stays empty unless a
    /// latency-charging backend is installed (see
    /// `mobidx_pager::DelayBackend::with_histogram`).
    pub io_wait: std::sync::Arc<Histogram>,
}

impl ShardHealth {
    /// Creates zeroed health state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a point-in-time summary.
    #[must_use]
    pub fn snapshot(&self, shard: usize) -> ShardHealthSnapshot {
        ShardHealthSnapshot {
            shard,
            queue_depth: self.queue_depth.get(),
            queue_high_water: self.queue_high_water.get(),
            enqueued: self.enqueued.get(),
            dequeued: self.dequeued.get(),
            applied_batches: self.applied_batches.get(),
            applied_ops: self.applied_ops.get(),
            queries: self.queries.get(),
            reads_on_snapshot: self.reads_on_snapshot.get(),
            drained_batch_size: self.drained_batch_size.snapshot(),
            poisoned: self.poisoned.get() != 0,
            query_latency_us: self.query_latency.snapshot(),
            update_latency_us: self.update_latency.snapshot(),
            io_wait_us: self.io_wait.snapshot(),
        }
    }
}

/// A point-in-time summary of one shard's [`ShardHealth`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealthSnapshot {
    /// Shard number.
    pub shard: usize,
    /// Queued + blocked-sender requests at snapshot time.
    pub queue_depth: u64,
    /// High-water mark of `queue_depth`.
    pub queue_high_water: u64,
    /// Requests successfully enqueued.
    pub enqueued: u64,
    /// Requests dequeued by the worker.
    pub dequeued: u64,
    /// Write batches applied.
    pub applied_batches: u64,
    /// Individual shard ops applied.
    pub applied_ops: u64,
    /// Queries answered.
    pub queries: u64,
    /// Snapshot-path reads served against this shard's frozen view.
    pub reads_on_snapshot: u64,
    /// Ops per group commit (see [`ShardHealth::drained_batch_size`]).
    pub drained_batch_size: HistogramSnapshot,
    /// Whether the shard awaits a rebuild.
    pub poisoned: bool,
    /// Per-query worker latency percentiles (µs).
    pub query_latency_us: HistogramSnapshot,
    /// Per-batch apply latency percentiles (µs).
    pub update_latency_us: HistogramSnapshot,
    /// Charged per-I/O wait percentiles (µs).
    pub io_wait_us: HistogramSnapshot,
}

impl ShardHealthSnapshot {
    /// The snapshot as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("shard".to_owned(), Value::from(self.shard)),
            ("queue_depth".to_owned(), Value::from(self.queue_depth)),
            (
                "queue_high_water".to_owned(),
                Value::from(self.queue_high_water),
            ),
            ("enqueued".to_owned(), Value::from(self.enqueued)),
            ("dequeued".to_owned(), Value::from(self.dequeued)),
            (
                "applied_batches".to_owned(),
                Value::from(self.applied_batches),
            ),
            ("applied_ops".to_owned(), Value::from(self.applied_ops)),
            ("queries".to_owned(), Value::from(self.queries)),
            (
                "reads_on_snapshot".to_owned(),
                Value::from(self.reads_on_snapshot),
            ),
            (
                "drained_batch_size".to_owned(),
                histogram_json(&self.drained_batch_size),
            ),
            ("poisoned".to_owned(), Value::Bool(self.poisoned)),
            (
                "query_latency_us".to_owned(),
                histogram_json(&self.query_latency_us),
            ),
            (
                "update_latency_us".to_owned(),
                histogram_json(&self.update_latency_us),
            ),
            ("io_wait_us".to_owned(), histogram_json(&self.io_wait_us)),
        ])
    }
}

/// A point-in-time summary of the snapshot read pool (see
/// `crate::snapshot`): how the fan-out legs were executed and how deep
/// the shared job queue ran. The queue is pool-wide (there are no
/// per-worker queues), so `depth` is the backlog every worker pulls
/// from, while `executed` breaks the served legs down per helper
/// thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPoolSnapshot {
    /// Helper threads in the pool.
    pub threads: usize,
    /// Fan-out legs ever enqueued.
    pub submitted: u64,
    /// Legs executed by submitting threads via work stealing (never by
    /// a helper).
    pub stolen: u64,
    /// Legs executed by each helper thread, in worker order.
    pub executed: Vec<u64>,
    /// Legs queued at snapshot time.
    pub depth: u64,
    /// High-water mark of `depth` since startup.
    pub depth_high_water: u64,
}

impl ReadPoolSnapshot {
    /// Legs executed across helpers and stealers combined.
    #[must_use]
    pub fn executed_total(&self) -> u64 {
        self.stolen + self.executed.iter().sum::<u64>()
    }

    /// The snapshot as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("threads".to_owned(), Value::from(self.threads)),
            ("submitted".to_owned(), Value::from(self.submitted)),
            ("stolen".to_owned(), Value::from(self.stolen)),
            (
                "executed".to_owned(),
                Value::Arr(self.executed.iter().map(|&e| Value::from(e)).collect()),
            ),
            (
                "executed_total".to_owned(),
                Value::from(self.executed_total()),
            ),
            ("depth".to_owned(), Value::from(self.depth)),
            (
                "depth_high_water".to_owned(),
                Value::from(self.depth_high_water),
            ),
        ])
    }
}

/// A point-in-time summary of every shard's health.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Per-shard summaries, in shard order.
    pub shards: Vec<ShardHealthSnapshot>,
    /// The snapshot read pool's counters (see [`ReadPoolSnapshot`]).
    pub read_pool: ReadPoolSnapshot,
    /// Span trees ever pushed into the facade's event log.
    pub spans_recorded: u64,
    /// Span trees silently overwritten by the event log's ring wrap —
    /// nonzero means diagnosis is working from an incomplete recent
    /// history.
    pub spans_dropped: u64,
}

impl HealthSnapshot {
    /// `true` if any shard awaits a rebuild.
    #[must_use]
    pub fn any_poisoned(&self) -> bool {
        self.shards.iter().any(|s| s.poisoned)
    }

    /// The snapshot as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "shards".to_owned(),
                Value::Arr(
                    self.shards
                        .iter()
                        .map(ShardHealthSnapshot::to_json)
                        .collect(),
                ),
            ),
            ("read_pool".to_owned(), self.read_pool.to_json()),
            (
                "spans_recorded".to_owned(),
                Value::from(self.spans_recorded),
            ),
            ("spans_dropped".to_owned(), Value::from(self.spans_dropped)),
        ])
    }
}

/// Serializes a [`HistogramSnapshot`] with the percentile fields the
/// bench reports use.
#[must_use]
pub fn histogram_json(h: &HistogramSnapshot) -> Value {
    Value::Obj(vec![
        ("count".to_owned(), Value::from(h.count)),
        ("mean".to_owned(), Value::Num(h.mean)),
        ("min".to_owned(), Value::from(h.min)),
        ("p50".to_owned(), Value::from(h.p50)),
        ("p90".to_owned(), Value::from(h.p90)),
        ("p95".to_owned(), Value::from(h.p95)),
        ("p99".to_owned(), Value::from(h.p99)),
        ("max".to_owned(), Value::from(h.max)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_updates() {
        let h = ShardHealth::new();
        h.enqueued.add(5);
        h.dequeued.add(5);
        let d = h.queue_depth.incr();
        h.queue_high_water.set_max(d);
        h.queries.add(3);
        h.reads_on_snapshot.add(7);
        h.query_latency.record(120);
        h.drained_batch_size.record(64);
        h.poisoned.set(1);
        let s = h.snapshot(2);
        assert_eq!(s.shard, 2);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.queue_high_water, 1);
        assert_eq!(s.enqueued, 5);
        assert_eq!(s.queries, 3);
        assert_eq!(s.reads_on_snapshot, 7);
        assert_eq!(s.drained_batch_size.count, 1);
        assert_eq!(s.drained_batch_size.max, 64);
        assert!(s.poisoned);
        assert_eq!(s.query_latency_us.count, 1);
        assert_eq!(s.query_latency_us.max, 120);
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let h = ShardHealth::new();
        h.update_latency.record(50);
        let snap = HealthSnapshot {
            shards: vec![h.snapshot(0)],
            read_pool: ReadPoolSnapshot {
                threads: 2,
                submitted: 9,
                stolen: 3,
                executed: vec![4, 2],
                depth: 0,
                depth_high_water: 5,
            },
            spans_recorded: 300,
            spans_dropped: 44,
        };
        let parsed = Value::parse(&snap.to_json().render()).expect("valid JSON");
        assert_eq!(
            parsed.get("spans_recorded").and_then(Value::as_u64),
            Some(300)
        );
        assert_eq!(
            parsed.get("spans_dropped").and_then(Value::as_u64),
            Some(44)
        );
        let shard = &parsed.get("shards").and_then(Value::as_array).expect("arr")[0];
        assert_eq!(shard.get("shard").and_then(Value::as_u64), Some(0));
        assert_eq!(shard.get("poisoned").and_then(Value::as_bool), Some(false));
        assert_eq!(
            shard.get("reads_on_snapshot").and_then(Value::as_u64),
            Some(0)
        );
        let upd = shard.get("update_latency_us").expect("histogram");
        assert_eq!(upd.get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(upd.get("p95").and_then(Value::as_u64), Some(50));
        let drained = shard.get("drained_batch_size").expect("histogram");
        assert_eq!(drained.get("count").and_then(Value::as_u64), Some(0));
        let pool = parsed.get("read_pool").expect("read pool section");
        assert_eq!(pool.get("submitted").and_then(Value::as_u64), Some(9));
        assert_eq!(pool.get("stolen").and_then(Value::as_u64), Some(3));
        assert_eq!(pool.get("executed_total").and_then(Value::as_u64), Some(9));
        assert_eq!(
            pool.get("executed")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(snap.read_pool.executed_total(), 9);
        assert!(!snap.any_poisoned());
    }
}
