//! Continuous telemetry for a running [`ShardedDb`].
//!
//! [`ShardedDb::start_sampler`] spawns a [`Sampler`] thread that, every
//! tick, harvests each shard's [`ShardHealth`] state, the per-shard
//! `IoTotals` deltas (via a `Stats` round-trip on the worker queue), the
//! facade [`EventLog`]'s drop counter, and the [`WorkloadProfile`]'s
//! drift state into per-shard and aggregate [`TimeSeries`]. The result
//! is a [`ServeSampler`] handle that owns the thread and exposes the
//! registry: render it as a Prometheus text dump or a JSON telemetry
//! report, or poll individual series (that is what `mobidx-top` does).
//!
//! The harvest path is deliberately cheap: reading health state touches
//! relaxed atomics only, and the single `Stats` message per shard per
//! tick is noise next to a serving workload (the benchmark suite bounds
//! the overhead under 2 % at a 100 ms tick; see EXPERIMENTS.md).
//!
//! Series naming: per-shard series carry a Prometheus-style label —
//! `queue_depth{shard="2"}` — and aggregates a `_total` suffix, so the
//! text exposition groups base names under one `# TYPE` header each.

use crate::db::ShardedDb;
use crate::health::ShardHealth;
use crate::snapshot::SnapshotRegistry;
use crate::worker::Request;
use mobidx_core::{Index1D, IoTotals};
use mobidx_obs::json::Value;
use mobidx_obs::telemetry::{Sampler, Telemetry, TimeSeries, WorkloadProfile};
use mobidx_obs::EventLog;
use std::sync::mpsc::{channel, SyncSender};
use std::sync::Arc;
use std::time::Duration;

/// Sizing of a [`ServeSampler`].
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Harvest interval.
    pub tick: Duration,
    /// Samples retained per series (ring capacity). At the default
    /// 100 ms tick, 600 samples keep one minute of history.
    pub capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_millis(100),
            capacity: 600,
        }
    }
}

/// A running telemetry harvester over a [`ShardedDb`] (see the module
/// docs). Dropping it stops the sampling thread.
///
/// The handle is independent of the database's lifetime in the borrow
/// sense (it holds clones of the shared state), but harvesting degrades
/// gracefully once the database is gone: health atomics remain readable
/// and the I/O round-trips are skipped when the worker queues close.
#[derive(Debug)]
pub struct ServeSampler {
    telemetry: Arc<Telemetry>,
    shards: usize,
    sampler: Sampler,
}

impl ServeSampler {
    /// Completed harvest ticks.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.sampler.ticks()
    }

    /// Blocks until at least `ticks` harvests have completed (test and
    /// report-capture convenience; gives up after `timeout`).
    ///
    /// Returns `true` when the tick target was reached.
    #[must_use]
    pub fn wait_for_ticks(&self, ticks: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.ticks() < ticks {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// The underlying series registry.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Number of shards being harvested.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// One shard's series, by base name: `series_for("queue_depth", 2)`
    /// returns `queue_depth{shard="2"}` (creating it empty if the
    /// sampler has not recorded it yet).
    #[must_use]
    pub fn series_for(&self, base: &str, shard: usize) -> Arc<TimeSeries> {
        self.telemetry.series(&shard_series(base, shard))
    }

    /// The full JSON telemetry report: sampler metadata plus the
    /// registry dump of [`Telemetry::to_json`].
    #[must_use]
    pub fn report_json(&self) -> Value {
        Value::Obj(vec![
            ("kind".to_owned(), Value::from("mobidx-telemetry")),
            ("shards".to_owned(), Value::from(self.shards)),
            ("ticks".to_owned(), Value::from(self.ticks())),
            ("telemetry".to_owned(), self.telemetry.to_json()),
        ])
    }

    /// The Prometheus text exposition of the registry.
    #[must_use]
    pub fn prometheus(&self) -> String {
        self.telemetry.prometheus()
    }
}

/// `base{shard="i"}`.
fn shard_series(base: &str, shard: usize) -> String {
    format!("{base}{{shard=\"{shard}\"}}")
}

impl<I: Index1D + Send + 'static> ShardedDb<I> {
    /// Starts a background telemetry harvester over this database (see
    /// the [module docs](crate::telemetry)). The returned handle owns
    /// the sampling thread; drop it to stop sampling. Multiple samplers
    /// may run concurrently (each owns its registry).
    #[must_use]
    pub fn start_sampler(&self, cfg: SamplerConfig) -> ServeSampler {
        start(
            cfg,
            self.telemetry_senders().to_vec(),
            self.telemetry_health().to_vec(),
            Arc::clone(self.telemetry_events()),
            Arc::clone(self.profile()),
            Arc::clone(self.telemetry_registry()),
        )
    }
}

/// Builds the harvest closure and spawns the sampler thread.
fn start<I: Index1D + Send + 'static>(
    cfg: SamplerConfig,
    senders: Vec<SyncSender<Request<I>>>,
    health: Vec<Arc<ShardHealth>>,
    events: Arc<EventLog>,
    profile: Arc<WorkloadProfile>,
    registry: Arc<SnapshotRegistry>,
) -> ServeSampler {
    let shards = senders.len();
    let telemetry = Arc::new(Telemetry::new(cfg.capacity));
    let t = Arc::clone(&telemetry);
    let mut last_io: Vec<IoTotals> = vec![IoTotals::default(); shards];
    let mut last_ops: Vec<u64> = vec![0; shards];
    let mut last_queries: Vec<u64> = vec![0; shards];
    let mut last_snap_reads: Vec<u64> = vec![0; shards];
    // Snapshot-age bookkeeping: ticks since the published epoch last
    // advanced (the sampler derives age from epoch *changes*, so it
    // needs no clock plumbed out of the registry).
    let mut last_epoch = registry.epoch();
    let mut age_ticks = 0u64;
    let harvest = move || {
        let now = t.now_nanos();
        let mut depth_total = 0u64;
        let mut snap_reads_total = 0u64;
        let mut reads_total = 0u64;
        let mut writes_total = 0u64;
        let mut wal_records_total = 0u64;
        let mut wal_fsyncs_total = 0u64;
        #[allow(clippy::cast_precision_loss)]
        for (shard, h) in health.iter().enumerate() {
            let snap = h.snapshot(shard);
            let rec = |base: &str, v: f64| t.series(&shard_series(base, shard)).push(now, v);
            rec("queue_depth", snap.queue_depth as f64);
            rec("query_p50_us", snap.query_latency_us.p50 as f64);
            rec("query_p95_us", snap.query_latency_us.p95 as f64);
            rec("query_p99_us", snap.query_latency_us.p99 as f64);
            rec("poisoned", f64::from(u8::from(snap.poisoned)));
            depth_total += snap.queue_depth;
            let ops_delta = snap.applied_ops.saturating_sub(last_ops[shard]);
            last_ops[shard] = snap.applied_ops;
            rec("applied_ops", ops_delta as f64);
            let q_delta = snap.queries.saturating_sub(last_queries[shard]);
            last_queries[shard] = snap.queries;
            rec("queries", q_delta as f64);
            let sr_delta = snap
                .reads_on_snapshot
                .saturating_sub(last_snap_reads[shard]);
            last_snap_reads[shard] = snap.reads_on_snapshot;
            rec("reads_on_snapshot", sr_delta as f64);
            snap_reads_total += sr_delta;
            // The I/O counters live inside the worker-owned index, so
            // they take one queue round-trip; the deltas saturate so a
            // mid-run `reset_io` reads as a quiet tick, not a panic.
            if let Some(totals) = poll_stats(&senders[shard], h) {
                let reads = totals.reads.saturating_sub(last_io[shard].reads);
                let writes = totals.writes.saturating_sub(last_io[shard].writes);
                let wal_records = totals
                    .wal_records
                    .saturating_sub(last_io[shard].wal_records);
                let wal_fsyncs = totals.wal_fsyncs.saturating_sub(last_io[shard].wal_fsyncs);
                last_io[shard] = totals;
                rec("io_reads", reads as f64);
                rec("io_writes", writes as f64);
                rec("wal_records", wal_records as f64);
                rec("wal_fsyncs", wal_fsyncs as f64);
                reads_total += reads;
                writes_total += writes;
                wal_records_total += wal_records;
                wal_fsyncs_total += wal_fsyncs;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        {
            t.series("queue_depth_total").push(now, depth_total as f64);
            t.series("io_reads_total").push(now, reads_total as f64);
            t.series("io_writes_total").push(now, writes_total as f64);
            t.series("wal_records_total")
                .push(now, wal_records_total as f64);
            t.series("wal_fsyncs_total")
                .push(now, wal_fsyncs_total as f64);
            t.series("spans_recorded")
                .push(now, events.recorded() as f64);
            t.series("spans_dropped").push(now, events.dropped() as f64);
            t.series("updates_observed")
                .push(now, profile.updates() as f64);
            t.series("drift_l1_millis")
                .push(now, profile.drift_millis() as f64);
            t.series("drift_events")
                .push(now, profile.drift_events() as f64);
            t.series("reads_on_snapshot_total")
                .push(now, snap_reads_total as f64);
            let epoch = registry.epoch();
            if epoch == last_epoch {
                age_ticks += 1;
            } else {
                last_epoch = epoch;
                age_ticks = 0;
            }
            t.series("snapshot_epoch").push(now, epoch as f64);
            t.series("snapshot_age_ticks").push(now, age_ticks as f64);
        }
    };
    ServeSampler {
        telemetry,
        shards,
        sampler: Sampler::spawn(cfg.tick, harvest),
    }
}

/// One `Stats` round-trip on a worker queue, honoring the queue-depth
/// gauge contract (the facade increments before a send, the worker
/// decrements at dequeue). Returns `None` when the worker is gone.
fn poll_stats<I: Index1D>(
    sender: &SyncSender<Request<I>>,
    health: &Arc<ShardHealth>,
) -> Option<IoTotals> {
    let (reply, rx) = channel();
    let depth = health.queue_depth.incr();
    health.queue_high_water.set_max(depth);
    match sender.send(Request::Stats { reply }) {
        Ok(()) => {
            health.enqueued.incr();
            rx.recv().ok().map(|(totals, _)| totals)
        }
        Err(_) => {
            let _ = health.queue_depth.decr();
            None
        }
    }
}
