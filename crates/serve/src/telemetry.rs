//! Continuous telemetry for a running [`ShardedDb`].
//!
//! [`ShardedDb::start_sampler`] spawns a [`Sampler`] thread that, every
//! tick, harvests each shard's [`ShardHealth`] state, the per-shard
//! `IoTotals` deltas (via a `Stats` round-trip on the worker queue), the
//! facade [`EventLog`]'s drop counter, and the [`WorkloadProfile`]'s
//! drift state into per-shard and aggregate [`TimeSeries`]. The result
//! is a [`ServeSampler`] handle that owns the thread and exposes the
//! registry: render it as a Prometheus text dump or a JSON telemetry
//! report, or poll individual series (that is what `mobidx-top` does).
//!
//! The harvest path is deliberately cheap: reading health state touches
//! relaxed atomics only, and the single `Stats` message per shard per
//! tick is noise next to a serving workload (the benchmark suite bounds
//! the overhead under 2 % at a 100 ms tick; see EXPERIMENTS.md).
//!
//! Series naming: per-shard series carry a Prometheus-style label —
//! `queue_depth{shard="2"}` — and aggregates a `_total` suffix, so the
//! text exposition groups base names under one `# TYPE` header each.

use crate::db::ShardedDb;
use crate::flight::FlightRecorder;
use crate::health::ShardHealth;
use crate::snapshot::{ReadPoolMetrics, SnapshotRegistry};
use crate::worker::Request;
use mobidx_core::{Index1D, IoTotals};
use mobidx_obs::json::Value;
use mobidx_obs::slo::{ActiveAlert, AnomalySpec, SloEngine, SloSpec};
use mobidx_obs::telemetry::{Sampler, Telemetry, TimeSeries, WorkloadProfile};
use mobidx_obs::EventLog;
use std::sync::mpsc::{channel, SyncSender};
use std::sync::Arc;
use std::time::Duration;

/// Sizing of a [`ServeSampler`].
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Harvest interval.
    pub tick: Duration,
    /// Samples retained per series (ring capacity). At the default
    /// 100 ms tick, 600 samples keep one minute of history.
    pub capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_millis(100),
            capacity: 600,
        }
    }
}

/// A running telemetry harvester over a [`ShardedDb`] (see the module
/// docs). Dropping it stops the sampling thread.
///
/// The handle is independent of the database's lifetime in the borrow
/// sense (it holds clones of the shared state), but harvesting degrades
/// gracefully once the database is gone: health atomics remain readable
/// and the I/O round-trips are skipped when the worker queues close.
#[derive(Debug)]
pub struct ServeSampler {
    telemetry: Arc<Telemetry>,
    slo: Arc<SloEngine>,
    flight: Arc<FlightRecorder>,
    shards: usize,
    sampler: Sampler,
}

impl ServeSampler {
    /// Completed harvest ticks.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.sampler.ticks()
    }

    /// Blocks until at least `ticks` harvests have completed (test and
    /// report-capture convenience; gives up after `timeout`).
    ///
    /// Returns `true` when the tick target was reached.
    #[must_use]
    pub fn wait_for_ticks(&self, ticks: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.ticks() < ticks {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// The underlying series registry.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Number of shards being harvested.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// One shard's series, by base name: `series_for("queue_depth", 2)`
    /// returns `queue_depth{shard="2"}` (creating it empty if the
    /// sampler has not recorded it yet).
    #[must_use]
    pub fn series_for(&self, base: &str, shard: usize) -> Arc<TimeSeries> {
        self.telemetry.series(&shard_series(base, shard))
    }

    /// The SLO engine this sampler evaluates every tick (default
    /// objectives unless the sampler was started with
    /// [`ShardedDb::start_sampler_with`]).
    #[must_use]
    pub fn slo_engine(&self) -> &Arc<SloEngine> {
        &self.slo
    }

    /// The currently firing alerts (convenience for
    /// [`SloEngine::active_alerts`] — what `mobidx-top`'s alert column
    /// polls).
    #[must_use]
    pub fn active_alerts(&self) -> Vec<ActiveAlert> {
        self.slo.active_alerts()
    }

    /// The database's flight recorder (the same handle
    /// [`ShardedDb::flight_recorder`] returns; exposed here because the
    /// sampler's tick is what drives its automatic triggers).
    #[must_use]
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// The full JSON telemetry report: sampler metadata plus the
    /// registry dump of [`Telemetry::to_json`] and the SLO engine's
    /// verdict.
    #[must_use]
    pub fn report_json(&self) -> Value {
        Value::Obj(vec![
            ("kind".to_owned(), Value::from("mobidx-telemetry")),
            ("shards".to_owned(), Value::from(self.shards)),
            ("ticks".to_owned(), Value::from(self.ticks())),
            ("alerts".to_owned(), self.slo.to_json()),
            ("telemetry".to_owned(), self.telemetry.to_json()),
        ])
    }

    /// The Prometheus text exposition of the registry.
    #[must_use]
    pub fn prometheus(&self) -> String {
        self.telemetry.prometheus()
    }
}

/// `base{shard="i"}`.
fn shard_series(base: &str, shard: usize) -> String {
    format!("{base}{{shard=\"{shard}\"}}")
}

/// The default serving-tier objective set a plain
/// [`ShardedDb::start_sampler`] installs:
///
/// * `query-p99-s<i>` — per-shard query p99 at or below 50 ms (5 %
///   budget, 12/60-tick windows, 2× burn);
/// * `shard-fault-s<i>` — per-shard poisoned gauge must read 0 (pages
///   on the first poisoned tick);
/// * `snapshot-age` — the published snapshot must advance at least
///   once per 600 ticks (one minute at the default 100 ms tick) —
///   write stalls and paused publication (a poisoned shard) surface
///   here;
/// * one anomaly detector over `queue_depth_total` for congestion
///   steps no fixed threshold was told about.
///
/// Deployments with different targets build their own engine and pass
/// it to [`ShardedDb::start_sampler_with`].
#[must_use]
pub fn default_slos(shards: usize) -> SloEngine {
    let mut engine = SloEngine::new();
    for shard in 0..shards {
        engine = engine
            .slo(SloSpec::latency(
                &format!("query-p99-s{shard}"),
                &shard_series("query_p99_us", shard),
                50_000.0,
            ))
            .slo(SloSpec::fault(
                &format!("shard-fault-s{shard}"),
                &shard_series("poisoned", shard),
            ));
    }
    engine
        .slo(SloSpec::staleness(
            "snapshot-age",
            "snapshot_age_ticks",
            600.0,
        ))
        .anomaly(AnomalySpec::over("queue_depth_total"))
}

impl<I: Index1D + Send + 'static> ShardedDb<I> {
    /// Starts a background telemetry harvester over this database (see
    /// the [module docs](crate::telemetry)) with the [`default_slos`]
    /// objective set. The returned handle owns the sampling thread;
    /// drop it to stop sampling. Multiple samplers may run concurrently
    /// (each owns its registry; the flight recorder follows the most
    /// recently started one).
    #[must_use]
    pub fn start_sampler(&self, cfg: SamplerConfig) -> ServeSampler {
        self.start_sampler_with(cfg, default_slos(self.shards()))
    }

    /// [`ShardedDb::start_sampler`] with an explicit objective set.
    /// The engine is wired to the database's event log (alert events
    /// land next to drift events and query spans) and evaluated once
    /// per tick, after the harvest; its raise edges drive the flight
    /// recorder's `slo_breach` trigger.
    #[must_use]
    pub fn start_sampler_with(&self, cfg: SamplerConfig, engine: SloEngine) -> ServeSampler {
        let slo = Arc::new(engine.with_event_log(Arc::clone(self.telemetry_events())));
        start(
            cfg,
            self.telemetry_senders().to_vec(),
            self.telemetry_health().to_vec(),
            Arc::clone(self.telemetry_events()),
            Arc::clone(self.profile()),
            Arc::clone(self.telemetry_registry()),
            Arc::clone(self.telemetry_read_pool()),
            slo,
            Arc::clone(self.flight_recorder()),
            Arc::clone(self.repartition_stats()),
        )
    }
}

/// Builds the harvest closure and spawns the sampler thread.
#[allow(clippy::too_many_arguments)]
fn start<I: Index1D + Send + 'static>(
    cfg: SamplerConfig,
    senders: Vec<SyncSender<Request<I>>>,
    health: Vec<Arc<ShardHealth>>,
    events: Arc<EventLog>,
    profile: Arc<WorkloadProfile>,
    registry: Arc<SnapshotRegistry>,
    read_pool: Arc<ReadPoolMetrics>,
    slo: Arc<SloEngine>,
    flight: Arc<FlightRecorder>,
    repartition: Arc<crate::repartition::RepartitionStats>,
) -> ServeSampler {
    let shards = senders.len();
    let telemetry = Arc::new(Telemetry::new(cfg.capacity));
    flight.attach(Arc::clone(&telemetry), Arc::clone(&slo));
    let t = Arc::clone(&telemetry);
    let tick_slo = Arc::clone(&slo);
    let tick_flight = Arc::clone(&flight);
    let mut last_io: Vec<IoTotals> = vec![IoTotals::default(); shards];
    let mut last_ops: Vec<u64> = vec![0; shards];
    let mut last_queries: Vec<u64> = vec![0; shards];
    let mut last_snap_reads: Vec<u64> = vec![0; shards];
    let mut last_pool = (0u64, 0u64, vec![0u64; read_pool.snapshot().threads]);
    // Snapshot-age bookkeeping: ticks since the published epoch last
    // advanced (the sampler derives age from epoch *changes*, so it
    // needs no clock plumbed out of the registry).
    let mut last_epoch = registry.epoch();
    let mut age_ticks = 0u64;
    // Repartition-age bookkeeping, same derivation: per-shard ticks
    // since the shard's completed-repartition counter last advanced.
    let mut last_repartitions: Vec<u64> = vec![0; shards];
    let mut repartition_age: Vec<u64> = vec![0; shards];
    let harvest = move || {
        let now = t.now_nanos();
        let mut depth_total = 0u64;
        let mut snap_reads_total = 0u64;
        let mut reads_total = 0u64;
        let mut writes_total = 0u64;
        let mut wal_records_total = 0u64;
        let mut wal_fsyncs_total = 0u64;
        let mut polled: Vec<Option<IoTotals>> = vec![None; shards];
        #[allow(clippy::cast_precision_loss)]
        for (shard, h) in health.iter().enumerate() {
            let snap = h.snapshot(shard);
            let rec = |base: &str, v: f64| t.series(&shard_series(base, shard)).push(now, v);
            rec("queue_depth", snap.queue_depth as f64);
            rec("query_p50_us", snap.query_latency_us.p50 as f64);
            rec("query_p95_us", snap.query_latency_us.p95 as f64);
            rec("query_p99_us", snap.query_latency_us.p99 as f64);
            rec("poisoned", f64::from(u8::from(snap.poisoned)));
            depth_total += snap.queue_depth;
            let ops_delta = snap.applied_ops.saturating_sub(last_ops[shard]);
            last_ops[shard] = snap.applied_ops;
            rec("applied_ops", ops_delta as f64);
            let q_delta = snap.queries.saturating_sub(last_queries[shard]);
            last_queries[shard] = snap.queries;
            rec("queries", q_delta as f64);
            let sr_delta = snap
                .reads_on_snapshot
                .saturating_sub(last_snap_reads[shard]);
            last_snap_reads[shard] = snap.reads_on_snapshot;
            rec("reads_on_snapshot", sr_delta as f64);
            snap_reads_total += sr_delta;
            // The I/O counters live inside the worker-owned index, so
            // they take one queue round-trip; the deltas saturate so a
            // mid-run `reset_io` reads as a quiet tick, not a panic.
            if let Some(totals) = poll_stats(&senders[shard], h) {
                polled[shard] = Some(totals);
                let reads = totals.reads.saturating_sub(last_io[shard].reads);
                let writes = totals.writes.saturating_sub(last_io[shard].writes);
                let wal_records = totals
                    .wal_records
                    .saturating_sub(last_io[shard].wal_records);
                let wal_fsyncs = totals.wal_fsyncs.saturating_sub(last_io[shard].wal_fsyncs);
                last_io[shard] = totals;
                rec("io_reads", reads as f64);
                rec("io_writes", writes as f64);
                rec("wal_records", wal_records as f64);
                rec("wal_fsyncs", wal_fsyncs as f64);
                reads_total += reads;
                writes_total += writes;
                wal_records_total += wal_records;
                wal_fsyncs_total += wal_fsyncs;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        {
            t.series("queue_depth_total").push(now, depth_total as f64);
            t.series("io_reads_total").push(now, reads_total as f64);
            t.series("io_writes_total").push(now, writes_total as f64);
            t.series("wal_records_total")
                .push(now, wal_records_total as f64);
            t.series("wal_fsyncs_total")
                .push(now, wal_fsyncs_total as f64);
            t.series("spans_recorded")
                .push(now, events.recorded() as f64);
            t.series("spans_dropped").push(now, events.dropped() as f64);
            t.series("updates_observed")
                .push(now, profile.updates() as f64);
            t.series("drift_l1_millis")
                .push(now, profile.drift_millis() as f64);
            t.series("drift_events")
                .push(now, profile.drift_events() as f64);
            t.series("reads_on_snapshot_total")
                .push(now, snap_reads_total as f64);
            // The snapshot read pool: backlog gauge, submit/steal
            // deltas, and per-worker executed-leg deltas.
            let pool = read_pool.snapshot();
            t.series("readpool_depth").push(now, pool.depth as f64);
            t.series("readpool_submitted")
                .push(now, pool.submitted.saturating_sub(last_pool.0) as f64);
            t.series("readpool_stolen")
                .push(now, pool.stolen.saturating_sub(last_pool.1) as f64);
            for (worker, &executed) in pool.executed.iter().enumerate() {
                let prev = last_pool.2.get(worker).copied().unwrap_or(0);
                t.series(&format!("readpool_executed{{worker=\"{worker}\"}}"))
                    .push(now, executed.saturating_sub(prev) as f64);
            }
            last_pool = (pool.submitted, pool.stolen, pool.executed);
            let epoch = registry.epoch();
            if epoch == last_epoch {
                age_ticks += 1;
            } else {
                last_epoch = epoch;
                age_ticks = 0;
            }
            t.series("snapshot_epoch").push(now, epoch as f64);
            t.series("snapshot_age_ticks").push(now, age_ticks as f64);
            // Online repartitioning: per-shard band-count gauges and
            // ticks-since-last-repartition, plus the pass aggregates.
            for shard in 0..shards {
                let done = repartition.shard_completed(shard);
                if done == last_repartitions[shard] {
                    repartition_age[shard] += 1;
                } else {
                    last_repartitions[shard] = done;
                    repartition_age[shard] = 0;
                }
                t.series(&shard_series("bands", shard))
                    .push(now, repartition.bands(shard) as f64);
                t.series(&shard_series("repartitions", shard))
                    .push(now, done as f64);
                t.series(&shard_series("repartition_age_ticks", shard))
                    .push(now, repartition_age[shard] as f64);
            }
            t.series("repartition_events")
                .push(now, repartition.completed() as f64);
            t.series("repartition_attempts")
                .push(now, repartition.attempts() as f64);
            t.series("repartition_skipped")
                .push(now, repartition.skipped() as f64);
            t.series("repartition_moved_total")
                .push(now, repartition.moved_total() as f64);
            t.series("repartition_last_ms")
                .push(now, repartition.last_millis() as f64);
        }
        // Judgment rides the same tick: the SLO engine reads the
        // windows just harvested, then the flight recorder checks its
        // trigger edges (poison / new alerts / drift) and captures at
        // most one bundle from the polled totals.
        tick_slo.evaluate(&t);
        tick_flight.on_tick(&polled);
    };
    ServeSampler {
        telemetry,
        slo,
        flight,
        shards,
        sampler: Sampler::spawn(cfg.tick, harvest),
    }
}

/// One `Stats` round-trip on a worker queue, honoring the queue-depth
/// gauge contract (the facade increments before a send, the worker
/// decrements at dequeue). Returns `None` when the worker is gone.
fn poll_stats<I: Index1D>(
    sender: &SyncSender<Request<I>>,
    health: &Arc<ShardHealth>,
) -> Option<IoTotals> {
    let (reply, rx) = channel();
    let depth = health.queue_depth.incr();
    health.queue_high_water.set_max(depth);
    match sender.send(Request::Stats { reply }) {
        Ok(()) => {
            health.enqueued.incr();
            rx.recv().ok().map(|(totals, _)| totals)
        }
        Err(_) => {
            let _ = health.queue_depth.decr();
            None
        }
    }
}
