//! K-way merge of per-shard answers.
//!
//! Each shard returns its ids sorted and deduplicated (the [`Index1D`]
//! query contract); the facade merges the lists back into one sorted,
//! deduplicated answer — the same contract a single index would have
//! produced, so callers cannot tell a sharded database from a plain one.
//!
//! [`Index1D`]: mobidx_core::Index1D

/// Merges sorted, deduplicated id lists into one sorted, deduplicated
/// list. Duplicates *across* lists are collapsed (shard functions
/// partition objects, so lists are normally disjoint — but the merge
/// does not rely on it).
#[must_use]
pub fn merge_sorted_ids(lists: &[Vec<u64>]) -> Vec<u64> {
    // Tournament of two-pointer merges: O(R log k) with a tight inner
    // loop, instead of a k-wide cursor scan per output element.
    let nonempty: Vec<&[u64]> = lists
        .iter()
        .filter(|l| !l.is_empty())
        .map(Vec::as_slice)
        .collect();
    if nonempty.is_empty() {
        return Vec::new();
    }
    let mut round: Vec<Vec<u64>> = nonempty
        .chunks(2)
        .map(|pair| match pair {
            [a, b] => merge_two(a, b),
            [a] => a.to_vec(),
            _ => unreachable!("chunks(2)"),
        })
        .collect();
    while round.len() > 1 {
        let mut next = Vec::with_capacity(round.len().div_ceil(2));
        let mut it = round.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(&a, &b)),
                None => next.push(a),
            }
        }
        round = next;
    }
    round.pop().expect("one list left")
}

/// Two-pointer merge of two sorted, deduplicated lists, collapsing
/// cross-list duplicates.
fn merge_two(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_disjoint_lists() {
        let lists = vec![vec![1, 4, 9], vec![2, 3], vec![], vec![5]];
        assert_eq!(merge_sorted_ids(&lists), vec![1, 2, 3, 4, 5, 9]);
    }

    #[test]
    fn collapses_cross_list_duplicates() {
        let lists = vec![vec![1, 2, 7], vec![2, 7, 8], vec![7]];
        assert_eq!(merge_sorted_ids(&lists), vec![1, 2, 7, 8]);
    }

    #[test]
    fn degenerate_shapes() {
        assert!(merge_sorted_ids(&[]).is_empty());
        assert!(merge_sorted_ids(&[vec![], vec![]]).is_empty());
        assert_eq!(merge_sorted_ids(&[vec![3, 5]]), vec![3, 5]);
    }

    #[test]
    fn matches_sort_dedup_oracle() {
        // Deterministic pseudo-random split of 0..400 into 5 lists with
        // some overlap.
        let mut lists = vec![Vec::new(); 5];
        let mut z: u64 = 0xDEAD_BEEF;
        let mut all = Vec::new();
        for id in 0..400u64 {
            z = z.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let a = (z >> 33) as usize % 5;
            let b = (z >> 13) as usize % 5;
            lists[a].push(id);
            if a != b && z % 3 == 0 {
                lists[b].push(id); // overlap
            }
            all.push(id);
        }
        let merged = merge_sorted_ids(&lists);
        assert_eq!(merged, all);
    }
}
