//! Drift-driven online repartitioning for a velocity-partitioned
//! serving tier.
//!
//! A [`ShardedDb`] over [`VpDualIndex`] gains three capabilities here:
//!
//! * [`ShardedDb::repartition_now`] — recompute optimal band
//!   boundaries from the live [`WorkloadProfile`](mobidx_obs::telemetry::WorkloadProfile) velocity histogram
//!   and migrate every shard to them **incrementally**: records move
//!   band-to-band in bounded chunks through the batched-update path on
//!   the shard's own worker thread, interleaved with live traffic, so
//!   serving never stalls. Reads stay exact throughout (the index
//!   widens its per-band query windows for the duration — see
//!   `mobidx_core::method::vp_dual`), and the published snapshot keeps
//!   serving the old layout until the migrated shard's fresh frozen
//!   view is republished through the snapshot epoch machinery.
//! * [`ShardedDb::maybe_repartition`] — the drift subscription: runs
//!   `repartition_now` only when the profile has raised `drift` events
//!   not yet handled, and afterwards
//!   [`rebaseline`](mobidx_obs::telemetry::WorkloadProfile::rebaseline)s the profile's
//!   reference window so the *same* drift does not re-fire the trigger
//!   in a loop.
//! * [`start_repartitioner`] — a background scheduler thread polling
//!   `maybe_repartition` (and refreshing the per-shard band gauges the
//!   telemetry sampler exports).
//!
//! All progress is counted in [`RepartitionStats`], which the telemetry
//! sampler turns into `repartition_*` series and per-shard `bands`
//! gauges (what `mobidx-top` renders).

use crate::db::ShardedDb;
use crate::ServeError;
use mobidx_core::{Index1D, VpDualIndex};
use mobidx_obs::{Span, SpanIo};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of one repartition pass.
#[derive(Debug, Clone, Copy)]
pub struct RepartitionPolicy {
    /// Records migrated per worker-queue message. Each chunk is one
    /// bounded occupancy of the shard's worker thread; live applies and
    /// queries interleave between chunks.
    pub chunk: usize,
    /// Relative per-edge tolerance under which a planned layout counts
    /// as "already in place" and the shard is left untouched.
    pub edge_tolerance: f64,
}

impl Default for RepartitionPolicy {
    fn default() -> Self {
        RepartitionPolicy {
            chunk: 512,
            edge_tolerance: 0.02,
        }
    }
}

/// What one [`ShardedDb::repartition_now`] pass did.
#[derive(Debug, Clone, PartialEq)]
pub struct RepartitionReport {
    /// The band edges the optimizer planned from the current histogram.
    pub edges: Vec<f64>,
    /// Shards whose layout actually changed (the rest already matched
    /// within tolerance).
    pub shards_changed: usize,
    /// Records migrated band-to-band across all shards.
    pub moved: usize,
    /// Wall-clock duration of the pass.
    pub elapsed: Duration,
}

/// Shared, lock-free progress counters for online repartitioning.
/// One instance lives inside every [`ShardedDb`] (the counters stay at
/// zero for non-partitioned index types); the telemetry sampler
/// harvests it every tick.
#[derive(Debug)]
pub struct RepartitionStats {
    attempts: AtomicU64,
    completed: AtomicU64,
    skipped: AtomicU64,
    moved: AtomicU64,
    last_millis: AtomicU64,
    handled_drift: AtomicU64,
    bands: Vec<AtomicU64>,
    shard_completed: Vec<AtomicU64>,
}

impl RepartitionStats {
    pub(crate) fn new(shards: usize) -> RepartitionStats {
        RepartitionStats {
            attempts: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            moved: AtomicU64::new(0),
            last_millis: AtomicU64::new(0),
            handled_drift: AtomicU64::new(0),
            bands: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_completed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Repartition passes started.
    #[must_use]
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Passes that changed at least one shard's layout.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Passes that found every shard already within tolerance.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Records migrated band-to-band, lifetime total.
    #[must_use]
    pub fn moved_total(&self) -> u64 {
        self.moved.load(Ordering::Relaxed)
    }

    /// Wall-clock milliseconds of the most recent completed pass.
    #[must_use]
    pub fn last_millis(&self) -> u64 {
        self.last_millis.load(Ordering::Relaxed)
    }

    /// Drift events already answered by a repartition attempt.
    #[must_use]
    pub fn handled_drift(&self) -> u64 {
        self.handled_drift.load(Ordering::Relaxed)
    }

    /// Last observed band count of `shard` (0 until first refreshed —
    /// an unpartitioned or never-polled shard).
    #[must_use]
    pub fn bands(&self, shard: usize) -> u64 {
        self.bands[shard].load(Ordering::Relaxed)
    }

    /// Layout changes applied to `shard`.
    #[must_use]
    pub fn shard_completed(&self, shard: usize) -> u64 {
        self.shard_completed[shard].load(Ordering::Relaxed)
    }

    pub(crate) fn set_bands(&self, shard: usize, bands: u64) {
        self.bands[shard].store(bands, Ordering::Relaxed);
    }
}

/// `true` when the two edge vectors describe the same layout within
/// `tol` relative error per edge.
fn edges_close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(&x, &y)| (x - y).abs() <= tol * x.abs().max(y.abs()))
}

impl ShardedDb<VpDualIndex> {
    /// Recomputes optimal band boundaries from the live workload
    /// profile's velocity histogram and migrates every shard to them
    /// incrementally (see the [module docs](crate::repartition) for the
    /// protocol). Shards already within `policy.edge_tolerance` of the
    /// plan are left untouched. Always `rebaseline`s the profile
    /// afterwards — the layout now reflects the current distribution,
    /// so it is the new reference.
    ///
    /// # Errors
    /// Any [`ServeError`] from the per-shard round-trips; a shard that
    /// faults mid-migration is left to the normal poison/rebuild path
    /// (a rebuild constructs a fresh index, so no records are lost).
    pub fn repartition_now(
        &self,
        policy: &RepartitionPolicy,
    ) -> Result<RepartitionReport, ServeError> {
        let started = Instant::now();
        let stats = self.repartition_stats();
        stats.attempts.fetch_add(1, Ordering::Relaxed);
        let profile = self.profile();
        let hist = profile.band_counts();
        let (hist_lo, hist_hi) = {
            let cfg = profile.config();
            (cfg.v_min, cfg.v_max)
        };
        let mut planned = Vec::new();
        let mut moved = 0usize;
        let mut shards_changed = 0usize;
        for shard in 0..self.shards() {
            let plan_hist = hist.clone();
            let (plan, current) = self.with_shard(shard, move |idx| {
                (
                    idx.plan_boundaries(&plan_hist, hist_lo, hist_hi),
                    idx.band_edges().to_vec(),
                )
            })?;
            if planned.is_empty() {
                planned.clone_from(&plan);
            }
            if edges_close(&plan, &current, policy.edge_tolerance) {
                stats.set_bands(shard, (current.len() - 1) as u64);
                continue;
            }
            // Step 1: widen + install pending routing. Everything
            // applied after this point lands in its final band.
            self.with_shard(shard, move |idx| idx.begin_repartition(plan))?;
            // Step 2: snapshot the shard's population *after* begin (the
            // protocol's ordering requirement) and drain it in chunks,
            // each one bounded stay on the worker thread.
            let motions = self.shard_motions(shard);
            let chunk = policy.chunk.max(1);
            for piece in motions.chunks(chunk) {
                let piece = piece.to_vec();
                moved += self.with_shard(shard, move |idx| idx.migrate_chunk(&piece))?;
            }
            // Step 3: publish the new layout and its frozen view — the
            // old snapshot serves reads until this lands.
            let (bands, view) = self.with_shard(shard, |idx| {
                idx.finish_repartition();
                (idx.bands() as u64, idx.freeze().map(Arc::from))
            })?;
            self.telemetry_registry().publish([(shard, view)]);
            stats.set_bands(shard, bands);
            stats.shard_completed[shard].fetch_add(1, Ordering::Relaxed);
            shards_changed += 1;
        }
        let elapsed = started.elapsed();
        if shards_changed > 0 {
            stats.completed.fetch_add(1, Ordering::Relaxed);
            stats.moved.fetch_add(moved as u64, Ordering::Relaxed);
            stats.last_millis.store(
                elapsed.as_millis().try_into().unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
        } else {
            stats.skipped.fetch_add(1, Ordering::Relaxed);
        }
        // The new layout was fitted to the current distribution, so it
        // becomes the drift detector's reference — without this the
        // drift that triggered us would re-fire every window and the
        // scheduler would loop.
        profile.rebaseline();
        let t = u64::try_from(self.telemetry_epoch().elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.telemetry_events().push(Arc::new(
            Span::leaf("repartition", t, SpanIo::default())
                .with_attr("shards_changed", shards_changed as u64)
                .with_attr("moved", moved as u64)
                .with_attr("millis", elapsed.as_millis().try_into().unwrap_or(u64::MAX)),
        ));
        Ok(RepartitionReport {
            edges: planned,
            shards_changed,
            moved,
            elapsed,
        })
    }

    /// The drift subscription: if the workload profile has raised
    /// `drift` events not yet handled by a repartition attempt, marks
    /// them handled and runs [`repartition_now`](Self::repartition_now).
    /// Returns `None` when there was nothing to do.
    ///
    /// # Errors
    /// As [`repartition_now`](Self::repartition_now).
    pub fn maybe_repartition(
        &self,
        policy: &RepartitionPolicy,
    ) -> Result<Option<RepartitionReport>, ServeError> {
        let drift = self.profile().drift_events();
        let stats = self.repartition_stats();
        if drift <= stats.handled_drift() {
            return Ok(None);
        }
        stats.handled_drift.store(drift, Ordering::Relaxed);
        self.repartition_now(policy).map(Some)
    }

    /// Refreshes the per-shard band-count gauges in
    /// [`RepartitionStats`] from the live indexes (one worker
    /// round-trip per shard). The scheduler calls this each poll so
    /// `mobidx-top`'s `bands` column is live even before the first
    /// repartition.
    ///
    /// # Errors
    /// Any [`ServeError`] from the round-trips.
    pub fn refresh_band_gauges(&self) -> Result<(), ServeError> {
        for shard in 0..self.shards() {
            let bands = self.with_shard(shard, |idx| idx.bands() as u64)?;
            self.repartition_stats().set_bands(shard, bands);
        }
        Ok(())
    }
}

/// Scheduling of the background [`Repartitioner`].
#[derive(Debug, Clone, Copy)]
pub struct RepartitionConfig {
    /// How often to poll the profile's drift-event counter.
    pub poll: Duration,
    /// Per-pass migration knobs.
    pub policy: RepartitionPolicy,
}

impl Default for RepartitionConfig {
    fn default() -> Self {
        RepartitionConfig {
            poll: Duration::from_millis(50),
            policy: RepartitionPolicy::default(),
        }
    }
}

/// A background thread answering [`WorkloadProfile`](mobidx_obs::telemetry::WorkloadProfile) drift events with
/// incremental repartitions (see [`start_repartitioner`]). Dropping the
/// handle stops the thread.
#[derive(Debug)]
pub struct Repartitioner {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
}

impl Repartitioner {
    /// Signals the scheduler to stop and waits for it; returns how many
    /// repartition passes it ran. Called automatically on drop (which
    /// discards the count).
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .map_or(0, |h| h.join().expect("repartitioner thread"))
    }
}

impl Drop for Repartitioner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Spawns the drift-subscription scheduler over a shared database
/// handle: every `cfg.poll` it refreshes the band gauges and runs
/// [`ShardedDb::maybe_repartition`]; shard errors (a poisoned shard
/// mid-pass) are left to the owner's normal rebuild path and retried on
/// the next drift event.
#[must_use]
pub fn start_repartitioner(
    db: &Arc<ShardedDb<VpDualIndex>>,
    cfg: RepartitionConfig,
) -> Repartitioner {
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let db = Arc::clone(db);
    let handle = std::thread::Builder::new()
        .name("mobidx-repartition".to_owned())
        .spawn(move || {
            let mut passes = 0u64;
            while !thread_stop.load(Ordering::Relaxed) {
                let _ = db.refresh_band_gauges();
                if let Ok(Some(_)) = db.maybe_repartition(&cfg.policy) {
                    passes += 1;
                }
                std::thread::sleep(cfg.poll);
            }
            passes
        })
        .expect("spawn repartitioner");
    Repartitioner {
        stop,
        handle: Some(handle),
    }
}
