//! The worker's group-commit drain doubles as a durability group
//! commit: with durable backends armed, every drained apply group
//! seals one WAL commit window per store — and with
//! [`FsyncPolicy::Never`] the workers skip sealing entirely.

use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::{Motion1D, QueryRequest};
use mobidx_pager::{FileBackend, FsyncPolicy, WAL_FILE};
use mobidx_serve::{Batch, IdHashShard, SamplerConfig, ServeConfig, ShardedDb};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mobidx-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_index() -> DualBPlusIndex {
    DualBPlusIndex::new(DualBPlusConfig {
        c: 2,
        ..DualBPlusConfig::default()
    })
}

/// Arms a [`FileBackend`] on every store of shard 0, each in its own
/// subdirectory of `root`. Returns the number of stores armed.
fn arm_durable(db: &ShardedDb<DualBPlusIndex>, root: &Path) -> usize {
    let root = root.to_path_buf();
    db.with_shard(0, move |index| {
        let counter = Arc::new(AtomicUsize::new(0));
        index.set_backends(&mut || {
            let store = counter.fetch_add(1, Ordering::SeqCst);
            let dir = root.join(format!("store{store}"));
            let (backend, image) =
                FileBackend::open(&dir, FsyncPolicy::OnCommit).expect("open store dir");
            assert!(image.is_empty(), "fresh dir must recover empty");
            Box::new(backend)
        });
        counter.load(Ordering::SeqCst)
    })
    .expect("arm shard 0")
}

fn motions(n: u64) -> Batch {
    let mut batch = Batch::new();
    for i in 0..n {
        batch.insert(Motion1D {
            id: i,
            t0: 0.0,
            #[allow(clippy::cast_precision_loss)]
            y0: (i as f64) % 1000.0,
            v: if i % 2 == 0 { 1.0 } else { -1.0 },
        });
    }
    batch
}

#[test]
fn apply_group_seals_wal_windows_on_durable_shards() {
    let root = tmp_root("commit");
    let db = ShardedDb::new(
        ServeConfig {
            shards: 1,
            queue_depth: 8,
            ..ServeConfig::default()
        },
        Box::new(IdHashShard),
        |_, _| small_index(),
    );
    let stores = arm_durable(&db, &root);
    assert!(stores >= 3, "dual-B+ has a static tree and c tree pairs");
    db.apply(&motions(64)).unwrap();
    // Every armed B+-tree store got its window sealed by the worker's
    // drain (the interval indices are absent at c=2 without
    // subterrain maintenance, so every store here is a tree).
    let mut sealed = 0;
    for store in 0..stores {
        let wal = root.join(format!("store{store}")).join(WAL_FILE);
        let len = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        if len > 0 {
            sealed += 1;
        }
    }
    assert!(
        sealed >= 1,
        "at least the populated trees must have non-empty logs"
    );
    // The static tree (store 0) holds nothing, but its window was
    // still sealed — a commit record alone is a valid (if empty)
    // window, proving commit_group visited every store.
    let static_wal = root.join("store0").join(WAL_FILE);
    assert!(
        std::fs::metadata(&static_wal).unwrap().len() > 0,
        "even an empty tree's window is sealed with a commit record"
    );
    drop(db);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn fsync_never_skips_sealing() {
    let root = tmp_root("nosync");
    let db = ShardedDb::new(
        ServeConfig {
            shards: 1,
            queue_depth: 8,
            fsync: FsyncPolicy::Never,
            ..ServeConfig::default()
        },
        Box::new(IdHashShard),
        |_, _| small_index(),
    );
    let stores = arm_durable(&db, &root);
    db.apply(&motions(64)).unwrap();
    for store in 0..stores {
        let wal = root.join(format!("store{store}")).join(WAL_FILE);
        let len = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        assert_eq!(len, 0, "store{store}: Never policy must not seal windows");
    }
    drop(db);
    std::fs::remove_dir_all(&root).unwrap();
}

/// The continuous-telemetry sampler surfaces the WAL counters: with a
/// durable shard committing windows, the per-shard `wal_records` and
/// `wal_fsyncs` series record positive deltas, and the aggregate
/// `_total` series exist in the registry.
#[test]
fn sampler_publishes_wal_counters_for_durable_shards() {
    let root = tmp_root("telemetry");
    let db = ShardedDb::new(
        ServeConfig {
            shards: 1,
            queue_depth: 8,
            ..ServeConfig::default()
        },
        Box::new(IdHashShard),
        |_, _| small_index(),
    );
    arm_durable(&db, &root);
    let sampler = db.start_sampler(SamplerConfig {
        tick: Duration::from_millis(5),
        capacity: 256,
    });
    db.apply(&motions(64)).unwrap();
    assert!(
        sampler.wait_for_ticks(sampler.ticks() + 3, Duration::from_secs(10)),
        "sampler stalled"
    );
    let records = sampler.series_for("wal_records", 0);
    assert!(
        !records.is_empty(),
        "wal_records{{shard=\"0\"}} never sampled"
    );
    let appended: f64 = records.samples().iter().map(|s| s.value).sum();
    assert!(
        appended > 0.0,
        "a sealed commit window must surface as a wal_records delta"
    );
    let fsyncs: f64 = sampler
        .series_for("wal_fsyncs", 0)
        .samples()
        .iter()
        .map(|s| s.value)
        .sum();
    assert!(fsyncs > 0.0, "OnCommit sealing must surface fsyncs");
    assert!(
        sampler.telemetry().get("wal_records_total").is_some(),
        "aggregate series missing"
    );
    drop(sampler);
    drop(db);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn queries_match_after_durable_commits() {
    let root = tmp_root("query");
    let db = ShardedDb::new(
        ServeConfig {
            shards: 1,
            queue_depth: 8,
            ..ServeConfig::default()
        },
        Box::new(IdHashShard),
        |_, _| small_index(),
    );
    arm_durable(&db, &root);
    db.apply(&motions(100)).unwrap();
    let q = mobidx_core::MorQuery1D {
        y1: 0.0,
        y2: 1000.0,
        t1: 0.0,
        t2: 0.0,
    };
    let ids = db.query(&QueryRequest::new(&q)).unwrap();
    assert_eq!(ids.len(), 100, "durable commits must not perturb answers");
    drop(db);
    std::fs::remove_dir_all(&root).unwrap();
}
