//! # mobidx-bptree — a paged B+-tree in the external-memory model
//!
//! The practical index of the paper's §3.5.2 stores the Hough-Y dual
//! `b`-coordinates of all mobile objects in `c` plain B+-trees ("each of
//! the c observation indices can simply be a B+-tree \[13\]"). This crate
//! provides that B+-tree, built on [`mobidx_pager`]'s I/O-counted page
//! store:
//!
//! * entries are `(key, value)` pairs ordered **lexicographically** —
//!   values act as tie-breakers, so every entry is unique and deletions
//!   are exact even with massively duplicated keys;
//! * leaves are chained for `O(k/B)` range scans;
//! * deletion rebalances (borrow from a sibling, else merge), keeping
//!   every node at least half full, so the space numbers of Figure 8 are
//!   honest;
//! * [`BPlusTree::bulk_load`] builds a tree from sorted entries at a
//!   chosen fill factor (used when an observation index is re-based).
//!
//! Page capacity comes from the paper's arithmetic: a 12-byte entry
//! (4-byte `b`-coordinate, 4-byte speed, 4-byte pointer) on a 4096-byte
//! page gives `B = 341` ([`paper_leaf_capacity`]).

mod node;
mod tree;

pub use node::Node;
pub use tree::{BPlusTree, FrozenTree, TreeConfig};

use mobidx_pager::{page_capacity, DEFAULT_PAGE_SIZE};

/// The leaf capacity used in the paper's experiments (§5): 12-byte
/// entries on 4096-byte pages ⇒ B = 341.
#[must_use]
pub fn paper_leaf_capacity() -> usize {
    page_capacity(DEFAULT_PAGE_SIZE, 12)
}

/// A key usable in the tree: totally ordered in practice (`f64` keys must
/// not be NaN), copiable, printable.
pub trait Key: Copy + PartialOrd + std::fmt::Debug {}
impl<T: Copy + PartialOrd + std::fmt::Debug> Key for T {}

/// Compares two keys, panicking on incomparable values (NaN keys are a
/// caller bug — dual transforms never produce them).
pub(crate) fn cmp_key<K: Key>(a: &K, b: &K) -> std::cmp::Ordering {
    a.partial_cmp(b).expect("non-total key order (NaN key?)")
}

/// Lexicographic comparison of `(key, value)` entries.
pub(crate) fn cmp_entry<K: Key, V: Ord>(a: &(K, V), b: &(K, V)) -> std::cmp::Ordering {
    cmp_key(&a.0, &b.0).then_with(|| a.1.cmp(&b.1))
}

#[cfg(test)]
mod capacity_tests {
    use super::paper_leaf_capacity;

    #[test]
    fn paper_capacity_is_341() {
        assert_eq!(paper_leaf_capacity(), 341);
    }
}
