//! B+-tree node layout.

use mobidx_pager::{ByteReader, FixedCodec, PageCodec, PageId};

/// One page of the tree.
///
/// * `Leaf` pages hold up to `leaf_cap` `(key, value)` entries sorted
///   lexicographically, plus a pointer to the next leaf (for range scans).
/// * `Branch` pages hold `children.len()` child pointers and
///   `children.len() − 1` separators; child `i` covers entries `e` with
///   `seps[i−1] ≤ e < seps[i]` (an entry equal to a separator lives in the
///   child to the *right* of it).
#[derive(Debug, Clone)]
pub enum Node<K, V> {
    /// A leaf page.
    Leaf {
        /// Sorted `(key, value)` entries.
        entries: Vec<(K, V)>,
        /// The next leaf in key order, if any.
        next: Option<PageId>,
    },
    /// An internal page.
    Branch {
        /// Separator entries; `seps.len() == children.len() - 1`.
        seps: Vec<(K, V)>,
        /// Child page ids.
        children: Vec<PageId>,
    },
}

impl<K, V> Node<K, V> {
    /// Creates an empty leaf.
    #[must_use]
    pub fn empty_leaf() -> Self {
        Node::Leaf {
            entries: Vec::new(),
            next: None,
        }
    }

    /// Whether this page is a leaf.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of entries (leaf) or children (branch) — the quantity that
    /// occupancy invariants constrain.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Branch { children, .. } => children.len(),
        }
    }
}

/// Leaf page tag in the byte image.
const TAG_LEAF: u8 = 0;
/// Branch page tag in the byte image.
const TAG_BRANCH: u8 = 1;
/// Sentinel index encoding `next: None` in a leaf image.
const NO_NEXT: u32 = u32::MAX;

/// Byte image of a node, for durable backends
/// ([`mobidx_pager::FileBackend`]):
///
/// * leaf:   `[0u8][count: u16][(K, V) × count][next: u32]` with
///   `u32::MAX` standing for "no next leaf";
/// * branch: `[1u8][count: u16][(K, V) × (count − 1)][child index: u32
///   × count]`.
///
/// Counts are `u16` — page capacities are derived from 4096-byte pages
/// (§5 of the paper, B = 341), far below `u16::MAX`. Corruption
/// detection is the framing's job (every WAL record and page-file slot
/// is CRC-checked); `decode` only rejects images it cannot understand.
impl<K: FixedCodec, V: FixedCodec> PageCodec for Node<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Node::Leaf { entries, next } => {
                out.push(TAG_LEAF);
                u16::try_from(entries.len())
                    .expect("leaf exceeds u16 entries")
                    .write(out);
                for (k, v) in entries {
                    k.write(out);
                    v.write(out);
                }
                next.map_or(NO_NEXT, PageId::index).write(out);
            }
            Node::Branch { seps, children } => {
                out.push(TAG_BRANCH);
                u16::try_from(children.len())
                    .expect("branch exceeds u16 children")
                    .write(out);
                for (k, v) in seps {
                    k.write(out);
                    v.write(out);
                }
                for child in children {
                    child.index().write(out);
                }
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(bytes);
        let tag = r.u8()?;
        let node = match tag {
            TAG_LEAF => {
                let count = r.u16()? as usize;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push((K::read(&mut r)?, V::read(&mut r)?));
                }
                let next = match r.u32()? {
                    NO_NEXT => None,
                    idx => Some(PageId::from_index(idx)),
                };
                Node::Leaf { entries, next }
            }
            TAG_BRANCH => {
                let count = r.u16()? as usize;
                if count == 0 {
                    return None;
                }
                let mut seps = Vec::with_capacity(count - 1);
                for _ in 0..count - 1 {
                    seps.push((K::read(&mut r)?, V::read(&mut r)?));
                }
                let mut children = Vec::with_capacity(count);
                for _ in 0..count {
                    children.push(PageId::from_index(r.u32()?));
                }
                Node::Branch { seps, children }
            }
            _ => return None,
        };
        if !r.is_empty() {
            return None;
        }
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_counts_the_right_thing() {
        let leaf: Node<f64, u64> = Node::Leaf {
            entries: vec![(1.0, 1), (2.0, 2)],
            next: None,
        };
        assert!(leaf.is_leaf());
        assert_eq!(leaf.occupancy(), 2);

        let branch: Node<f64, u64> = Node::Branch {
            seps: vec![(5.0, 0)],
            children: vec![PageId::from_index(0), PageId::from_index(1)],
        };
        assert!(!branch.is_leaf());
        assert_eq!(branch.occupancy(), 2);
    }

    fn round_trip(node: &Node<f64, u64>) -> Node<f64, u64> {
        let mut bytes = Vec::new();
        node.encode(&mut bytes);
        Node::decode(&bytes).expect("image must decode")
    }

    #[test]
    fn leaf_image_round_trips() {
        let leaf: Node<f64, u64> = Node::Leaf {
            entries: vec![(-1.5, 7), (0.0, 0), (3.25, u64::MAX)],
            next: Some(PageId::from_index(42)),
        };
        match round_trip(&leaf) {
            Node::Leaf { entries, next } => {
                assert_eq!(entries, vec![(-1.5, 7), (0.0, 0), (3.25, u64::MAX)]);
                assert_eq!(next, Some(PageId::from_index(42)));
            }
            Node::Branch { .. } => panic!("leaf decoded as branch"),
        }
        let terminal: Node<f64, u64> = Node::Leaf {
            entries: Vec::new(),
            next: None,
        };
        match round_trip(&terminal) {
            Node::Leaf { entries, next } => {
                assert!(entries.is_empty());
                assert!(next.is_none());
            }
            Node::Branch { .. } => panic!("leaf decoded as branch"),
        }
    }

    #[test]
    fn branch_image_round_trips() {
        let branch: Node<f64, u64> = Node::Branch {
            seps: vec![(5.0, 3), (9.5, 1)],
            children: vec![
                PageId::from_index(0),
                PageId::from_index(7),
                PageId::from_index(2),
            ],
        };
        match round_trip(&branch) {
            Node::Branch { seps, children } => {
                assert_eq!(seps, vec![(5.0, 3), (9.5, 1)]);
                assert_eq!(children.len(), 3);
                assert_eq!(children[1], PageId::from_index(7));
            }
            Node::Leaf { .. } => panic!("branch decoded as leaf"),
        }
    }

    #[test]
    fn bad_images_are_rejected() {
        // Unknown tag.
        assert!(Node::<f64, u64>::decode(&[9, 0, 0]).is_none());
        // Childless branch.
        assert!(Node::<f64, u64>::decode(&[1, 0, 0]).is_none());
        // Truncated and padded images.
        let leaf: Node<f64, u64> = Node::Leaf {
            entries: vec![(1.0, 1)],
            next: None,
        };
        let mut bytes = Vec::new();
        leaf.encode(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                Node::<f64, u64>::decode(&bytes[..cut]).is_none(),
                "truncation at {cut} must not decode"
            );
        }
        bytes.push(0);
        assert!(
            Node::<f64, u64>::decode(&bytes).is_none(),
            "trailing bytes must not decode"
        );
    }
}
