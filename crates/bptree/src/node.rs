//! B+-tree node layout.

use mobidx_pager::PageId;

/// One page of the tree.
///
/// * `Leaf` pages hold up to `leaf_cap` `(key, value)` entries sorted
///   lexicographically, plus a pointer to the next leaf (for range scans).
/// * `Branch` pages hold `children.len()` child pointers and
///   `children.len() − 1` separators; child `i` covers entries `e` with
///   `seps[i−1] ≤ e < seps[i]` (an entry equal to a separator lives in the
///   child to the *right* of it).
#[derive(Debug, Clone)]
pub enum Node<K, V> {
    /// A leaf page.
    Leaf {
        /// Sorted `(key, value)` entries.
        entries: Vec<(K, V)>,
        /// The next leaf in key order, if any.
        next: Option<PageId>,
    },
    /// An internal page.
    Branch {
        /// Separator entries; `seps.len() == children.len() - 1`.
        seps: Vec<(K, V)>,
        /// Child page ids.
        children: Vec<PageId>,
    },
}

impl<K, V> Node<K, V> {
    /// Creates an empty leaf.
    #[must_use]
    pub fn empty_leaf() -> Self {
        Node::Leaf {
            entries: Vec::new(),
            next: None,
        }
    }

    /// Whether this page is a leaf.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of entries (leaf) or children (branch) — the quantity that
    /// occupancy invariants constrain.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Branch { children, .. } => children.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_counts_the_right_thing() {
        let leaf: Node<f64, u64> = Node::Leaf {
            entries: vec![(1.0, 1), (2.0, 2)],
            next: None,
        };
        assert!(leaf.is_leaf());
        assert_eq!(leaf.occupancy(), 2);

        let branch: Node<f64, u64> = Node::Branch {
            seps: vec![(5.0, 0)],
            children: vec![PageId::from_index(0), PageId::from_index(1)],
        };
        assert!(!branch.is_leaf());
        assert_eq!(branch.occupancy(), 2);
    }
}
