//! The B+-tree proper: insert, exact delete with rebalancing, range
//! scans, bulk loading, and structural invariant checks.

use crate::node::Node;
use crate::{cmp_entry, cmp_key, Key};
use mobidx_pager::{
    put_u32, put_u64, Backend, ByteReader, FixedCodec, IoStats, PageId, PageStore, PagerError,
    RecoveredImage, DEFAULT_BUFFER_PAGES,
};
use std::cmp::Ordering;
use std::fmt::Debug;

/// Panic message of the infallible wrappers; fires only if a
/// fault-injecting backend is installed but the infallible API is used.
const INFALLIBLE: &str = "pager fault (use the try_* API with fault-injecting backends)";

/// Sizing parameters of a tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum entries per leaf (the paper's `B`).
    pub leaf_cap: usize,
    /// Maximum children per branch node.
    pub branch_cap: usize,
    /// Buffer-pool capacity in pages (the paper uses the root-to-leaf
    /// path, 3–4 pages).
    pub buffer_pages: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            leaf_cap: crate::paper_leaf_capacity(),
            branch_cap: crate::paper_leaf_capacity(),
            buffer_pages: DEFAULT_BUFFER_PAGES,
        }
    }
}

impl TreeConfig {
    /// Minimum entries in a non-root leaf.
    #[must_use]
    pub fn min_leaf(&self) -> usize {
        (self.leaf_cap / 2).max(1)
    }

    /// Minimum children in a non-root branch.
    #[must_use]
    pub fn min_branch(&self) -> usize {
        (self.branch_cap / 2).max(2)
    }
}

/// A paged B+-tree over `(key, value)` entries ordered lexicographically.
///
/// Values participate in the order, so entries are unique as long as the
/// caller never inserts the same `(key, value)` pair twice — which makes
/// [`BPlusTree::remove`] exact. (Exact duplicates are still tolerated;
/// `remove` then deletes one of them.)
#[derive(Debug)]
pub struct BPlusTree<K: Key, V: Copy + Ord + Debug> {
    store: PageStore<Node<K, V>>,
    root: PageId,
    /// Number of levels; 1 means the root is a leaf.
    height: usize,
    len: usize,
    cfg: TreeConfig,
    /// Whether the root page is kept pinned in the store (see
    /// [`BPlusTree::set_pin_root`]); maintained across root changes.
    pin_root: bool,
}

impl<K: Key, V: Copy + Ord + Debug> BPlusTree<K, V> {
    /// Creates an empty tree.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (capacities < 2).
    #[must_use]
    pub fn new(cfg: TreeConfig) -> Self {
        assert!(cfg.leaf_cap >= 2, "leaf capacity must be at least 2");
        assert!(cfg.branch_cap >= 3, "branch capacity must be at least 3");
        let mut store = PageStore::new(cfg.buffer_pages);
        let root = store.allocate(Node::empty_leaf());
        Self {
            store,
            root,
            height: 1,
            len: 0,
            cfg,
            pin_root: false,
        }
    }

    /// Keeps the root page pinned in the store's dedicated pin slot: it
    /// is never evicted and survives [`BPlusTree::clear_buffer`], so a
    /// descent costs `height - 1` I/Os instead of `height` once the
    /// root has been faulted in. One page of memory; the pin follows
    /// the root across splits and collapses. Multi-tree facades (the
    /// velocity-partitioned method) enable this on every sub-tree to
    /// amortize their fan-out.
    pub fn set_pin_root(&mut self, on: bool) {
        self.pin_root = on;
        self.store
            .try_pin(on.then_some(self.root))
            .expect(INFALLIBLE);
    }

    /// Whether the root page is pinned.
    #[must_use]
    pub fn pin_root(&self) -> bool {
        self.pin_root
    }

    /// Re-points the store's pin slot at the current root after a root
    /// change. No-op unless [`BPlusTree::set_pin_root`] is on.
    fn repin(&mut self) -> Result<(), PagerError> {
        if self.pin_root {
            self.store.try_pin(Some(self.root))?;
        }
        Ok(())
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 = root is a leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The tree's sizing parameters.
    #[must_use]
    pub fn config(&self) -> &TreeConfig {
        &self.cfg
    }

    /// I/O statistics of the underlying page store.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        self.store.stats()
    }

    /// Live pages — the space metric of Figure 8.
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.store.live_pages()
    }

    /// Flushes and empties the buffer pool (the paper clears the buffer
    /// before every query so query I/O is cold).
    ///
    /// # Panics
    /// Panics on an injected fault; see [`BPlusTree::try_clear_buffer`].
    pub fn clear_buffer(&mut self) {
        self.try_clear_buffer().expect(INFALLIBLE);
    }

    /// Flushes and empties the buffer pool.
    ///
    /// # Errors
    /// Propagates a rejected write-back from the backend.
    pub fn try_clear_buffer(&mut self) -> Result<(), PagerError> {
        self.store.try_clear_buffer()
    }

    /// Swaps the storage backend (fault policy), returning the previous
    /// one. Page contents are untouched.
    pub fn set_backend(&mut self, backend: Box<dyn Backend>) -> Box<dyn Backend> {
        self.store.set_backend(backend)
    }

    /// Inserts the entry `(key, value)`.
    ///
    /// # Panics
    /// Panics on an injected fault; see [`BPlusTree::try_insert`].
    pub fn insert(&mut self, key: K, value: V) {
        self.try_insert(key, value).expect(INFALLIBLE);
    }

    /// Inserts the entry `(key, value)`.
    ///
    /// # Errors
    /// Propagates the first unrecovered storage fault. The insert is then
    /// *not* counted in [`BPlusTree::len`], but node splits already
    /// performed are not rolled back — after a torn error the tree must
    /// be treated as suspect and rebuilt (see DESIGN.md, "Fault model &
    /// recovery guarantees").
    pub fn try_insert(&mut self, key: K, value: V) -> Result<(), PagerError> {
        if let Some((sep, right)) = self.try_insert_rec(self.root, self.height, (key, value))? {
            let old_root = self.root;
            self.root = self.store.try_allocate(Node::Branch {
                seps: vec![sep],
                children: vec![old_root, right],
            })?;
            self.height += 1;
            self.repin()?;
        }
        self.len += 1;
        Ok(())
    }

    /// Inserts a batch of entries **sorted lexicographically**, grouping
    /// same-leaf entries so that `k` inserts landing in one leaf pay a
    /// single root-to-leaf descent and dirty a single page instead of `k`.
    ///
    /// # Panics
    /// Panics on an injected fault (see [`BPlusTree::try_insert_batch`]),
    /// and in debug builds if the entries are not sorted.
    pub fn insert_batch(&mut self, entries: &[(K, V)]) {
        self.try_insert_batch(entries).expect(INFALLIBLE);
    }

    /// Inserts a batch of entries **sorted lexicographically**.
    ///
    /// Entries are routed down the tree in sorted groups: each branch page
    /// on the combined root-to-leaf paths is read once, and each touched
    /// leaf is written once. An overfull leaf is split into
    /// `ceil(total / leaf_cap)` balanced chunks (every chunk within
    /// `[min_leaf, leaf_cap]`), with sibling links threaded right-to-left
    /// so the chain stays exact; branches absorb the promoted separators
    /// the same way.
    ///
    /// The resulting tree holds the same entries as a sequential insert
    /// loop and satisfies the same invariants, but node boundaries may
    /// differ: multi-way splits balance chunks instead of halving one
    /// overfull node at a time.
    ///
    /// # Errors
    /// Propagates the first unrecovered storage fault; splits already
    /// performed are not rolled back (see [`BPlusTree::try_insert`]).
    ///
    /// # Panics
    /// Panics in debug builds if the entries are not sorted.
    pub fn try_insert_batch(&mut self, entries: &[(K, V)]) -> Result<(), PagerError> {
        debug_assert!(
            entries
                .windows(2)
                .all(|w| cmp_entry(&w[0], &w[1]) != Ordering::Greater),
            "insert_batch requires sorted entries"
        );
        if entries.is_empty() {
            return Ok(());
        }
        let mut promoted = self.try_insert_batch_rec(self.root, self.height, entries)?;
        // Absorb promoted siblings into new root levels until one node
        // can hold them all.
        while !promoted.is_empty() {
            let branch_cap = self.cfg.branch_cap;
            let mut seps = Vec::with_capacity(promoted.len());
            let mut children = Vec::with_capacity(promoted.len() + 1);
            children.push(self.root);
            for (sep, pid) in promoted {
                seps.push(sep);
                children.push(pid);
            }
            if children.len() <= branch_cap {
                self.root = self.store.try_allocate(Node::Branch { seps, children })?;
                self.height += 1;
                promoted = Vec::new();
            } else {
                let sizes = Self::chunk_sizes(children.len(), branch_cap);
                let mut next_level = Vec::with_capacity(sizes.len() - 1);
                let mut first = None;
                let mut pos = 0usize;
                for (j, &count) in sizes.iter().enumerate() {
                    let node = Node::Branch {
                        seps: seps[pos..pos + count - 1].to_vec(),
                        children: children[pos..pos + count].to_vec(),
                    };
                    let pid = self.store.try_allocate(node)?;
                    if j == 0 {
                        first = Some(pid);
                    } else {
                        next_level.push((seps[pos - 1], pid));
                    }
                    pos += count;
                }
                self.root = first.expect("multi-split yields at least one chunk");
                self.height += 1;
                promoted = next_level;
            }
        }
        self.repin()?;
        self.len += entries.len();
        Ok(())
    }

    /// Applies sorted removals followed by sorted insertions.
    ///
    /// Removals stay per-entry (delete rebalancing is inherently
    /// page-at-a-time) but benefit from sorted order through buffer hits
    /// on shared root-to-leaf paths; insertions go through the grouped
    /// [`BPlusTree::insert_batch`] path. Returns how many removals found
    /// their entry.
    ///
    /// # Panics
    /// Panics on an injected fault (see [`BPlusTree::try_apply_batch`]),
    /// and in debug builds if either slice is not sorted.
    pub fn apply_batch(&mut self, removes: &[(K, V)], inserts: &[(K, V)]) -> usize {
        self.try_apply_batch(removes, inserts).expect(INFALLIBLE)
    }

    /// Applies sorted removals followed by sorted insertions.
    ///
    /// # Errors
    /// Propagates the first unrecovered storage fault; operations already
    /// applied are not rolled back (see [`BPlusTree::try_insert`]).
    ///
    /// # Panics
    /// Panics in debug builds if either slice is not sorted.
    pub fn try_apply_batch(
        &mut self,
        removes: &[(K, V)],
        inserts: &[(K, V)],
    ) -> Result<usize, PagerError> {
        debug_assert!(
            removes
                .windows(2)
                .all(|w| cmp_entry(&w[0], &w[1]) != Ordering::Greater),
            "apply_batch requires sorted removals"
        );
        let mut removed = 0usize;
        for &(k, v) in removes {
            if self.try_remove(k, v)? {
                removed += 1;
            }
        }
        self.try_insert_batch(inserts)?;
        Ok(removed)
    }

    /// Removes the entry `(key, value)`. Returns `true` if it was present.
    ///
    /// # Panics
    /// Panics on an injected fault; see [`BPlusTree::try_remove`].
    pub fn remove(&mut self, key: K, value: V) -> bool {
        self.try_remove(key, value).expect(INFALLIBLE)
    }

    /// Removes the entry `(key, value)`. Returns `Ok(true)` if it was
    /// present.
    ///
    /// # Errors
    /// Propagates the first unrecovered storage fault; rebalancing
    /// already performed is not rolled back (see [`BPlusTree::try_insert`]).
    pub fn try_remove(&mut self, key: K, value: V) -> Result<bool, PagerError> {
        let (removed, _) = self.try_remove_rec(self.root, self.height, &(key, value))?;
        if removed {
            self.len -= 1;
        }
        // Collapse a root branch that lost all but one child.
        while self.height > 1 {
            let only = match self.store.try_read(self.root)? {
                Node::Branch { children, .. } if children.len() == 1 => Some(children[0]),
                _ => None,
            };
            match only {
                Some(child) => {
                    let _ = self.store.try_free(self.root)?;
                    self.root = child;
                    self.height -= 1;
                    self.repin()?;
                }
                None => break,
            }
        }
        Ok(removed)
    }

    /// Reports every value whose key lies in `[lo, hi]`, in key order.
    ///
    /// # Panics
    /// Panics on an injected fault; see [`BPlusTree::try_range`].
    pub fn range(&mut self, lo: K, hi: K) -> Vec<(K, V)> {
        self.try_range(lo, hi).expect(INFALLIBLE)
    }

    /// Reports every value whose key lies in `[lo, hi]`, in key order.
    ///
    /// # Errors
    /// Propagates the first unrecovered read fault; the scan stops there.
    pub fn try_range(&mut self, lo: K, hi: K) -> Result<Vec<(K, V)>, PagerError> {
        let mut out = Vec::new();
        self.try_range_for_each(lo, hi, |k, v| out.push((k, v)))?;
        Ok(out)
    }

    /// Visits every entry with key in `[lo, hi]`, in key order.
    ///
    /// # Panics
    /// Panics on an injected fault; see [`BPlusTree::try_range_for_each`].
    pub fn range_for_each(&mut self, lo: K, hi: K, visit: impl FnMut(K, V)) {
        self.try_range_for_each(lo, hi, visit).expect(INFALLIBLE);
    }

    /// Visits every entry with key in `[lo, hi]`, in key order.
    ///
    /// # Errors
    /// Propagates the first unrecovered read fault; entries already
    /// visited stay visited.
    pub fn try_range_for_each(
        &mut self,
        lo: K,
        hi: K,
        mut visit: impl FnMut(K, V),
    ) -> Result<(), PagerError> {
        if cmp_key(&lo, &hi) == Ordering::Greater {
            return Ok(());
        }
        // Descend to the leftmost leaf that can contain `lo`.
        let mut node = self.root;
        for _ in 1..self.height {
            node = match self.store.try_read(node)? {
                Node::Branch { seps, children } => {
                    let idx = seps.partition_point(|s| cmp_key(&s.0, &lo) == Ordering::Less);
                    children[idx]
                }
                Node::Leaf { .. } => unreachable!("leaf above leaf level"),
            };
        }
        // Scan the leaf chain.
        let mut current = Some(node);
        while let Some(leaf) = current {
            let (entries, next) = match self.store.try_read(leaf)? {
                Node::Leaf { entries, next } => (entries.clone(), *next),
                Node::Branch { .. } => unreachable!("branch at leaf level"),
            };
            for (k, v) in entries {
                match cmp_key(&k, &hi) {
                    Ordering::Greater => return Ok(()),
                    _ => {
                        if cmp_key(&k, &lo) != Ordering::Less {
                            visit(k, v);
                        }
                    }
                }
            }
            current = next;
        }
        Ok(())
    }

    /// Publishes an immutable snapshot of the tree.
    ///
    /// The snapshot shares pages with the live tree (the page store holds
    /// pages behind `Arc`); publication is O(live slots) pointer bumps,
    /// and only pages the live tree dirties *after* the freeze are
    /// content-copied (copy-on-write). Snapshot reads go straight to the
    /// frozen pages — no buffer pool, no I/O accounting, no faults — so
    /// a [`FrozenTree`] can be queried through `&self` from any thread.
    #[must_use]
    pub fn freeze(&self) -> FrozenTree<K, V> {
        FrozenTree {
            pages: self.store.freeze(),
            root: self.root,
            height: self.height,
            len: self.len,
        }
    }

    /// Whether the exact entry `(key, value)` is present.
    ///
    /// # Panics
    /// Panics on an injected fault; see [`BPlusTree::try_contains`].
    pub fn contains(&mut self, key: K, value: V) -> bool {
        self.try_contains(key, value).expect(INFALLIBLE)
    }

    /// Whether the exact entry `(key, value)` is present.
    ///
    /// # Errors
    /// Propagates the first unrecovered read fault.
    pub fn try_contains(&mut self, key: K, value: V) -> Result<bool, PagerError> {
        let e = (key, value);
        let mut node = self.root;
        for _ in 1..self.height {
            node = match self.store.try_read(node)? {
                Node::Branch { seps, children } => {
                    let idx = Self::route(seps, &e);
                    children[idx]
                }
                Node::Leaf { .. } => unreachable!(),
            };
        }
        Ok(match self.store.try_read(node)? {
            Node::Leaf { entries, .. } => entries.binary_search_by(|x| cmp_entry(x, &e)).is_ok(),
            Node::Branch { .. } => unreachable!(),
        })
    }

    /// Builds a tree from entries **sorted lexicographically**, packing
    /// nodes to `fill × capacity` (clamped to `[0.1, 1.0]`).
    ///
    /// # Panics
    /// Panics (debug builds) if the entries are not sorted.
    #[must_use]
    pub fn bulk_load(cfg: TreeConfig, entries: &[(K, V)], fill: f64) -> Self {
        debug_assert!(
            entries
                .windows(2)
                .all(|w| cmp_entry(&w[0], &w[1]) != Ordering::Greater),
            "bulk_load requires sorted entries"
        );
        let fill = fill.clamp(0.1, 1.0);
        let mut tree = Self::new(cfg);
        if entries.is_empty() {
            return tree;
        }
        tree.len = entries.len();

        // Level 0: leaves.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let per_leaf = ((cfg.leaf_cap as f64 * fill) as usize).clamp(1, cfg.leaf_cap);
        let mut level: Vec<((K, V), PageId)> = Vec::new();
        let mut prev_leaf: Option<PageId> = None;
        for chunk in entries.chunks(per_leaf) {
            let pid = tree.store.allocate(Node::Leaf {
                entries: chunk.to_vec(),
                next: None,
            });
            if let Some(prev) = prev_leaf {
                tree.store.write(prev, |n| {
                    if let Node::Leaf { next, .. } = n {
                        *next = Some(pid);
                    }
                });
            }
            prev_leaf = Some(pid);
            level.push((chunk[0], pid));
        }
        // Reuse the pre-allocated empty root as the first leaf? Simpler to
        // free it and re-point the root.
        let _ = tree.store.free(tree.root);

        // Upper levels.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let per_branch = ((cfg.branch_cap as f64 * fill) as usize).clamp(2, cfg.branch_cap);
        let mut height = 1;
        while level.len() > 1 {
            let mut upper: Vec<((K, V), PageId)> = Vec::new();
            for group in level.chunks(per_branch) {
                let seps: Vec<(K, V)> = group[1..].iter().map(|(min, _)| *min).collect();
                let children: Vec<PageId> = group.iter().map(|&(_, pid)| pid).collect();
                let pid = tree.store.allocate(Node::Branch { seps, children });
                upper.push((group[0].0, pid));
            }
            level = upper;
            height += 1;
        }
        tree.root = level[0].1;
        tree.height = height;
        tree
    }

    /// All entries in order (uncounted access; for tests and audits).
    #[must_use]
    pub fn collect_all(&self) -> Vec<(K, V)> {
        let mut node = self.root;
        for _ in 1..self.height {
            node = match self.store.peek(node) {
                Node::Branch { children, .. } => children[0],
                Node::Leaf { .. } => unreachable!(),
            };
        }
        let mut out = Vec::with_capacity(self.len);
        let mut current = Some(node);
        while let Some(leaf) = current {
            match self.store.peek(leaf) {
                Node::Leaf { entries, next } => {
                    out.extend_from_slice(entries);
                    current = *next;
                }
                Node::Branch { .. } => unreachable!(),
            }
        }
        out
    }

    /// Verifies structural invariants (uncounted access):
    /// * uniform leaf depth equal to `height`;
    /// * entries/separators sorted, and every subtree within the key
    ///   interval its separators promise;
    /// * node occupancies within `[min, cap]` (`min` only when
    ///   `strict_occupancy`, and never for the root);
    /// * the leaf chain visits exactly the tree's entries in order;
    /// * `len` equals the number of entries.
    ///
    /// # Panics
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self, strict_occupancy: bool) {
        let mut leaf_count = 0usize;
        self.check_rec(
            self.root,
            self.height,
            None,
            None,
            strict_occupancy,
            true,
            &mut leaf_count,
        );
        assert_eq!(leaf_count, self.len, "len does not match leaf contents");
        // The chain must visit all entries in order.
        let chained = self.collect_all();
        assert_eq!(chained.len(), self.len, "leaf chain misses entries");
        assert!(
            chained
                .windows(2)
                .all(|w| cmp_entry(&w[0], &w[1]) != Ordering::Greater),
            "leaf chain out of order"
        );
        self.check_leaf_links();
    }

    /// Verifies the leaf sibling links (uncounted access): starting from
    /// the leftmost leaf, the `next` chain visits exactly the tree's
    /// leaves in in-order sequence and terminates at `None` — splits,
    /// merges, and underflow fixes must never leave a dangling, skipped,
    /// or cyclic link.
    ///
    /// # Panics
    /// Panics with a description of the first violated link.
    pub fn check_leaf_links(&self) {
        let mut by_tree = Vec::new();
        self.leaf_ids_rec(self.root, self.height, &mut by_tree);
        let mut by_chain = Vec::new();
        let mut current = Some(by_tree[0]);
        while let Some(leaf) = current {
            assert!(
                by_chain.len() < by_tree.len(),
                "leaf chain visits more pages than the tree has leaves \
                 (cycle or dangling link)"
            );
            by_chain.push(leaf);
            current = match self.store.peek(leaf) {
                Node::Leaf { next, .. } => *next,
                Node::Branch { .. } => panic!("leaf chain links to a branch page"),
            };
        }
        assert_eq!(
            by_chain, by_tree,
            "leaf chain does not match the in-order leaf sequence"
        );
    }

    /// Collects leaf page ids by in-order tree descent (uncounted).
    fn leaf_ids_rec(&self, node: PageId, level: usize, out: &mut Vec<PageId>) {
        if level == 1 {
            out.push(node);
            return;
        }
        match self.store.peek(node) {
            Node::Branch { children, .. } => {
                for &child in children {
                    self.leaf_ids_rec(child, level - 1, out);
                }
            }
            Node::Leaf { .. } => unreachable!("leaf above leaf level"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_rec(
        &self,
        node: PageId,
        level: usize,
        lower: Option<&(K, V)>,
        upper: Option<&(K, V)>,
        strict: bool,
        is_root: bool,
        leaf_count: &mut usize,
    ) {
        let within = |e: &(K, V)| {
            if let Some(lo) = lower {
                assert!(
                    cmp_entry(e, lo) != Ordering::Less,
                    "entry {e:?} below lower bound {lo:?}"
                );
            }
            if let Some(hi) = upper {
                assert!(
                    cmp_entry(e, hi) == Ordering::Less,
                    "entry {e:?} not below upper bound {hi:?}"
                );
            }
        };
        match self.store.peek(node) {
            Node::Leaf { entries, .. } => {
                assert_eq!(level, 1, "leaf at wrong depth");
                assert!(entries.len() <= self.cfg.leaf_cap, "overfull leaf");
                if strict && !is_root {
                    assert!(
                        entries.len() >= self.cfg.min_leaf(),
                        "underfull leaf: {} < {}",
                        entries.len(),
                        self.cfg.min_leaf()
                    );
                }
                assert!(
                    entries
                        .windows(2)
                        .all(|w| cmp_entry(&w[0], &w[1]) != Ordering::Greater),
                    "unsorted leaf"
                );
                for e in entries {
                    within(e);
                }
                *leaf_count += entries.len();
            }
            Node::Branch { seps, children } => {
                assert!(level > 1, "branch at leaf depth");
                assert_eq!(seps.len() + 1, children.len(), "separator/child mismatch");
                assert!(children.len() <= self.cfg.branch_cap, "overfull branch");
                if strict && !is_root {
                    assert!(
                        children.len() >= self.cfg.min_branch(),
                        "underfull branch: {} < {}",
                        children.len(),
                        self.cfg.min_branch()
                    );
                }
                assert!(
                    seps.windows(2)
                        .all(|w| cmp_entry(&w[0], &w[1]) == Ordering::Less),
                    "unsorted separators"
                );
                for s in seps {
                    within(s);
                }
                for (i, &child) in children.iter().enumerate() {
                    let lo = if i == 0 { lower } else { Some(&seps[i - 1]) };
                    let hi = if i == seps.len() {
                        upper
                    } else {
                        Some(&seps[i])
                    };
                    self.check_rec(child, level - 1, lo, hi, strict, false, leaf_count);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Insert internals
    // ------------------------------------------------------------------

    /// Routes entry `e` in a branch: first child whose subtree can hold it.
    fn route(seps: &[(K, V)], e: &(K, V)) -> usize {
        seps.partition_point(|s| cmp_entry(s, e) != Ordering::Greater)
    }

    #[allow(clippy::type_complexity)]
    fn try_insert_rec(
        &mut self,
        node: PageId,
        level: usize,
        e: (K, V),
    ) -> Result<Option<((K, V), PageId)>, PagerError> {
        if level == 1 {
            let overflow = self.store.try_write(node, |n| match n {
                Node::Leaf { entries, .. } => {
                    let pos = entries.partition_point(|x| cmp_entry(x, &e) != Ordering::Greater);
                    entries.insert(pos, e);
                    entries.len()
                }
                Node::Branch { .. } => unreachable!("branch at leaf level"),
            })? > self.cfg.leaf_cap;
            return if overflow {
                self.try_split_leaf(node).map(Some)
            } else {
                Ok(None)
            };
        }
        let (idx, child) = match self.store.try_read(node)? {
            Node::Branch { seps, children } => {
                let idx = Self::route(seps, &e);
                (idx, children[idx])
            }
            Node::Leaf { .. } => unreachable!("leaf above leaf level"),
        };
        let Some((sep, right)) = self.try_insert_rec(child, level - 1, e)? else {
            return Ok(None);
        };
        let overflow = self.store.try_write(node, |n| match n {
            Node::Branch { seps, children } => {
                seps.insert(idx, sep);
                children.insert(idx + 1, right);
                children.len()
            }
            Node::Leaf { .. } => unreachable!(),
        })? > self.cfg.branch_cap;
        if overflow {
            self.try_split_branch(node).map(Some)
        } else {
            Ok(None)
        }
    }

    fn try_split_leaf(&mut self, left: PageId) -> Result<((K, V), PageId), PagerError> {
        let (right_entries, old_next) = self.store.try_write(left, |n| match n {
            Node::Leaf { entries, next } => {
                let mid = entries.len() / 2;
                (entries.split_off(mid), *next)
            }
            Node::Branch { .. } => unreachable!(),
        })?;
        let sep = right_entries[0];
        let right = self.store.try_allocate(Node::Leaf {
            entries: right_entries,
            next: old_next,
        })?;
        self.store.try_write(left, |n| {
            if let Node::Leaf { next, .. } = n {
                *next = Some(right);
            }
        })?;
        Ok((sep, right))
    }

    fn try_split_branch(&mut self, left: PageId) -> Result<((K, V), PageId), PagerError> {
        let (sep, right_seps, right_children) = self.store.try_write(left, |n| match n {
            Node::Branch { seps, children } => {
                let keep = children.len() / 2; // children kept on the left
                let right_children = children.split_off(keep);
                let mut right_seps = seps.split_off(keep - 1);
                let sep = right_seps.remove(0);
                (sep, right_seps, right_children)
            }
            Node::Leaf { .. } => unreachable!(),
        })?;
        let right = self.store.try_allocate(Node::Branch {
            seps: right_seps,
            children: right_children,
        })?;
        Ok((sep, right))
    }

    // ------------------------------------------------------------------
    // Batch-insert internals
    // ------------------------------------------------------------------

    /// Balanced chunk sizes for `total` items split into
    /// `ceil(total / cap)` chunks. Every size is `floor` or `ceil` of the
    /// average, which for `total > cap` provably lies within
    /// `[cap / 2, cap]` — so multi-split nodes always satisfy the
    /// occupancy invariants.
    fn chunk_sizes(total: usize, cap: usize) -> Vec<usize> {
        let num = total.div_ceil(cap);
        let base = total / num;
        let rem = total % num;
        (0..num).map(|i| base + usize::from(i < rem)).collect()
    }

    /// Inserts a sorted batch under `node`, returning the promoted
    /// `(separator, right-sibling)` pairs if the node had to split
    /// (possibly several on one level, unlike the single-entry path).
    #[allow(clippy::type_complexity)]
    fn try_insert_batch_rec(
        &mut self,
        node: PageId,
        level: usize,
        batch: &[(K, V)],
    ) -> Result<Vec<((K, V), PageId)>, PagerError> {
        if level == 1 {
            return self.try_insert_batch_leaf(node, batch);
        }
        let (seps, children) = match self.store.try_read(node)? {
            Node::Branch { seps, children } => (seps.clone(), children.clone()),
            Node::Leaf { .. } => unreachable!("leaf above leaf level"),
        };
        // Partition the sorted batch into the contiguous run routed to
        // each child (entries equal to a separator go right, as in
        // `route`), and recurse per non-empty group.
        let mut spliced: Vec<(usize, Vec<((K, V), PageId)>)> = Vec::new();
        let mut start = 0usize;
        for (i, &child) in children.iter().enumerate() {
            let end = if i < seps.len() {
                start + batch[start..].partition_point(|e| cmp_entry(e, &seps[i]) == Ordering::Less)
            } else {
                batch.len()
            };
            if end > start {
                let promoted = self.try_insert_batch_rec(child, level - 1, &batch[start..end])?;
                if !promoted.is_empty() {
                    spliced.push((i, promoted));
                }
            }
            start = end;
        }
        if spliced.is_empty() {
            return Ok(Vec::new());
        }
        // Splice every child's promoted siblings in with one write; on
        // overflow keep the first balanced chunk here and hand the rest
        // back for allocation.
        let branch_cap = self.cfg.branch_cap;
        let tail = self.store.try_write(node, move |n| match n {
            Node::Branch { seps, children } => {
                let extra: usize = spliced.iter().map(|(_, p)| p.len()).sum();
                let mut new_seps = Vec::with_capacity(seps.len() + extra);
                let mut new_children = Vec::with_capacity(children.len() + extra);
                let mut si = 0usize;
                for (i, &child) in children.iter().enumerate() {
                    if i > 0 {
                        new_seps.push(seps[i - 1]);
                    }
                    new_children.push(child);
                    if si < spliced.len() && spliced[si].0 == i {
                        for &(sep, pid) in &spliced[si].1 {
                            new_seps.push(sep);
                            new_children.push(pid);
                        }
                        si += 1;
                    }
                }
                if new_children.len() <= branch_cap {
                    *seps = new_seps;
                    *children = new_children;
                    return Vec::new();
                }
                let sizes = Self::chunk_sizes(new_children.len(), branch_cap);
                *seps = new_seps[..sizes[0] - 1].to_vec();
                *children = new_children[..sizes[0]].to_vec();
                let mut tail = Vec::with_capacity(sizes.len() - 1);
                let mut pos = sizes[0];
                for &count in &sizes[1..] {
                    tail.push((
                        new_seps[pos - 1],
                        new_seps[pos..pos + count - 1].to_vec(),
                        new_children[pos..pos + count].to_vec(),
                    ));
                    pos += count;
                }
                tail
            }
            Node::Leaf { .. } => unreachable!(),
        })?;
        let mut promoted = Vec::with_capacity(tail.len());
        for (sep, chunk_seps, chunk_children) in tail {
            let pid = self.store.try_allocate(Node::Branch {
                seps: chunk_seps,
                children: chunk_children,
            })?;
            promoted.push((sep, pid));
        }
        Ok(promoted)
    }

    /// Merges a sorted batch into one leaf. Without overflow this costs a
    /// single fault-in and a single dirty page regardless of the batch
    /// size; with overflow the merged run is cut into balanced chunks and
    /// the new right siblings are allocated right-to-left so the sibling
    /// chain threads through them exactly once.
    #[allow(clippy::type_complexity)]
    fn try_insert_batch_leaf(
        &mut self,
        node: PageId,
        batch: &[(K, V)],
    ) -> Result<Vec<((K, V), PageId)>, PagerError> {
        let (existing, old_next) = match self.store.try_read(node)? {
            Node::Leaf { entries, next } => (entries.clone(), *next),
            Node::Branch { .. } => unreachable!("branch at leaf level"),
        };
        // Merge the two sorted runs; existing entries win ties so the
        // result matches sequential insertion order.
        let mut merged = Vec::with_capacity(existing.len() + batch.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < existing.len() && j < batch.len() {
            if cmp_entry(&batch[j], &existing[i]) == Ordering::Less {
                merged.push(batch[j]);
                j += 1;
            } else {
                merged.push(existing[i]);
                i += 1;
            }
        }
        merged.extend_from_slice(&existing[i..]);
        merged.extend_from_slice(&batch[j..]);

        if merged.len() <= self.cfg.leaf_cap {
            self.store.try_write(node, move |n| match n {
                Node::Leaf { entries, .. } => *entries = merged,
                Node::Branch { .. } => unreachable!(),
            })?;
            return Ok(Vec::new());
        }
        let sizes = Self::chunk_sizes(merged.len(), self.cfg.leaf_cap);
        let mut next_link = old_next;
        let mut promoted = Vec::with_capacity(sizes.len() - 1);
        let mut end = merged.len();
        for &count in sizes[1..].iter().rev() {
            let chunk = merged[end - count..end].to_vec();
            end -= count;
            let sep = chunk[0];
            let pid = self.store.try_allocate(Node::Leaf {
                entries: chunk,
                next: next_link,
            })?;
            next_link = Some(pid);
            promoted.push((sep, pid));
        }
        promoted.reverse();
        merged.truncate(sizes[0]);
        self.store.try_write(node, move |n| match n {
            Node::Leaf { entries, next } => {
                *entries = merged;
                *next = next_link;
            }
            Node::Branch { .. } => unreachable!(),
        })?;
        Ok(promoted)
    }

    // ------------------------------------------------------------------
    // Delete internals
    // ------------------------------------------------------------------

    fn try_remove_rec(
        &mut self,
        node: PageId,
        level: usize,
        e: &(K, V),
    ) -> Result<(bool, bool), PagerError> {
        if level == 1 {
            let (removed, occ) = self.store.try_write(node, |n| match n {
                Node::Leaf { entries, .. } => match entries.binary_search_by(|x| cmp_entry(x, e)) {
                    Ok(pos) => {
                        entries.remove(pos);
                        (true, entries.len())
                    }
                    Err(_) => (false, entries.len()),
                },
                Node::Branch { .. } => unreachable!(),
            })?;
            return Ok((removed, occ < self.cfg.min_leaf()));
        }
        let (idx, child) = match self.store.try_read(node)? {
            Node::Branch { seps, children } => {
                let idx = Self::route(seps, e);
                (idx, children[idx])
            }
            Node::Leaf { .. } => unreachable!(),
        };
        let (removed, child_under) = self.try_remove_rec(child, level - 1, e)?;
        if !child_under {
            return Ok((removed, false));
        }
        let occ = self.try_fix_underflow(node, idx, level)?;
        Ok((removed, occ < self.cfg.min_branch()))
    }

    /// Restores the occupancy of `children[idx]` of branch `parent` by
    /// borrowing from or merging with an adjacent sibling. Returns the
    /// parent's resulting child count.
    fn try_fix_underflow(
        &mut self,
        parent: PageId,
        idx: usize,
        level: usize,
    ) -> Result<usize, PagerError> {
        let leaf_children = level == 2;
        let (child, left_sib, right_sib, child_count) = match self.store.try_read(parent)? {
            Node::Branch { children, .. } => (
                children[idx],
                (idx > 0).then(|| children[idx - 1]),
                (idx + 1 < children.len()).then(|| children[idx + 1]),
                children.len(),
            ),
            Node::Leaf { .. } => unreachable!(),
        };
        let min = if leaf_children {
            self.cfg.min_leaf()
        } else {
            self.cfg.min_branch()
        };

        // Try borrowing from the left sibling.
        if let Some(left) = left_sib {
            if self.store.try_read(left)?.occupancy() > min {
                self.try_borrow_from_left(parent, idx, left, child, leaf_children)?;
                return Ok(child_count);
            }
        }
        // Try borrowing from the right sibling.
        if let Some(right) = right_sib {
            if self.store.try_read(right)?.occupancy() > min {
                self.try_borrow_from_right(parent, idx, child, right, leaf_children)?;
                return Ok(child_count);
            }
        }
        // Merge: absorb the right node of an adjacent pair into the left.
        let (lhs, rhs, sep_idx) = if let Some(left) = left_sib {
            (left, child, idx - 1)
        } else if let Some(right) = right_sib {
            (child, right, idx)
        } else {
            // Root with a single child; handled by the caller's collapse.
            return Ok(child_count);
        };
        self.try_merge(parent, lhs, rhs, sep_idx)?;
        Ok(child_count - 1)
    }

    fn try_borrow_from_left(
        &mut self,
        parent: PageId,
        idx: usize,
        left: PageId,
        child: PageId,
        leaf_children: bool,
    ) -> Result<(), PagerError> {
        if leaf_children {
            let moved = self.store.try_write(left, |n| match n {
                Node::Leaf { entries, .. } => entries.pop().expect("borrow from empty leaf"),
                Node::Branch { .. } => unreachable!(),
            })?;
            self.store.try_write(child, |n| {
                if let Node::Leaf { entries, .. } = n {
                    entries.insert(0, moved);
                }
            })?;
            self.store.try_write(parent, |n| {
                if let Node::Branch { seps, .. } = n {
                    seps[idx - 1] = moved;
                }
            })?;
        } else {
            let (moved_child, new_sep) = self.store.try_write(left, |n| match n {
                Node::Branch { seps, children } => (
                    children.pop().expect("borrow from empty branch"),
                    seps.pop().expect("borrow from empty branch"),
                ),
                Node::Leaf { .. } => unreachable!(),
            })?;
            let old_sep = match self.store.try_read(parent)? {
                Node::Branch { seps, .. } => seps[idx - 1],
                Node::Leaf { .. } => unreachable!(),
            };
            self.store.try_write(child, |n| {
                if let Node::Branch { seps, children } = n {
                    seps.insert(0, old_sep);
                    children.insert(0, moved_child);
                }
            })?;
            self.store.try_write(parent, |n| {
                if let Node::Branch { seps, .. } = n {
                    seps[idx - 1] = new_sep;
                }
            })?;
        }
        Ok(())
    }

    fn try_borrow_from_right(
        &mut self,
        parent: PageId,
        idx: usize,
        child: PageId,
        right: PageId,
        leaf_children: bool,
    ) -> Result<(), PagerError> {
        if leaf_children {
            let (moved, new_first) = self.store.try_write(right, |n| match n {
                Node::Leaf { entries, .. } => {
                    let moved = entries.remove(0);
                    (moved, entries[0])
                }
                Node::Branch { .. } => unreachable!(),
            })?;
            self.store.try_write(child, |n| {
                if let Node::Leaf { entries, .. } = n {
                    entries.push(moved);
                }
            })?;
            self.store.try_write(parent, |n| {
                if let Node::Branch { seps, .. } = n {
                    seps[idx] = new_first;
                }
            })?;
        } else {
            let (moved_child, new_sep) = self.store.try_write(right, |n| match n {
                Node::Branch { seps, children } => (children.remove(0), seps.remove(0)),
                Node::Leaf { .. } => unreachable!(),
            })?;
            let old_sep = match self.store.try_read(parent)? {
                Node::Branch { seps, .. } => seps[idx],
                Node::Leaf { .. } => unreachable!(),
            };
            self.store.try_write(child, |n| {
                if let Node::Branch { seps, children } = n {
                    seps.push(old_sep);
                    children.push(moved_child);
                }
            })?;
            self.store.try_write(parent, |n| {
                if let Node::Branch { seps, .. } = n {
                    seps[idx] = new_sep;
                }
            })?;
        }
        Ok(())
    }

    /// Absorbs `rhs` into `lhs` (adjacent children of `parent`, with
    /// `seps[sep_idx]` between them) and frees `rhs`.
    fn try_merge(
        &mut self,
        parent: PageId,
        lhs: PageId,
        rhs: PageId,
        sep_idx: usize,
    ) -> Result<(), PagerError> {
        let sep = match self.store.try_read(parent)? {
            Node::Branch { seps, .. } => seps[sep_idx],
            Node::Leaf { .. } => unreachable!(),
        };
        let rhs_node = self.store.try_read(rhs)?.clone();
        let _ = self.store.try_free(rhs)?;
        match rhs_node {
            Node::Leaf { entries, next } => {
                self.store.try_write(lhs, |n| {
                    if let Node::Leaf {
                        entries: le,
                        next: ln,
                    } = n
                    {
                        le.extend(entries);
                        *ln = next;
                    }
                })?;
            }
            Node::Branch { seps, children } => {
                self.store.try_write(lhs, |n| {
                    if let Node::Branch {
                        seps: ls,
                        children: lc,
                    } = n
                    {
                        ls.push(sep);
                        ls.extend(seps);
                        lc.extend(children);
                    }
                })?;
            }
        }
        self.store.try_write(parent, |n| {
            if let Node::Branch { seps, children } = n {
                seps.remove(sep_idx);
                children.remove(sep_idx + 1);
            }
        })?;
        Ok(())
    }
}

/// An immutable snapshot of a [`BPlusTree`], published by
/// [`BPlusTree::freeze`].
///
/// Holds the frozen page table by `Arc`, so it is cheap to clone, is
/// `Send + Sync`, and stays valid after the live tree mutates (the live
/// tree copies pages on write) or is dropped entirely. Reads take
/// `&self`, bypass the buffer pool, and cannot fault — the external-
/// memory cost of a snapshot scan is reported to the caller as the
/// number of pages visited instead of through [`IoStats`].
#[derive(Debug, Clone)]
pub struct FrozenTree<K: Key, V: Copy + Ord + Debug> {
    pages: mobidx_pager::FrozenPages<Node<K, V>>,
    root: PageId,
    height: usize,
    len: usize,
}

impl<K: Key, V: Copy + Ord + Debug> FrozenTree<K, V> {
    /// Number of entries at freeze time.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads a frozen page; panics on a dangling id (structurally
    /// impossible for ids reached from the frozen root).
    fn page(&self, id: PageId) -> &Node<K, V> {
        self.pages.get(id).expect("frozen page missing")
    }

    /// Visits every entry with key in `[lo, hi]`, in key order, and
    /// returns the number of pages visited (the snapshot-read analogue
    /// of the query's I/O count).
    ///
    /// Mirrors [`BPlusTree::try_range_for_each`] exactly, but over the
    /// frozen pages: same descent, same leaf-chain walk, same inclusive
    /// bounds.
    pub fn range_for_each(&self, lo: K, hi: K, mut visit: impl FnMut(K, V)) -> u64 {
        if cmp_key(&lo, &hi) == Ordering::Greater {
            return 0;
        }
        let mut pages = 0u64;
        // Descend to the leftmost leaf that can contain `lo`.
        let mut node = self.root;
        for _ in 1..self.height {
            pages += 1;
            node = match self.page(node) {
                Node::Branch { seps, children } => {
                    let idx = seps.partition_point(|s| cmp_key(&s.0, &lo) == Ordering::Less);
                    children[idx]
                }
                Node::Leaf { .. } => unreachable!("leaf above leaf level"),
            };
        }
        // Scan the leaf chain.
        let mut current = Some(node);
        while let Some(leaf) = current {
            pages += 1;
            let (entries, next) = match self.page(leaf) {
                Node::Leaf { entries, next } => (entries, *next),
                Node::Branch { .. } => unreachable!("branch at leaf level"),
            };
            for (k, v) in entries {
                match cmp_key(k, &hi) {
                    Ordering::Greater => return pages,
                    _ => {
                        if cmp_key(k, &lo) != Ordering::Less {
                            visit(*k, *v);
                        }
                    }
                }
            }
            current = next;
        }
        pages
    }

    /// Reports every value whose key lies in `[lo, hi]`, in key order.
    #[must_use]
    pub fn range(&self, lo: K, hi: K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.range_for_each(lo, hi, |k, v| out.push((k, v)));
        out
    }
}

/// Durable trees: when keys and values are [`FixedCodec`] scalars the
/// nodes have a byte image, so the tree can sit on a durable backend
/// ([`mobidx_pager::FileBackend`]), seal commit windows into its
/// write-ahead log, and reopen from whatever the log proves committed.
impl<K: Key + FixedCodec, V: Copy + Ord + Debug + FixedCodec> BPlusTree<K, V> {
    /// Opens a tree over a durable backend from the image its
    /// recovery produced. An empty image yields an empty tree (root
    /// allocated, first commit window open); otherwise every recovered
    /// page is decoded and the tree shape (root, height, length) comes
    /// from the commit metadata of the last durable window.
    ///
    /// Returns `None` if a recovered page or the metadata fails to
    /// decode — which a CRC-checked log only produces when the file
    /// belongs to a different page type or configuration.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (capacities < 2), as
    /// [`BPlusTree::new`] does.
    #[must_use]
    pub fn open_durable(
        cfg: TreeConfig,
        backend: Box<dyn Backend>,
        image: &RecoveredImage,
    ) -> Option<Self> {
        assert!(cfg.leaf_cap >= 2, "leaf capacity must be at least 2");
        assert!(cfg.branch_cap >= 3, "branch capacity must be at least 3");
        let mut store = PageStore::open_recovered(cfg.buffer_pages, backend, image)?;
        if image.is_empty() {
            let root = store.try_allocate(Node::empty_leaf()).ok()?;
            return Some(Self {
                store,
                root,
                height: 1,
                len: 0,
                cfg,
                pin_root: false,
            });
        }
        let (root, height, len) = Self::decode_meta(&image.meta)?;
        // The recovered root must be a live page.
        image.pages.get(root.index() as usize)?.as_ref()?;
        Some(Self {
            store,
            root,
            height,
            len,
            cfg,
            pin_root: false,
        })
    }

    /// Whether the tree sits on a durable backend (commits reach a
    /// write-ahead log).
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.store.is_durable()
    }

    /// `(dirty pages, freed pages)` in the open commit window.
    #[must_use]
    pub fn pending_commit(&self) -> (usize, usize) {
        self.store.pending_commit()
    }

    /// Seals the current commit window: every node dirtied since the
    /// last commit, every freed page, and the tree shape (root, height,
    /// length) reach the write-ahead log under one group-commit fsync.
    /// No-op on non-durable backends.
    ///
    /// # Errors
    /// Propagates the first unabsorbed journal fault; the window is
    /// kept, so a later commit retries it in full (see
    /// [`PageStore::try_commit`]).
    pub fn try_commit(&mut self) -> Result<(), PagerError> {
        let meta = self.encode_meta();
        self.store.try_commit(&meta)
    }

    /// Writes a full checkpoint (every live node plus the tree shape)
    /// and truncates the write-ahead log. A checkpoint is itself a
    /// commit. No-op on non-durable backends.
    ///
    /// # Errors
    /// Propagates the backend's fault; a clean failure leaves the
    /// previous on-disk state intact (see [`PageStore::try_checkpoint`]).
    pub fn try_checkpoint(&mut self) -> Result<(), PagerError> {
        let meta = self.encode_meta();
        self.store.try_checkpoint(&meta)
    }

    /// Commit metadata: `[root: u32][height: u32][len: u64]`.
    fn encode_meta(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        put_u32(&mut out, self.root.index());
        put_u32(
            &mut out,
            u32::try_from(self.height).expect("height exceeds u32"),
        );
        put_u64(&mut out, self.len as u64);
        out
    }

    fn decode_meta(bytes: &[u8]) -> Option<(PageId, usize, usize)> {
        let mut r = ByteReader::new(bytes);
        let root = PageId::from_index(r.u32()?);
        let height = r.u32()? as usize;
        let len = usize::try_from(r.u64()?).ok()?;
        if !r.is_empty() || height == 0 {
            return None;
        }
        Some((root, height, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TreeConfig {
        TreeConfig {
            leaf_cap: 4,
            branch_cap: 4,
            buffer_pages: 4,
        }
    }

    #[test]
    fn insert_and_range() {
        let mut t: BPlusTree<f64, u64> = BPlusTree::new(small_cfg());
        for i in 0..100u64 {
            #[allow(clippy::cast_precision_loss)]
            t.insert((i % 10) as f64, i);
        }
        t.check_invariants(true);
        assert_eq!(t.len(), 100);
        let hits = t.range(3.0, 4.0);
        assert_eq!(hits.len(), 20);
        assert!(hits.iter().all(|&(k, _)| (3.0..=4.0).contains(&k)));
        // Results are in (key, value) order.
        assert!(hits.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_tree_behaviour() {
        let mut t: BPlusTree<f64, u64> = BPlusTree::new(small_cfg());
        assert!(t.is_empty());
        assert_eq!(t.range(0.0, 100.0), vec![]);
        assert!(!t.remove(1.0, 1));
        assert!(!t.contains(1.0, 1));
        t.check_invariants(true);
    }

    #[test]
    fn frozen_view_matches_live_and_survives_mutation() {
        let mut t: BPlusTree<f64, u64> = BPlusTree::new(small_cfg());
        for i in 0..100u64 {
            #[allow(clippy::cast_precision_loss)]
            t.insert((i % 10) as f64, i);
        }
        let snap = t.freeze();
        assert_eq!(snap.len(), 100);
        assert_eq!(snap.range(3.0, 4.0), t.range(3.0, 4.0));
        assert_eq!(snap.range(-1.0, 100.0), t.range(-1.0, 100.0));
        assert_eq!(snap.range(5.0, 4.0), vec![]);
        // Mutations after the freeze are invisible to the snapshot …
        for i in 100..300u64 {
            #[allow(clippy::cast_precision_loss)]
            t.insert((i % 10) as f64, i);
        }
        for v in 0..100u64 {
            #[allow(clippy::cast_precision_loss)]
            t.remove((v % 10) as f64, v);
        }
        t.check_invariants(true);
        let frozen: Vec<u64> = snap.range(0.0, 10.0).iter().map(|&(_, v)| v).collect();
        let mut expect: Vec<u64> = (0..100).collect();
        expect.sort_by_key(|&v| (v % 10, v));
        assert_eq!(frozen, expect);
        // … and a page-count is reported (root-to-leaf path + leaves).
        let mut pages = 0;
        let visited = snap.range_for_each(0.0, 10.0, |_, _| pages += 1);
        assert_eq!(pages, 100);
        assert!(visited > 1, "multi-level scan must touch several pages");
        // The snapshot outlives the tree.
        drop(t);
        assert_eq!(snap.range(3.0, 3.0).len(), 10);
    }

    #[test]
    fn inverted_range_is_empty() {
        let mut t: BPlusTree<f64, u64> = BPlusTree::new(small_cfg());
        t.insert(1.0, 1);
        assert_eq!(t.range(5.0, 4.0), vec![]);
    }

    #[test]
    fn remove_exact_entry_among_duplicate_keys() {
        let mut t: BPlusTree<f64, u64> = BPlusTree::new(small_cfg());
        for v in 0..50u64 {
            t.insert(7.0, v);
        }
        assert!(t.contains(7.0, 23));
        assert!(t.remove(7.0, 23));
        assert!(!t.contains(7.0, 23));
        assert!(!t.remove(7.0, 23), "double delete must fail");
        assert_eq!(t.len(), 49);
        t.check_invariants(true);
    }

    #[test]
    fn insert_delete_churn_keeps_invariants() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(small_cfg());
        // Insert 0..200, delete the evens, reinsert some.
        for i in 0..200u64 {
            t.insert(i / 3, i);
        }
        t.check_invariants(true);
        for i in (0..200u64).step_by(2) {
            assert!(t.remove(i / 3, i), "missing {i}");
            t.check_invariants(true);
        }
        assert_eq!(t.len(), 100);
        for i in (0..50u64).step_by(2) {
            t.insert(i / 3, i);
        }
        t.check_invariants(true);
        assert_eq!(t.len(), 125);
        let all = t.collect_all();
        assert_eq!(all.len(), 125);
    }

    #[test]
    fn delete_everything_collapses_to_empty_root() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(small_cfg());
        for i in 0..64u64 {
            t.insert(i, i);
        }
        assert!(t.height() > 1);
        for i in 0..64u64 {
            assert!(t.remove(i, i));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants(true);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let entries: Vec<(u64, u64)> = (0..500u64).map(|i| (i / 7, i)).collect();
        let t = BPlusTree::bulk_load(small_cfg(), &entries, 0.8);
        t.check_invariants(false);
        assert_eq!(t.len(), 500);
        assert_eq!(t.collect_all(), entries);
    }

    #[test]
    fn bulk_load_empty() {
        let t: BPlusTree<u64, u64> = BPlusTree::bulk_load(small_cfg(), &[], 0.8);
        assert!(t.is_empty());
        t.check_invariants(true);
    }

    #[test]
    fn bulk_loaded_tree_supports_updates() {
        let entries: Vec<(u64, u64)> = (0..300u64).map(|i| (i, i)).collect();
        let mut t = BPlusTree::bulk_load(small_cfg(), &entries, 0.6);
        for i in 0..300u64 {
            if i % 3 == 0 {
                assert!(t.remove(i, i));
            }
        }
        t.insert(1000, 1000);
        t.check_invariants(false);
        assert_eq!(t.len(), 201);
    }

    #[test]
    fn range_scan_costs_scale_with_output() {
        // With the buffer cleared, a range scan over many leaves must cost
        // ~height + leaves I/Os.
        let cfg = TreeConfig {
            leaf_cap: 8,
            branch_cap: 8,
            buffer_pages: 4,
        };
        let entries: Vec<(u64, u64)> = (0..1024u64).map(|i| (i, i)).collect();
        let mut t = BPlusTree::bulk_load(cfg, &entries, 1.0);
        t.clear_buffer();
        let snap = t.stats().snapshot();
        let hits = t.range(0, 1023);
        assert_eq!(hits.len(), 1024);
        let cost = t.stats().since(&snap);
        let leaves = 1024 / 8;
        // height-1 branch reads + all leaves.
        let expected = (t.height() as u64 - 1) + leaves as u64;
        assert_eq!(cost.reads, expected);
    }

    #[test]
    fn point_lookup_costs_height() {
        let entries: Vec<(u64, u64)> = (0..4096u64).map(|i| (i, i)).collect();
        let cfg = TreeConfig {
            leaf_cap: 16,
            branch_cap: 16,
            buffer_pages: 4,
        };
        let mut t = BPlusTree::bulk_load(cfg, &entries, 1.0);
        t.clear_buffer();
        let snap = t.stats().snapshot();
        assert!(t.contains(2048, 2048));
        let cost = t.stats().since(&snap);
        assert_eq!(cost.reads, t.height() as u64);
    }

    #[test]
    fn batch_insert_matches_sequential() {
        // Interleaved keys with heavy duplication, pushed in batches.
        let entries: Vec<(u64, u64)> = (0..400u64).map(|i| ((i * 7) % 50, i)).collect();
        let mut sorted = entries.clone();
        sorted.sort_unstable();

        let mut sequential: BPlusTree<u64, u64> = BPlusTree::new(small_cfg());
        for &(k, v) in &entries {
            sequential.insert(k, v);
        }
        let mut batched: BPlusTree<u64, u64> = BPlusTree::new(small_cfg());
        for chunk in sorted.chunks(37) {
            batched.insert_batch(chunk);
            batched.check_invariants(true);
        }
        assert_eq!(batched.len(), sequential.len());
        assert_eq!(batched.collect_all(), sequential.collect_all());
        assert_eq!(batched.range(3, 9), sequential.range(3, 9));
    }

    #[test]
    fn batch_insert_empty_and_single() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(small_cfg());
        t.insert_batch(&[]);
        assert!(t.is_empty());
        t.insert_batch(&[(5, 5)]);
        assert_eq!(t.len(), 1);
        assert!(t.contains(5, 5));
        t.check_invariants(true);
    }

    #[test]
    fn batch_insert_multi_split_from_empty_root() {
        // One batch far larger than a leaf forces a multi-way split of
        // the root leaf and possibly several new root levels at once.
        let sorted: Vec<(u64, u64)> = (0..1000u64).map(|i| (i, i)).collect();
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(small_cfg());
        t.insert_batch(&sorted);
        t.check_invariants(true);
        assert_eq!(t.len(), 1000);
        assert_eq!(t.collect_all(), sorted);
        assert!(t.height() > 2);
    }

    #[test]
    fn batch_insert_duplicate_entries_tolerated() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(small_cfg());
        t.insert_batch(&[(1, 1), (1, 1), (1, 1), (2, 2)]);
        t.check_invariants(true);
        assert_eq!(t.len(), 4);
        assert!(t.remove(1, 1));
        assert_eq!(t.len(), 3);
        t.check_invariants(true);
    }

    #[test]
    fn batch_insert_into_bulk_loaded_tree() {
        let base: Vec<(u64, u64)> = (0..512u64).map(|i| (i * 2, i)).collect();
        let mut t = BPlusTree::bulk_load(small_cfg(), &base, 0.9);
        let odds: Vec<(u64, u64)> = (0..512u64).map(|i| (i * 2 + 1, i)).collect();
        t.insert_batch(&odds);
        t.check_invariants(false);
        assert_eq!(t.len(), 1024);
        let all = t.collect_all();
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn same_leaf_batch_costs_one_descent_and_one_dirty_page() {
        // k entries that all land in one (non-overflowing) leaf must cost
        // exactly `height` cold reads and dirty exactly one page.
        let cfg = TreeConfig {
            leaf_cap: 32,
            branch_cap: 8,
            buffer_pages: 4,
        };
        let base: Vec<(u64, u64)> = (0..512u64).map(|i| (i * 100, i)).collect();
        let mut t = BPlusTree::bulk_load(cfg, &base, 0.5);
        t.clear_buffer();
        let snap = t.stats().snapshot();
        // Eight entries wedged between keys 1000 and 1100: one leaf.
        let batch: Vec<(u64, u64)> = (0..8u64).map(|i| (1001 + i, 9000 + i)).collect();
        t.insert_batch(&batch);
        t.clear_buffer();
        let cost = t.stats().since(&snap);
        assert_eq!(cost.reads, t.height() as u64, "one descent for the batch");
        assert_eq!(cost.writes, 1, "one dirty leaf written back");
        t.check_invariants(false);
    }

    #[test]
    fn apply_batch_removes_then_inserts() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(small_cfg());
        for i in 0..200u64 {
            t.insert(i, i);
        }
        let removes: Vec<(u64, u64)> = (0..100u64).map(|i| (i * 2, i * 2)).collect();
        let inserts: Vec<(u64, u64)> = (0..50u64).map(|i| (i * 4 + 1000, i)).collect();
        let removed = t.apply_batch(&removes, &inserts);
        assert_eq!(removed, 100);
        assert_eq!(t.len(), 150);
        t.check_invariants(true);
        // Removing an absent entry is counted as not found.
        assert_eq!(t.apply_batch(&[(9999, 9999)], &[]), 0);
    }

    #[test]
    fn leaf_links_checked_after_churn() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(small_cfg());
        let batch: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 60, i)).collect();
        let mut sorted = batch;
        sorted.sort_unstable();
        t.insert_batch(&sorted);
        t.check_leaf_links();
        for i in (0..300u64).step_by(3) {
            assert!(t.remove(i % 60, i));
            t.check_leaf_links();
        }
        t.check_invariants(true);
    }

    #[test]
    fn negative_and_fractional_keys() {
        let mut t: BPlusTree<f64, u64> = BPlusTree::new(small_cfg());
        t.insert(-3.5, 1);
        t.insert(-0.1, 2);
        t.insert(0.0, 3);
        t.insert(2.25, 4);
        let hits = t.range(-1.0, 1.0);
        assert_eq!(hits, vec![(-0.1, 2), (0.0, 3)]);
    }
}
