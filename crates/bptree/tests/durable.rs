//! Durable B+-tree round trips: commit windows against a real
//! [`FileBackend`], crash-and-reopen, and the invariant that a
//! recovered tree equals the last committed one.

use mobidx_bptree::{BPlusTree, TreeConfig};
use mobidx_pager::{DurableFaultStore, FaultPlan, FileBackend, FsyncPolicy};
use std::path::{Path, PathBuf};

fn small_cfg() -> TreeConfig {
    TreeConfig {
        leaf_cap: 4,
        branch_cap: 4,
        buffer_pages: 4,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mobidx-bptree-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_tree(dir: &Path) -> BPlusTree<u64, u64> {
    let (backend, image) = FileBackend::open(dir, FsyncPolicy::OnCommit).expect("open backend");
    BPlusTree::open_durable(small_cfg(), Box::new(backend), &image)
        .expect("recovered image must decode")
}

#[test]
fn committed_tree_survives_reopen() {
    let dir = tmp_dir("roundtrip");
    let expected;
    {
        let mut t = open_tree(&dir);
        assert!(t.is_durable());
        for i in 0..200u64 {
            t.insert((i * 7) % 50, i);
        }
        for i in (0..200u64).step_by(3) {
            assert!(t.remove((i * 7) % 50, i));
        }
        t.try_commit().unwrap();
        assert_eq!(t.pending_commit(), (0, 0));
        expected = t.collect_all();
    }
    let t = open_tree(&dir);
    t.check_invariants(true);
    assert_eq!(t.collect_all(), expected);
    assert_eq!(t.len(), expected.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn uncommitted_tree_changes_roll_back() {
    let dir = tmp_dir("rollback");
    let expected;
    {
        let mut t = open_tree(&dir);
        for i in 0..64u64 {
            t.insert(i, i);
        }
        t.try_commit().unwrap();
        expected = t.collect_all();
        // Never committed: lost on "crash" (drop).
        for i in 64..128u64 {
            t.insert(i, i);
        }
    }
    let t = open_tree(&dir);
    t.check_invariants(true);
    assert_eq!(t.collect_all(), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_compacts_and_recovers() {
    let dir = tmp_dir("checkpoint");
    let expected;
    {
        let mut t = open_tree(&dir);
        for round in 0..8u64 {
            for i in 0..32u64 {
                t.insert(round * 32 + i, i);
            }
            t.try_commit().unwrap();
        }
        for i in (0..256u64).step_by(2) {
            assert!(t.remove(i, i % 32));
        }
        t.try_checkpoint().unwrap();
        expected = t.collect_all();
        let wal = std::fs::metadata(dir.join(mobidx_pager::WAL_FILE))
            .unwrap()
            .len();
        assert_eq!(wal, 0, "checkpoint truncates the log");
    }
    let t = open_tree(&dir);
    t.check_invariants(true);
    assert_eq!(t.collect_all(), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_tree_keeps_growing_and_committing() {
    let dir = tmp_dir("regrow");
    {
        let mut t = open_tree(&dir);
        for i in 0..100u64 {
            t.insert(i, i);
        }
        t.try_commit().unwrap();
    }
    let expected;
    {
        let mut t = open_tree(&dir);
        for i in 100..200u64 {
            t.insert(i, i);
        }
        t.try_commit().unwrap();
        expected = t.collect_all();
    }
    let mut t = open_tree(&dir);
    t.check_invariants(true);
    assert_eq!(t.collect_all(), expected);
    assert_eq!(t.range(0, 199).len(), 200);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash at seeded write indices mid-commit; reopen must always yield
/// a structurally sound tree equal to a committed state.
#[test]
fn crash_mid_commit_recovers_a_committed_tree() {
    for crash_at in [1u64, 2, 3, 5, 8, 13, 21, 34] {
        let dir = tmp_dir(&format!("crash-{crash_at}"));
        let mut committed_states: Vec<Vec<(u64, u64)>> = vec![Vec::new()];
        {
            let (backend, image) = DurableFaultStore::open(
                &dir,
                FsyncPolicy::Never,
                FaultPlan::none(crash_at),
                FaultPlan::crash_after_writes(crash_at, crash_at),
            )
            .unwrap();
            let mut t: BPlusTree<u64, u64> =
                BPlusTree::open_durable(small_cfg(), Box::new(backend), &image).unwrap();
            'outer: for window in 0..6u64 {
                for i in 0..10u64 {
                    if t.try_insert(window * 10 + i, i).is_err() {
                        break 'outer;
                    }
                }
                let snapshot = t.collect_all();
                if t.try_commit().is_err() {
                    break 'outer;
                }
                committed_states.push(snapshot);
            }
        }
        let t = open_tree(&dir);
        t.check_invariants(true);
        let got = t.collect_all();
        // A failed commit never wrote its commit record, so recovery
        // lands exactly on the last window that returned `Ok`.
        assert_eq!(
            &got,
            committed_states.last().unwrap(),
            "crash_at={crash_at}: recovered tree is not the last committed state"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
