//! Property-based tests: the paged B+-tree must behave exactly like a
//! sorted multiset under arbitrary interleavings of inserts, deletes and
//! range queries, while maintaining its structural invariants.

use mobidx_bptree::{BPlusTree, TreeConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u32),
    Remove(u32, u32),
    Range(u32, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u32..64, 0u32..1000).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0u32..64, 0u32..1000).prop_map(|(k, v)| Op::Remove(k, v)),
        1 => (0u32..64, 0u32..64).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

fn small_cfg() -> TreeConfig {
    TreeConfig {
        leaf_cap: 4,
        branch_cap: 4,
        buffer_pages: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_matches_sorted_vec_oracle(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut tree: BPlusTree<u32, u32> = BPlusTree::new(small_cfg());
        let mut oracle: Vec<(u32, u32)> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    // The tree's contract: (key, value) pairs are unique
                    // (values are tie-breakers — an object id appears once).
                    if oracle.binary_search(&(k, v)).is_err() {
                        tree.insert(k, v);
                        let pos = oracle.partition_point(|e| *e <= (k, v));
                        oracle.insert(pos, (k, v));
                    }
                }
                Op::Remove(k, v) => {
                    let expected = oracle.iter().position(|&e| e == (k, v));
                    let removed = tree.remove(k, v);
                    prop_assert_eq!(removed, expected.is_some());
                    if let Some(pos) = expected {
                        oracle.remove(pos);
                    }
                }
                Op::Range(lo, hi) => {
                    let got = tree.range(lo, hi);
                    let want: Vec<(u32, u32)> = oracle
                        .iter()
                        .copied()
                        .filter(|&(k, _)| lo <= k && k <= hi)
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), oracle.len());
        }
        tree.check_invariants(true);
        prop_assert_eq!(tree.collect_all(), oracle);
    }

    #[test]
    fn bulk_load_equals_inserts(mut entries in prop::collection::vec((0u32..100, 0u32..10000), 0..400),
                                fill in 0.3f64..1.0) {
        entries.sort_unstable();
        entries.dedup();
        let bulk = BPlusTree::bulk_load(small_cfg(), &entries, fill);
        bulk.check_invariants(false);
        prop_assert_eq!(bulk.collect_all(), entries.clone());

        let mut incr: BPlusTree<u32, u32> = BPlusTree::new(small_cfg());
        for &(k, v) in &entries {
            incr.insert(k, v);
        }
        prop_assert_eq!(incr.collect_all(), entries);
    }

    /// Delete-heavy workloads over a tiny key domain: with only eight
    /// distinct keys and hundreds of entries, every key is a long run
    /// of duplicates, and the removal phase repeatedly drives leaves
    /// and branches through underflow, borrowing, and merges.
    #[test]
    fn delete_heavy_duplicates_match_oracle(
        inserts in prop::collection::vec((0u32..8, 0u32..10000), 50..250),
        removal_order in prop::collection::vec(0usize..1000, 300..400),
        checkpoints in prop::collection::vec(proptest::bool::ANY, 300..400),
    ) {
        let mut tree: BPlusTree<u32, u32> = BPlusTree::new(small_cfg());
        let mut oracle: Vec<(u32, u32)> = Vec::new();
        for (k, v) in inserts {
            if oracle.binary_search(&(k, v)).is_err() {
                tree.insert(k, v);
                let pos = oracle.partition_point(|e| *e <= (k, v));
                oracle.insert(pos, (k, v));
            }
        }
        tree.check_invariants(true);

        // Remove in an arbitrary order until the tree is empty; the
        // occupancy check after every removal catches any leaf or
        // branch that a merge/borrow left under-filled or mis-keyed.
        for (step, (&pick, &check)) in
            removal_order.iter().zip(checkpoints.iter()).enumerate()
        {
            if oracle.is_empty() {
                break;
            }
            let (k, v) = oracle.remove(pick % oracle.len());
            prop_assert!(tree.remove(k, v), "step {}: ({}, {}) vanished", step, k, v);
            prop_assert_eq!(tree.len(), oracle.len());
            if check {
                tree.check_invariants(true);
            }
        }
        tree.check_invariants(true);
        prop_assert_eq!(tree.collect_all(), oracle.clone());

        // Double-removal of anything already gone must report false.
        if let Some(&(k, v)) = oracle.first() {
            prop_assert!(tree.remove(k, v));
            prop_assert!(!tree.remove(k, v));
        }
    }

    /// Bulk-loaded trees must survive complete tear-down: every packed
    /// leaf (including maximally-filled ones) goes through the same
    /// underflow machinery as incrementally built trees.
    #[test]
    fn bulk_load_then_delete_all(
        mut entries in prop::collection::vec((0u32..16, 0u32..10000), 1..300),
        fill in 0.5f64..1.0,
        removal_order in prop::collection::vec(0usize..1000, 300..301),
    ) {
        entries.sort_unstable();
        entries.dedup();
        let mut tree = BPlusTree::bulk_load(small_cfg(), &entries, fill);
        tree.check_invariants(false);
        prop_assert_eq!(tree.len(), entries.len());

        let mut oracle = entries;
        for &pick in &removal_order {
            if oracle.is_empty() {
                break;
            }
            let (k, v) = oracle.remove(pick % oracle.len());
            prop_assert!(tree.remove(k, v));
            // Post-bulk-load occupancy can legitimately sit below the
            // strict floor right after packing, so check loosely during
            // tear-down and exactly at the end.
            tree.check_invariants(false);
            prop_assert_eq!(tree.collect_all(), oracle.clone());
        }
        prop_assert!(tree.is_empty());
        prop_assert_eq!(tree.range(0, u32::MAX), vec![]);

        // The emptied tree must remain fully usable.
        tree.insert(3, 7);
        prop_assert_eq!(tree.collect_all(), vec![(3u32, 7u32)]);
    }

    #[test]
    fn f64_keys_roundtrip(keys in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut tree: BPlusTree<f64, u64> = BPlusTree::new(small_cfg());
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, i as u64);
        }
        tree.check_invariants(true);
        let mut expected: Vec<(f64, u64)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(tree.collect_all(), expected);
        // Every inserted entry must be removable.
        for (i, &k) in keys.iter().enumerate() {
            prop_assert!(tree.remove(k, i as u64));
        }
        prop_assert!(tree.is_empty());
    }
}
