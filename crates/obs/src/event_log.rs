//! A bounded ring buffer of recent trace spans.
//!
//! The serving tier records one finished [`Span`] tree per traced query.
//! A diagnostic surface wants "the last N traces" without unbounded
//! memory or a global lock on the hot path, so [`EventLog`] is a
//! fixed-capacity ring: writers claim a slot with one relaxed
//! `fetch_add` and take only that slot's mutex (uncontended unless the
//! ring wraps onto an in-flight reader), readers snapshot best-effort.
//! Old entries are overwritten, never reallocated — the log's footprint
//! is `capacity` Arc slots regardless of traffic.

use crate::span::Span;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A bounded, overwrite-on-wrap buffer of [`Span`] trees (see the
/// module docs for the locking discipline).
#[derive(Debug)]
pub struct EventLog {
    slots: Box<[Mutex<Option<Arc<Span>>>]>,
    head: AtomicU64,
}

impl EventLog {
    /// Creates a log holding at most `capacity` spans.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> EventLog {
        assert!(capacity > 0, "EventLog capacity must be nonzero");
        EventLog {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed (monotonic; exceeds `capacity` once the
    /// ring has wrapped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans overwritten by wrap-around since creation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Spans currently retrievable.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::try_from(self.recorded())
            .unwrap_or(usize::MAX)
            .min(self.slots.len())
    }

    /// `true` when nothing has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// Records a finished span, overwriting the oldest entry when full.
    pub fn push(&self, span: Arc<Span>) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = usize::try_from(seq % self.slots.len() as u64).expect("mod of usize capacity");
        *self.slots[slot].lock().expect("EventLog slot poisoned") = Some(span);
    }

    /// The retained spans, oldest first. Best-effort under concurrent
    /// writers: a slot mid-overwrite yields the old or the new span,
    /// never a torn one.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Arc<Span>> {
        let head = self.recorded();
        let cap = self.slots.len() as u64;
        let oldest = head.saturating_sub(cap);
        (oldest..head)
            .filter_map(|seq| {
                let slot = usize::try_from(seq % cap).expect("mod of usize capacity");
                self.slots[slot]
                    .lock()
                    .expect("EventLog slot poisoned")
                    .clone()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanIo;

    fn span(n: u64) -> Arc<Span> {
        Arc::new(Span::leaf(format!("q{n}"), n, SpanIo::default()))
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = EventLog::new(0);
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let log = EventLog::new(3);
        assert!(log.is_empty());
        for i in 0..5 {
            log.push(span(i));
        }
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.len(), 3);
        let names: Vec<_> = log.snapshot().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, ["q2", "q3", "q4"]);
    }

    #[test]
    fn partial_fill_snapshots_in_order() {
        let log = EventLog::new(8);
        log.push(span(0));
        log.push(span(1));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 0);
        let names: Vec<_> = log.snapshot().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, ["q0", "q1"]);
    }

    #[test]
    fn concurrent_pushes_keep_every_slot_coherent() {
        let log = Arc::new(EventLog::new(16));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..100 {
                        log.push(span(t * 100 + i));
                    }
                });
            }
        });
        assert_eq!(log.recorded(), 400);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 16);
        for s in snap {
            assert!(s.name.starts_with('q'));
        }
    }
}
