//! Service-level objectives, multi-window burn-rate alerting, and
//! EWMA anomaly detection over the telemetry registry.
//!
//! The telemetry pipeline measures; this module *judges*. An
//! [`SloEngine`] holds a set of declarative objectives ([`SloSpec`]:
//! latency percentile targets, error/fault budgets, snapshot-age
//! staleness bounds — anything expressible as a per-sample pass/fail
//! over a registered [`TimeSeries`]) plus optional [`AnomalySpec`]
//! detectors, and is evaluated once per sampler tick against the
//! [`Telemetry`] registry.
//!
//! ## Burn-rate semantics
//!
//! Each SLO grants an *error budget*: the fraction of samples allowed
//! to violate the objective ([`SloSpec::budget`]). On every evaluation
//! the engine computes the violating fraction over two trailing
//! windows — a short *fast* window that reacts within a few ticks and
//! a longer *slow* window that filters blips — and divides each by the
//! budget to get a *burn rate* (1.0 = burning the budget exactly as
//! fast as granted). An alert is raised only when **both** windows burn
//! at or above [`SloSpec::burn_threshold`], the standard SRE
//! multi-window rule: the fast window gives low detection latency, the
//! slow window keeps one bad tick from paging. Windows shorter than
//! their configured size (early in a run) are evaluated over whatever
//! samples exist once [`SloSpec::min_samples`] have arrived.
//!
//! ## What an evaluation emits
//!
//! * `slo_burn_rate{slo="<name>"}` — the fast-window burn rate, every
//!   tick, per SLO;
//! * `alert_active{slo="<name>"}` — 0/1 gauge per SLO;
//! * `anomaly_z{series="<name>"}` — the robust z-score per detector;
//! * on every raise/resolve edge, a typed `alert` event — a leaf
//!   [`Span`] with `slo`/`kind`/`state` and the triggering numbers as
//!   attrs — into the shared [`EventLog`], next to the drift events the
//!   workload profile already emits. Downstream consumers (the flight
//!   recorder, `mobidx-doctor`) correlate on those events.
//!
//! ## Anomaly detection
//!
//! [`AnomalySpec`] watches one series with an exponentially weighted
//! moving average of the value and of its absolute deviation (a cheap
//! MAD stand-in). Each new sample scores a robust z
//! (`|x − ewma| / (1.4826 · ewma_dev)`, with a relative floor on the
//! denominator so a near-constant series does not divide by zero);
//! crossing [`AnomalySpec::z_threshold`] raises an `anomaly` alert.
//! This is deliberately lightweight — one multiply-add per tick per
//! detector — and catches step changes the fixed-threshold SLOs were
//! not told about.

use crate::json::Value;
use crate::telemetry::Telemetry;
use crate::{EventLog, Span, SpanIo};
use std::sync::{Arc, Mutex};

/// The per-sample pass/fail criterion of an SLO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// The sample must stay at or below the bound (latency targets,
    /// staleness bounds, fault gauges that should read 0).
    AtMost(f64),
    /// The sample must stay at or above the bound (hit rates,
    /// throughput floors).
    AtLeast(f64),
}

impl Objective {
    /// Whether `v` violates the objective.
    #[must_use]
    pub fn is_bad(self, v: f64) -> bool {
        match self {
            Objective::AtMost(max) => v > max,
            Objective::AtLeast(min) => v < min,
        }
    }

    /// The numeric bound.
    #[must_use]
    pub fn bound(self) -> f64 {
        match self {
            Objective::AtMost(b) | Objective::AtLeast(b) => b,
        }
    }

    fn kind(self) -> &'static str {
        match self {
            Objective::AtMost(_) => "at_most",
            Objective::AtLeast(_) => "at_least",
        }
    }
}

/// One declarative service-level objective over a registered series
/// (see the module docs for the burn-rate semantics).
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Alert name — becomes the `slo` label of the emitted series and
    /// the `slo` attr of alert events.
    pub name: String,
    /// The full series name this SLO watches, including any labels
    /// (e.g. `query_p99_us{shard="0"}` or `snapshot_age_ticks`).
    pub series: String,
    /// The per-sample pass/fail criterion.
    pub objective: Objective,
    /// Error budget: the allowed violating fraction of samples, in
    /// (0, 1]. A burn rate of 1.0 means violations arrive exactly at
    /// the budgeted rate.
    pub budget: f64,
    /// Fast (reactive) trailing window, in samples.
    pub fast_window: usize,
    /// Slow (confirming) trailing window, in samples; usually several
    /// times the fast window.
    pub slow_window: usize,
    /// Alert when both windows burn at or above this rate.
    pub burn_threshold: f64,
    /// Samples required in the series before the SLO is judged at all
    /// (warm-up guard).
    pub min_samples: usize,
}

impl SloSpec {
    /// A latency-percentile objective: `series` (a percentile gauge
    /// like `query_p99_us{shard="0"}`) must stay at or below `max`,
    /// with a 5 % error budget, 12/60-sample windows, and a 2× burn
    /// threshold.
    #[must_use]
    pub fn latency(name: &str, series: &str, max: f64) -> SloSpec {
        SloSpec {
            name: name.to_owned(),
            series: series.to_owned(),
            objective: Objective::AtMost(max),
            budget: 0.05,
            fast_window: 12,
            slow_window: 60,
            burn_threshold: 2.0,
            min_samples: 3,
        }
    }

    /// A fault-budget objective: `series` (a fault gauge or per-tick
    /// fault delta, e.g. `poisoned{shard="1"}`) should read 0; any
    /// violating sample overspends the 1 % budget immediately, so the
    /// alert raises on the first tick that observes the fault.
    #[must_use]
    pub fn fault(name: &str, series: &str) -> SloSpec {
        SloSpec {
            name: name.to_owned(),
            series: series.to_owned(),
            objective: Objective::AtMost(0.0),
            budget: 0.01,
            fast_window: 6,
            slow_window: 30,
            burn_threshold: 1.0,
            min_samples: 1,
        }
    }

    /// A snapshot-staleness objective: `series` (an age gauge like
    /// `snapshot_age_ticks`) must stay at or below `max_age`, with a
    /// 10 % budget and 12/60-sample windows — a snapshot allowed to
    /// briefly pause during a rebuild, but not to stall.
    #[must_use]
    pub fn staleness(name: &str, series: &str, max_age: f64) -> SloSpec {
        SloSpec {
            name: name.to_owned(),
            series: series.to_owned(),
            objective: Objective::AtMost(max_age),
            budget: 0.1,
            fast_window: 12,
            slow_window: 60,
            burn_threshold: 2.0,
            min_samples: 3,
        }
    }
}

/// One EWMA/robust-z anomaly detector over a registered series (see
/// the module docs).
#[derive(Debug, Clone)]
pub struct AnomalySpec {
    /// The full series name to watch.
    pub series: String,
    /// EWMA smoothing factor in (0, 1]; higher tracks faster.
    pub alpha: f64,
    /// Raise when the robust z-score reaches this value.
    pub z_threshold: f64,
    /// Samples consumed before the detector starts judging (the EWMA
    /// needs history for its deviation estimate to mean anything).
    pub min_samples: u64,
}

impl AnomalySpec {
    /// A detector with the default smoothing (α = 0.2), threshold
    /// (z ≥ 4) and warm-up (12 samples).
    #[must_use]
    pub fn over(series: &str) -> AnomalySpec {
        AnomalySpec {
            series: series.to_owned(),
            alpha: 0.2,
            z_threshold: 4.0,
            min_samples: 12,
        }
    }
}

/// Why an alert is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// A multi-window SLO burn-rate breach.
    BurnRate,
    /// A robust-z anomaly on a watched series.
    Anomaly,
}

impl AlertKind {
    /// The kind as the string used in event attrs and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::BurnRate => "burn_rate",
            AlertKind::Anomaly => "anomaly",
        }
    }
}

/// One currently firing alert.
#[derive(Debug, Clone)]
pub struct ActiveAlert {
    /// The SLO name, or `anomaly:<series>` for detector alerts.
    pub name: String,
    /// What raised it.
    pub kind: AlertKind,
    /// The watched series.
    pub series: String,
    /// The current burn rate (SLO) or z-score (anomaly).
    pub value: f64,
    /// The configured threshold that was crossed.
    pub threshold: f64,
    /// When the alert was raised, in nanoseconds on the registry's
    /// time base.
    pub since_nanos: u64,
}

impl ActiveAlert {
    /// The alert as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("name".to_owned(), Value::from(self.name.as_str())),
            ("kind".to_owned(), Value::from(self.kind.as_str())),
            ("series".to_owned(), Value::from(self.series.as_str())),
            ("value".to_owned(), Value::Num(self.value)),
            ("threshold".to_owned(), Value::Num(self.threshold)),
            ("since_nanos".to_owned(), Value::from(self.since_nanos)),
        ])
    }
}

/// Per-SLO mutable evaluation state.
#[derive(Debug, Clone, Default)]
struct SloState {
    active: bool,
    since_nanos: u64,
    last_burn_fast: f64,
    last_burn_slow: f64,
}

/// Per-detector mutable evaluation state.
#[derive(Debug, Clone)]
struct AnomalyState {
    mean: f64,
    dev: f64,
    seen: u64,
    consumed: u64,
    active: bool,
    since_nanos: u64,
    last_z: f64,
}

impl Default for AnomalyState {
    fn default() -> Self {
        AnomalyState {
            mean: 0.0,
            dev: 0.0,
            seen: 0,
            consumed: 0,
            active: false,
            since_nanos: 0,
            last_z: 0.0,
        }
    }
}

#[derive(Debug, Default)]
struct EngineState {
    slos: Vec<SloState>,
    anomalies: Vec<AnomalyState>,
    evaluations: u64,
    raised: u64,
}

/// The objective evaluator: a set of [`SloSpec`]s and [`AnomalySpec`]s
/// judged against a [`Telemetry`] registry once per sampler tick (see
/// the module docs). All state lives behind a mutex taken only by
/// [`SloEngine::evaluate`] and the read accessors — the serving hot
/// path never touches it.
#[derive(Debug, Default)]
pub struct SloEngine {
    slos: Vec<SloSpec>,
    anomalies: Vec<AnomalySpec>,
    events: Option<Arc<EventLog>>,
    state: Mutex<EngineState>,
}

impl SloEngine {
    /// An engine with no objectives (add them with [`SloEngine::slo`]
    /// / [`SloEngine::anomaly`]).
    #[must_use]
    pub fn new() -> SloEngine {
        SloEngine::default()
    }

    /// Adds one SLO (builder style).
    #[must_use]
    pub fn slo(mut self, spec: SloSpec) -> SloEngine {
        self.slos.push(spec);
        self.state
            .get_mut()
            .expect("engine state")
            .slos
            .push(SloState::default());
        self
    }

    /// Adds one anomaly detector (builder style).
    #[must_use]
    pub fn anomaly(mut self, spec: AnomalySpec) -> SloEngine {
        self.anomalies.push(spec);
        self.state
            .get_mut()
            .expect("engine state")
            .anomalies
            .push(AnomalyState::default());
        self
    }

    /// Wires the event log alert events are pushed into (builder
    /// style). Without one, breaches still drive the emitted series but
    /// no events are recorded.
    #[must_use]
    pub fn with_event_log(mut self, events: Arc<EventLog>) -> SloEngine {
        self.events = Some(events);
        self
    }

    /// The configured SLOs.
    #[must_use]
    pub fn specs(&self) -> &[SloSpec] {
        &self.slos
    }

    /// The configured anomaly detectors.
    #[must_use]
    pub fn anomaly_specs(&self) -> &[AnomalySpec] {
        &self.anomalies
    }

    /// Whether the engine has anything to evaluate.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty() && self.anomalies.is_empty()
    }

    /// Completed evaluations.
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.state.lock().expect("engine state").evaluations
    }

    /// Alerts raised since construction (rising edges; resolutions do
    /// not decrement).
    #[must_use]
    pub fn alerts_raised(&self) -> u64 {
        self.state.lock().expect("engine state").raised
    }

    /// The currently firing alerts, SLOs first, in spec order.
    #[must_use]
    pub fn active_alerts(&self) -> Vec<ActiveAlert> {
        let st = self.state.lock().expect("engine state");
        let mut out = Vec::new();
        for (spec, s) in self.slos.iter().zip(&st.slos) {
            if s.active {
                out.push(ActiveAlert {
                    name: spec.name.clone(),
                    kind: AlertKind::BurnRate,
                    series: spec.series.clone(),
                    value: s.last_burn_fast,
                    threshold: spec.burn_threshold,
                    since_nanos: s.since_nanos,
                });
            }
        }
        for (spec, s) in self.anomalies.iter().zip(&st.anomalies) {
            if s.active {
                out.push(ActiveAlert {
                    name: format!("anomaly:{}", spec.series),
                    kind: AlertKind::Anomaly,
                    series: spec.series.clone(),
                    value: s.last_z,
                    threshold: spec.z_threshold,
                    since_nanos: s.since_nanos,
                });
            }
        }
        out
    }

    /// Evaluates every objective against the registry: computes the
    /// multi-window burn rates, feeds the anomaly detectors, records
    /// the `slo_burn_rate{slo=...}` / `alert_active{slo=...}` /
    /// `anomaly_z{series=...}` series, and pushes `alert` events on
    /// every raise/resolve edge. Called once per sampler tick, off the
    /// serving hot path.
    ///
    /// # Panics
    /// Panics if a prior evaluation panicked while holding the state
    /// lock.
    #[allow(clippy::cast_precision_loss)]
    pub fn evaluate(&self, t: &Telemetry) {
        let now = t.now_nanos();
        let mut st = self.state.lock().expect("engine state");
        st.evaluations += 1;
        for (i, spec) in self.slos.iter().enumerate() {
            let samples = t.get(&spec.series).map(|s| s.samples()).unwrap_or_default();
            let budget = spec.budget.max(1e-9);
            let bad_frac = |window: usize| -> f64 {
                let n = samples.len().min(window.max(1));
                if n == 0 {
                    return 0.0;
                }
                let slice = &samples[samples.len() - n..];
                let bad = slice
                    .iter()
                    .filter(|s| spec.objective.is_bad(s.value))
                    .count();
                bad as f64 / n as f64
            };
            let warm = samples.len() >= spec.min_samples.max(1);
            let burn_fast = if warm {
                bad_frac(spec.fast_window) / budget
            } else {
                0.0
            };
            let burn_slow = if warm {
                bad_frac(spec.slow_window) / budget
            } else {
                0.0
            };
            let breached =
                warm && burn_fast >= spec.burn_threshold && burn_slow >= spec.burn_threshold;
            t.record(
                &format!("slo_burn_rate{{slo=\"{}\"}}", spec.name),
                burn_fast,
            );
            t.record(
                &format!("alert_active{{slo=\"{}\"}}", spec.name),
                f64::from(u8::from(breached)),
            );
            let s = &mut st.slos[i];
            s.last_burn_fast = burn_fast;
            s.last_burn_slow = burn_slow;
            if breached != s.active {
                s.active = breached;
                if breached {
                    s.since_nanos = now;
                    st.raised += 1;
                }
                self.push_event(
                    Span::leaf("alert", now, SpanIo::default())
                        .with_attr("slo", spec.name.as_str())
                        .with_attr("kind", AlertKind::BurnRate.as_str())
                        .with_attr("state", if breached { "raised" } else { "resolved" })
                        .with_attr("series", spec.series.as_str())
                        .with_attr("objective", spec.objective.kind())
                        .with_attr("bound", spec.objective.bound())
                        .with_attr("burn_fast", burn_fast)
                        .with_attr("burn_slow", burn_slow)
                        .with_attr("burn_threshold", spec.burn_threshold),
                );
            }
        }
        for (i, spec) in self.anomalies.iter().enumerate() {
            let Some(series) = t.get(&spec.series) else {
                continue;
            };
            let recorded = series.recorded();
            let latest = series.latest();
            let s = &mut st.anomalies[i];
            if recorded == s.consumed {
                continue;
            }
            s.consumed = recorded;
            let Some(sample) = latest else { continue };
            let x = sample.value;
            let denom = (1.4826 * s.dev).max(0.01 * s.mean.abs()).max(1e-9);
            let z = if s.seen >= spec.min_samples.max(1) {
                (x - s.mean).abs() / denom
            } else {
                0.0
            };
            s.last_z = z;
            t.record(&format!("anomaly_z{{series=\"{}\"}}", spec.series), z);
            let firing = z >= spec.z_threshold;
            let edge = firing != s.active;
            let ewma = s.mean;
            if edge {
                s.active = firing;
                if firing {
                    s.since_nanos = now;
                }
            }
            // The EWMA updates after judging, so an outlier is scored
            // against the history it deviates from, then absorbed —
            // a sustained step change therefore alerts once and
            // becomes the new normal (the rebaseline-by-decay analogue
            // of WorkloadProfile::rebaseline).
            if s.seen == 0 {
                s.mean = x;
            } else {
                let a = spec.alpha.clamp(1e-6, 1.0);
                s.dev = (1.0 - a) * s.dev + a * (x - s.mean).abs();
                s.mean = (1.0 - a) * s.mean + a * x;
            }
            s.seen += 1;
            if edge {
                if firing {
                    st.raised += 1;
                }
                self.push_event(
                    Span::leaf("alert", now, SpanIo::default())
                        .with_attr("slo", format!("anomaly:{}", spec.series).as_str())
                        .with_attr("kind", AlertKind::Anomaly.as_str())
                        .with_attr("state", if firing { "raised" } else { "resolved" })
                        .with_attr("series", spec.series.as_str())
                        .with_attr("z", z)
                        .with_attr("value", x)
                        .with_attr("ewma", ewma)
                        .with_attr("z_threshold", spec.z_threshold),
                );
            }
        }
    }

    /// The engine as a JSON object: specs, counters, and the active
    /// alert list — the `alerts` section of a diagnostic bundle.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let st = self.state.lock().expect("engine state");
        let slos = self
            .slos
            .iter()
            .zip(&st.slos)
            .map(|(spec, s)| {
                Value::Obj(vec![
                    ("name".to_owned(), Value::from(spec.name.as_str())),
                    ("series".to_owned(), Value::from(spec.series.as_str())),
                    ("objective".to_owned(), Value::from(spec.objective.kind())),
                    ("bound".to_owned(), Value::Num(spec.objective.bound())),
                    ("budget".to_owned(), Value::Num(spec.budget)),
                    ("fast_window".to_owned(), Value::from(spec.fast_window)),
                    ("slow_window".to_owned(), Value::from(spec.slow_window)),
                    ("burn_threshold".to_owned(), Value::Num(spec.burn_threshold)),
                    ("burn_fast".to_owned(), Value::Num(s.last_burn_fast)),
                    ("burn_slow".to_owned(), Value::Num(s.last_burn_slow)),
                    ("active".to_owned(), Value::Bool(s.active)),
                ])
            })
            .collect();
        drop(st);
        Value::Obj(vec![
            ("slos".to_owned(), Value::Arr(slos)),
            ("evaluations".to_owned(), Value::from(self.evaluations())),
            ("raised".to_owned(), Value::from(self.alerts_raised())),
            (
                "active".to_owned(),
                Value::Arr(
                    self.active_alerts()
                        .iter()
                        .map(ActiveAlert::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    fn push_event(&self, span: Span) {
        if let Some(events) = &self.events {
            events.push(Arc::new(span));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_log(engine: SloEngine) -> (SloEngine, Arc<EventLog>) {
        let log = Arc::new(EventLog::new(64));
        (engine.with_event_log(Arc::clone(&log)), log)
    }

    fn push_n(t: &Telemetry, name: &str, n: usize, v: f64) {
        let s = t.series(name);
        for _ in 0..n {
            s.push(t.now_nanos(), v);
        }
    }

    #[test]
    fn latency_slo_fires_on_sustained_breach_not_on_blip() {
        let t = Telemetry::new(128);
        let (engine, log) = engine_with_log(SloEngine::new().slo(SloSpec::latency(
            "query-p99",
            "query_p99_us",
            1000.0,
        )));
        // Healthy steady state.
        push_n(&t, "query_p99_us", 30, 200.0);
        engine.evaluate(&t);
        assert!(engine.active_alerts().is_empty());
        assert_eq!(engine.alerts_raised(), 0);
        // One blip: the fast window burns hot but the slow window
        // dilutes it below 2x the 5% budget (1/31 ≈ 3.2% < 10%).
        push_n(&t, "query_p99_us", 1, 5000.0);
        engine.evaluate(&t);
        assert!(engine.active_alerts().is_empty(), "one blip must not page");
        // Sustained regression: both windows saturate.
        push_n(&t, "query_p99_us", 12, 5000.0);
        engine.evaluate(&t);
        let alerts = engine.active_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].name, "query-p99");
        assert_eq!(alerts[0].kind, AlertKind::BurnRate);
        assert!(alerts[0].value >= 2.0, "burn {}", alerts[0].value);
        assert_eq!(engine.alerts_raised(), 1);
        // The emitted series carry the verdict.
        assert!(
            t.get("slo_burn_rate{slo=\"query-p99\"}")
                .expect("burn series")
                .latest()
                .expect("sample")
                .value
                >= 2.0
        );
        assert_eq!(
            t.get("alert_active{slo=\"query-p99\"}")
                .expect("active series")
                .latest()
                .expect("sample")
                .value,
            1.0
        );
        // And the raise landed as a typed event.
        let raise = log
            .snapshot()
            .into_iter()
            .find(|s| s.name == "alert")
            .expect("alert event");
        assert_eq!(raise.attr_str("slo"), Some("query-p99"));
        assert_eq!(raise.attr_str("kind"), Some("burn_rate"));
        assert_eq!(raise.attr_str("state"), Some("raised"));
        // Recovery resolves (the windows drain as good samples push
        // the bad ones out of both windows).
        push_n(&t, "query_p99_us", 128, 100.0);
        engine.evaluate(&t);
        assert!(engine.active_alerts().is_empty());
        let resolved = log
            .snapshot()
            .into_iter()
            .filter(|s| s.name == "alert" && s.attr_str("state") == Some("resolved"))
            .count();
        assert_eq!(resolved, 1);
        assert_eq!(engine.alerts_raised(), 1, "resolve is not a raise");
    }

    #[test]
    fn fault_slo_fires_on_first_poisoned_sample() {
        let t = Telemetry::new(64);
        let engine = SloEngine::new().slo(SloSpec::fault("shard-fault", "poisoned{shard=\"1\"}"));
        push_n(&t, "poisoned{shard=\"1\"}", 5, 0.0);
        engine.evaluate(&t);
        assert!(engine.active_alerts().is_empty());
        push_n(&t, "poisoned{shard=\"1\"}", 1, 1.0);
        engine.evaluate(&t);
        let alerts = engine.active_alerts();
        assert_eq!(alerts.len(), 1, "fault budget must page on one sample");
        assert_eq!(alerts[0].name, "shard-fault");
    }

    #[test]
    fn warm_up_guard_suppresses_empty_and_short_series() {
        let t = Telemetry::new(64);
        let engine = SloEngine::new().slo(SloSpec::latency("query-p99", "query_p99_us", 1000.0));
        // Missing series: burn reads 0, nothing fires.
        engine.evaluate(&t);
        assert!(engine.active_alerts().is_empty());
        assert_eq!(
            t.get("slo_burn_rate{slo=\"query-p99\"}")
                .expect("recorded even when the watched series is absent")
                .latest()
                .expect("sample")
                .value,
            0.0
        );
        // Below min_samples: still quiet, even though every sample is bad.
        push_n(&t, "query_p99_us", 2, 9000.0);
        engine.evaluate(&t);
        assert!(engine.active_alerts().is_empty());
        // At min_samples the judgment starts.
        push_n(&t, "query_p99_us", 1, 9000.0);
        engine.evaluate(&t);
        assert_eq!(engine.active_alerts().len(), 1);
    }

    #[test]
    fn anomaly_detector_scores_step_change_and_absorbs_it() {
        let t = Telemetry::new(256);
        let (engine, log) =
            engine_with_log(SloEngine::new().anomaly(AnomalySpec::over("queue_depth_total")));
        let series = t.series("queue_depth_total");
        // Stable phase: feed one sample per evaluation, like the sampler.
        for i in 0..30 {
            series.push(t.now_nanos(), 10.0 + f64::from(i % 2));
            engine.evaluate(&t);
        }
        assert!(engine.active_alerts().is_empty(), "stable series is quiet");
        // Step change: 10 -> 200.
        series.push(t.now_nanos(), 200.0);
        engine.evaluate(&t);
        let alerts = engine.active_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Anomaly);
        assert!(alerts[0].value >= 4.0, "z = {}", alerts[0].value);
        let event = log
            .snapshot()
            .into_iter()
            .find(|s| s.name == "alert")
            .expect("anomaly event");
        assert_eq!(event.attr_str("kind"), Some("anomaly"));
        assert_eq!(event.attr_str("series"), Some("queue_depth_total"));
        // The z series was recorded.
        assert!(t.get("anomaly_z{series=\"queue_depth_total\"}").is_some());
        // The new level becomes normal again (EWMA absorbs it).
        for _ in 0..40 {
            series.push(t.now_nanos(), 200.0);
            engine.evaluate(&t);
        }
        assert!(
            engine.active_alerts().is_empty(),
            "sustained level must be absorbed"
        );
    }

    #[test]
    fn anomaly_detector_consumes_each_sample_once() {
        let t = Telemetry::new(64);
        let engine = SloEngine::new().anomaly(AnomalySpec {
            min_samples: 2,
            ..AnomalySpec::over("g")
        });
        let series = t.series("g");
        series.push(t.now_nanos(), 5.0);
        // Re-evaluating without new samples must not re-feed the EWMA.
        for _ in 0..10 {
            engine.evaluate(&t);
        }
        series.push(t.now_nanos(), 5.0);
        engine.evaluate(&t);
        series.push(t.now_nanos(), 5.0);
        engine.evaluate(&t);
        // Three samples consumed, three seen: a fourth identical one
        // scores z = 0.
        series.push(t.now_nanos(), 5.0);
        engine.evaluate(&t);
        assert_eq!(
            t.get("anomaly_z{series=\"g\"}")
                .expect("z series")
                .latest()
                .expect("sample")
                .value,
            0.0
        );
        assert!(engine.active_alerts().is_empty());
    }

    #[test]
    fn engine_json_round_trips() {
        let t = Telemetry::new(64);
        let engine = SloEngine::new()
            .slo(SloSpec::fault("shard-fault", "poisoned{shard=\"0\"}"))
            .slo(SloSpec::staleness("snap-age", "snapshot_age_ticks", 50.0));
        push_n(&t, "poisoned{shard=\"0\"}", 2, 1.0);
        engine.evaluate(&t);
        let doc = Value::parse(&engine.to_json().render_pretty()).expect("engine JSON parses");
        let slos = doc.get("slos").and_then(Value::as_array).expect("slos");
        assert_eq!(slos.len(), 2);
        assert_eq!(
            slos[0].get("name").and_then(Value::as_str),
            Some("shard-fault")
        );
        assert_eq!(slos[0].get("active").and_then(Value::as_bool), Some(true));
        assert_eq!(doc.get("raised").and_then(Value::as_u64), Some(1));
        let active = doc.get("active").and_then(Value::as_array).expect("active");
        assert_eq!(active.len(), 1);
        assert_eq!(
            active[0].get("kind").and_then(Value::as_str),
            Some("burn_rate")
        );
    }
}
