//! Metric sinks: where instrumented components publish named metrics.

use crate::metrics::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A sink for named metrics.
///
/// Instrumented components (`PageStore`, the bench harness) call these
/// through `&self`; implementations must therefore be `Sync`. The
/// methods take names as `&str` so callers can use static strings or
/// formatted prefixes without forcing allocation on the no-op path.
pub trait Recorder: Sync {
    /// Adds `delta` to the counter `name`.
    fn add_counter(&self, name: &str, delta: u64);

    /// Sets the gauge `name` to `value`.
    fn set_gauge(&self, name: &str, value: u64);

    /// Records one observation into the histogram `name` (typically a
    /// latency in nanoseconds).
    fn record_value(&self, name: &str, value: u64);
}

/// A recorder that discards everything (the zero-overhead default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn add_counter(&self, _name: &str, _delta: u64) {}
    fn set_gauge(&self, _name: &str, _value: u64) {}
    fn record_value(&self, _name: &str, _value: u64) {}
}

/// An in-process recorder aggregating everything into maps, for tests
/// and the bench harness.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current value of counter `name` (0 if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        *self
            .counters
            .lock()
            .expect("poisoned")
            .get(name)
            .unwrap_or(&0)
    }

    /// The current value of gauge `name` (0 if never written).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        *self
            .gauges
            .lock()
            .expect("poisoned")
            .get(name)
            .unwrap_or(&0)
    }

    /// A snapshot of histogram `name`, if any values were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms
            .lock()
            .expect("poisoned")
            .get(name)
            .map(Histogram::snapshot)
    }

    /// All counter names seen so far.
    #[must_use]
    pub fn counter_names(&self) -> Vec<String> {
        self.counters
            .lock()
            .expect("poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

impl Recorder for MemoryRecorder {
    fn add_counter(&self, name: &str, delta: u64) {
        *self
            .counters
            .lock()
            .expect("poisoned")
            .entry(name.to_owned())
            .or_insert(0) += delta;
    }

    fn set_gauge(&self, name: &str, value: u64) {
        self.gauges
            .lock()
            .expect("poisoned")
            .insert(name.to_owned(), value);
    }

    fn record_value(&self, name: &str, value: u64) {
        self.histograms
            .lock()
            .expect("poisoned")
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_recorder_aggregates() {
        let r = MemoryRecorder::new();
        r.add_counter("pager.reads", 3);
        r.add_counter("pager.reads", 2);
        r.set_gauge("pager.pages", 10);
        r.set_gauge("pager.pages", 12);
        r.record_value("query.latency", 100);
        r.record_value("query.latency", 300);
        assert_eq!(r.counter("pager.reads"), 5);
        assert_eq!(r.gauge("pager.pages"), 12);
        let h = r.histogram("query.latency").expect("recorded");
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 300);
        assert_eq!(r.counter("missing"), 0);
        assert!(r.histogram("missing").is_none());
        assert_eq!(r.counter_names(), vec!["pager.reads".to_owned()]);
    }

    #[test]
    fn noop_recorder_is_silent() {
        let r = NoopRecorder;
        r.add_counter("x", 1);
        r.set_gauge("y", 2);
        r.record_value("z", 3);
    }

    #[test]
    fn recorders_are_object_safe() {
        let r: &dyn Recorder = &NoopRecorder;
        r.add_counter("x", 1);
        let m = MemoryRecorder::new();
        let r: &dyn Recorder = &m;
        r.add_counter("x", 1);
        assert_eq!(m.counter("x"), 1);
    }
}
