//! A minimal JSON emitter and parser.
//!
//! The bench harness writes machine-readable `BENCH_*.json` reports and
//! the test suite parses them back; the build environment has no serde,
//! so this module implements the needed subset by hand: the full JSON
//! value model, rendering with string escaping, and a recursive-descent
//! parser. Numbers are `f64` (integers up to 2^53 round-trip exactly —
//! far beyond any page or I/O count the harness produces).

use crate::span::Span;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion-ordered; keys may repeat, first wins on
    /// lookup).
    Obj(Vec<(String, Value)>),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        #[allow(clippy::cast_precision_loss)]
        Value::Num(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        #[allow(clippy::cast_precision_loss)]
        Value::Num(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl Value {
    /// Member lookup on an object (first match); `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON with 2-space indentation.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 always produces a valid JSON number
                    // (no exponent suffix ambiguity for finite values).
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !members.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value with only whitespace around it).
    ///
    /// # Errors
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Exports span trees in the Chrome trace-event format, loadable by
/// Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`.
///
/// Every span becomes one `"X"` (complete) event with microsecond
/// timestamps measured from the trees' shared epoch. The event's lane is
/// chosen by the nearest ancestor-or-self `lane` attribute (default
/// lane 0), so a sharded query renders the facade span on the client
/// lane and each worker's subtree on its own shard lane; `lane_name`
/// attributes become `thread_name` metadata events naming those lanes.
/// All other attributes, plus non-zero I/O counts, land in `args`.
#[must_use]
pub fn chrome_trace<'a>(spans: impl IntoIterator<Item = &'a Span>) -> Value {
    #[allow(clippy::cast_precision_loss)]
    fn emit(
        span: &Span,
        inherited_lane: u64,
        events: &mut Vec<Value>,
        lanes: &mut Vec<(u64, String)>,
    ) {
        let lane = span.attr_u64("lane").unwrap_or(inherited_lane);
        if let Some(name) = span.attr_str("lane_name") {
            if !lanes.iter().any(|(l, _)| *l == lane) {
                lanes.push((lane, name.to_owned()));
            }
        }
        let mut args: Vec<(String, Value)> = span
            .attrs
            .iter()
            .filter(|(k, _)| k != "lane" && k != "lane_name")
            .cloned()
            .collect();
        for (key, v) in [
            ("reads", span.io.reads),
            ("writes", span.io.writes),
            ("hits", span.io.hits),
        ] {
            if v > 0 {
                args.push((key.to_owned(), Value::from(v)));
            }
        }
        events.push(Value::Obj(vec![
            ("name".to_owned(), Value::Str(span.name.clone())),
            ("cat".to_owned(), Value::from("mobidx")),
            ("ph".to_owned(), Value::from("X")),
            ("ts".to_owned(), Value::Num(span.start_nanos as f64 / 1e3)),
            (
                "dur".to_owned(),
                Value::Num(span.duration_nanos as f64 / 1e3),
            ),
            ("pid".to_owned(), Value::from(0u64)),
            ("tid".to_owned(), Value::from(lane)),
            ("args".to_owned(), Value::Obj(args)),
        ]));
        for c in &span.children {
            emit(c, lane, events, lanes);
        }
    }
    let mut events = Vec::new();
    let mut lanes: Vec<(u64, String)> = Vec::new();
    for span in spans {
        emit(span, 0, &mut events, &mut lanes);
    }
    lanes.sort_by_key(|(l, _)| *l);
    let meta = lanes.into_iter().map(|(lane, name)| {
        Value::Obj(vec![
            ("name".to_owned(), Value::from("thread_name")),
            ("ph".to_owned(), Value::from("M")),
            ("pid".to_owned(), Value::from(0u64)),
            ("tid".to_owned(), Value::from(lane)),
            (
                "args".to_owned(),
                Value::Obj(vec![("name".to_owned(), Value::Str(name))]),
            ),
        ])
    });
    Value::Obj(vec![(
        "traceEvents".to_owned(),
        Value::Arr(meta.chain(events).collect()),
    )])
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates are not produced by this crate's
                            // writer; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Num(0.0),
            Value::Num(-12.5),
            Value::Num(1e9),
            Value::Str("hello \"quoted\" \\ \n tab\t".to_owned()),
        ] {
            let text = v.render();
            assert_eq!(Value::parse(&text).expect("parses"), v, "text: {text}");
        }
    }

    #[test]
    fn nested_round_trips() {
        let v = Value::Obj(vec![
            ("name".to_owned(), Value::from("dual-B+ (c=6)")),
            ("ios".to_owned(), Value::from(42u64)),
            (
                "series".to_owned(),
                Value::Arr(vec![Value::from(1u64), Value::from(2u64), Value::Null]),
            ),
            ("empty_arr".to_owned(), Value::Arr(vec![])),
            ("empty_obj".to_owned(), Value::Obj(vec![])),
        ]);
        for text in [v.render(), v.render_pretty()] {
            let parsed = Value::parse(&text).expect("parses");
            assert_eq!(parsed, v, "text: {text}");
        }
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"a": 3, "b": "x", "c": [true], "d": 2.5}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Value::as_array).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(v.get("d").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("d").and_then(Value::as_u64), None, "non-integer");
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_object().map(<[(String, Value)]>::len), Some(4));
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn unicode_and_control_escapes() {
        let v = Value::Str("π → \u{1}".to_owned());
        let text = v.render();
        assert!(text.contains("\\u0001"), "control char escaped: {text}");
        assert_eq!(Value::parse(&text).expect("parses"), v);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\": }",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn chrome_trace_exports_lanes_and_round_trips() {
        use crate::span::{Span, SpanIo};
        let mut root = Span::leaf("query", 1_000, SpanIo::default())
            .with_attr("lane", 0u64)
            .with_attr("lane_name", "client")
            .with_attr("method", "sharded[2x id-hash]");
        root.duration_nanos = 50_000;
        for shard in 0..2u64 {
            let mut leg = Span::leaf(format!("s{shard}/execute"), 2_000, SpanIo::default())
                .with_attr("lane", shard + 1)
                .with_attr("lane_name", format!("mobidx-shard-{shard}").as_str());
            leg.duration_nanos = 30_000;
            // Store leaf: no lane attr, inherits the worker's.
            leg.children.push(
                Span::leaf(
                    "store/obs1",
                    2_500,
                    SpanIo {
                        reads: 3,
                        writes: 0,
                        hits: 1,
                    },
                )
                .with_attr("store", "obs1"),
            );
            root.children.push(leg);
        }
        let trace = chrome_trace([&root]);
        let parsed = Value::parse(&trace.render()).expect("export is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // 3 thread_name metadata + 5 spans.
        assert_eq!(events.len(), 8);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 3, "one thread_name per lane");
        let store_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("store/obs1"))
            .collect();
        assert_eq!(store_events.len(), 2);
        let tids: Vec<_> = store_events
            .iter()
            .map(|e| e.get("tid").and_then(Value::as_u64).expect("tid"))
            .collect();
        assert_eq!(tids, [1, 2], "store leaves inherit the worker lane");
        let root_event = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("query"))
            .expect("root event");
        assert_eq!(root_event.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(root_event.get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(root_event.get("dur").and_then(Value::as_f64), Some(50.0));
        assert_eq!(
            root_event
                .get("args")
                .and_then(|a| a.get("method"))
                .and_then(Value::as_str),
            Some("sharded[2x id-hash]")
        );
        assert!(
            root_event
                .get("args")
                .and_then(|a| a.get("lane_name"))
                .is_none(),
            "lane attrs don't leak into args"
        );
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Value::parse(" \n\t[ 1 , 2 ]\r\n").expect("parses");
        assert_eq!(v.as_array().map(<[Value]>::len), Some(2));
    }
}
