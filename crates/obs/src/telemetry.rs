//! Continuous telemetry: time series, a sampling thread, workload
//! characterization, and exposition.
//!
//! Everything before this module observes one *instant* (a
//! `ShardHealth`-style snapshot) or one *operation* (a span tree). A
//! serving tier also needs the axis nobody was watching: **time**. This
//! module provides the pieces:
//!
//! * [`TimeSeries`] — a lock-free fixed-capacity ring of timestamped
//!   samples with min/max/mean/quantile reduction over the retained
//!   window;
//! * [`Telemetry`] — a named registry of series sharing one epoch, with
//!   a JSON report ([`Telemetry::to_json`]) and a Prometheus-style text
//!   dump ([`Telemetry::prometheus`], round-trippable through
//!   [`parse_prometheus`]);
//! * [`Sampler`] — a background thread invoking a harvest closure on a
//!   configurable tick (the serve tier points it at every shard's
//!   health state);
//! * [`WorkloadProfile`] — an online characterizer of the update/query
//!   stream (velocity histogram, query selectivity, update:query mix)
//!   with windowed drift detection: the L1 and earth-mover's distances
//!   between the current velocity window and a reference window, exposed
//!   as a gauge and as `drift` events in an [`EventLog`]. This is the
//!   signal the speed-partitioned index family needs to decide *when*
//!   to repartition (Speed Partitioning for Indexing Moving Objects).
//!
//! The sampling discipline mirrors the rest of the crate: writers touch
//! relaxed atomics only, readers snapshot best-effort, and nothing on a
//! hot path takes a lock (the only mutexes guard the cold
//! window-close/registry paths).

use crate::event_log::EventLog;
use crate::json::Value;
use crate::metrics::{Counter, Gauge, Histogram};
use crate::span::Span;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One timestamped observation of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Offset from the owning registry's epoch, in nanoseconds.
    pub t_nanos: u64,
    /// The observed value.
    pub value: f64,
}

/// A lock-free, fixed-capacity ring of timestamped samples.
///
/// Writers claim a slot with one relaxed `fetch_add` and store the
/// sample's two words; old samples are overwritten, never reallocated,
/// so the footprint is `capacity` slots regardless of how long the
/// series runs. Reads are best-effort like [`EventLog`]: a slot
/// mid-overwrite may pair the old timestamp with the new value (or vice
/// versa), which is acceptable for monitoring and avoided in practice
/// by the single-writer [`Sampler`] discipline.
#[derive(Debug)]
pub struct TimeSeries {
    t: Box<[AtomicU64]>,
    v: Box<[AtomicU64]>,
    head: AtomicU64,
}

impl TimeSeries {
    /// Creates a series retaining the most recent `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> TimeSeries {
        assert!(capacity > 0, "TimeSeries capacity must be nonzero");
        TimeSeries {
            t: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            v: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.t.len()
    }

    /// Total samples ever pushed (exceeds `capacity` once wrapped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Relaxed)
    }

    /// Samples overwritten by wrap-around.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.t.len() as u64)
    }

    /// Samples currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::try_from(self.recorded())
            .unwrap_or(usize::MAX)
            .min(self.t.len())
    }

    /// `true` when nothing has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// Appends a sample, overwriting the oldest when full.
    pub fn push(&self, t_nanos: u64, value: f64) {
        let seq = self.head.fetch_add(1, Relaxed);
        let slot = usize::try_from(seq % self.t.len() as u64).expect("mod of usize capacity");
        self.t[slot].store(t_nanos, Relaxed);
        self.v[slot].store(value.to_bits(), Relaxed);
    }

    /// The retained window, oldest first (best-effort under a concurrent
    /// writer).
    #[must_use]
    pub fn samples(&self) -> Vec<Sample> {
        let head = self.recorded();
        let cap = self.t.len() as u64;
        let oldest = head.saturating_sub(cap);
        (oldest..head)
            .map(|seq| {
                let slot = usize::try_from(seq % cap).expect("mod of usize capacity");
                Sample {
                    t_nanos: self.t[slot].load(Relaxed),
                    value: f64::from_bits(self.v[slot].load(Relaxed)),
                }
            })
            .collect()
    }

    /// The most recent sample, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Sample> {
        let head = self.recorded();
        if head == 0 {
            return None;
        }
        let slot =
            usize::try_from((head - 1) % self.t.len() as u64).expect("mod of usize capacity");
        Some(Sample {
            t_nanos: self.t[slot].load(Relaxed),
            value: f64::from_bits(self.v[slot].load(Relaxed)),
        })
    }

    /// Min/max/mean/last reduction over the retained window.
    #[must_use]
    pub fn summary(&self) -> SeriesSummary {
        let samples = self.samples();
        if samples.is_empty() {
            return SeriesSummary::default();
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for s in &samples {
            min = min.min(s.value);
            max = max.max(s.value);
            sum += s.value;
        }
        #[allow(clippy::cast_precision_loss)]
        SeriesSummary {
            count: samples.len() as u64,
            min,
            max,
            mean: sum / samples.len() as f64,
            last: samples.last().expect("nonempty").value,
        }
    }

    /// Exact `q`-quantile (`q` in `[0, 1]`, nearest-rank with clamping)
    /// over the retained window; 0.0 when empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let mut values: Vec<f64> = self.samples().iter().map(|s| s.value).collect();
        if values.is_empty() {
            return 0.0;
        }
        values.sort_by(f64::total_cmp);
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_sign_loss,
            clippy::cast_possible_truncation
        )]
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        values[rank - 1]
    }
}

/// A point-in-time reduction of a [`TimeSeries`] window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SeriesSummary {
    /// Retained samples.
    pub count: u64,
    /// Smallest retained value (0.0 when empty).
    pub min: f64,
    /// Largest retained value (0.0 when empty).
    pub max: f64,
    /// Mean retained value (0.0 when empty).
    pub mean: f64,
    /// Most recent value (0.0 when empty).
    pub last: f64,
}

impl SeriesSummary {
    /// The summary as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("count".to_owned(), Value::from(self.count)),
            ("min".to_owned(), Value::Num(self.min)),
            ("max".to_owned(), Value::Num(self.max)),
            ("mean".to_owned(), Value::Num(self.mean)),
            ("last".to_owned(), Value::Num(self.last)),
        ])
    }
}

/// A named registry of [`TimeSeries`] sharing one epoch.
///
/// Series names follow the Prometheus convention with optional labels:
/// `queue_depth{shard="0"}`. [`Telemetry::series`] get-or-creates, so
/// harvest code never checks registration; the registry lock guards only
/// the name table (pushes to an already-obtained series are lock-free).
#[derive(Debug)]
pub struct Telemetry {
    series: Mutex<Vec<(String, Arc<TimeSeries>)>>,
    capacity: usize,
    epoch: Instant,
}

impl Telemetry {
    /// Creates an empty registry whose series retain `capacity` samples
    /// each, measuring time from now.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Telemetry {
        assert!(capacity > 0, "Telemetry capacity must be nonzero");
        Telemetry {
            series: Mutex::new(Vec::new()),
            capacity,
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the registry's epoch.
    #[must_use]
    pub fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The registry's time base.
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Get-or-creates the series named `name`.
    #[must_use]
    pub fn series(&self, name: &str) -> Arc<TimeSeries> {
        let mut table = self.series.lock().expect("telemetry registry");
        if let Some((_, s)) = table.iter().find(|(n, _)| n == name) {
            return Arc::clone(s);
        }
        let s = Arc::new(TimeSeries::new(self.capacity));
        table.push((name.to_owned(), Arc::clone(&s)));
        s
    }

    /// The series named `name`, if registered.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<TimeSeries>> {
        self.series
            .lock()
            .expect("telemetry registry")
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| Arc::clone(s))
    }

    /// Registered series names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.series
            .lock()
            .expect("telemetry registry")
            .iter()
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Pushes `value` into `name`, stamped with the current epoch
    /// offset.
    pub fn record(&self, name: &str, value: f64) {
        self.series(name).push(self.now_nanos(), value);
    }

    /// The full registry as a JSON value: per-series samples (as
    /// `[t_nanos, value]` pairs) and window summaries.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let table = self.series.lock().expect("telemetry registry");
        Value::Obj(vec![
            ("capacity".to_owned(), Value::from(self.capacity)),
            (
                "series".to_owned(),
                Value::Arr(
                    table
                        .iter()
                        .map(|(name, s)| {
                            Value::Obj(vec![
                                ("name".to_owned(), Value::Str(name.clone())),
                                ("recorded".to_owned(), Value::from(s.recorded())),
                                ("dropped".to_owned(), Value::from(s.dropped())),
                                ("summary".to_owned(), s.summary().to_json()),
                                (
                                    "samples".to_owned(),
                                    Value::Arr(
                                        s.samples()
                                            .iter()
                                            .map(|p| {
                                                Value::Arr(vec![
                                                    Value::from(p.t_nanos),
                                                    Value::Num(p.value),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// one `# TYPE mobidx_<base> gauge` header per base name and one
    /// sample line (the latest value) per series. Series that have never
    /// recorded are skipped. Round-trips through [`parse_prometheus`].
    #[must_use]
    pub fn prometheus(&self) -> String {
        let table = self.series.lock().expect("telemetry registry");
        let mut out = String::new();
        let mut typed: Vec<String> = Vec::new();
        for (name, s) in table.iter() {
            let Some(latest) = s.latest() else {
                continue;
            };
            let (base, labels) = split_labels(name);
            let base = prometheus_name(base);
            if !typed.contains(&base) {
                out.push_str(&format!("# TYPE mobidx_{base} gauge\n"));
                typed.push(base.clone());
            }
            if latest.value.is_finite() {
                out.push_str(&format!("mobidx_{base}{labels} {}\n", latest.value));
            } else {
                out.push_str(&format!("mobidx_{base}{labels} NaN\n"));
            }
        }
        out
    }
}

/// Splits `queue_depth{shard="0"}` into `("queue_depth", "{shard=\"0\"}")`.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Maps an arbitrary base name onto the Prometheus metric-name alphabet
/// (`[a-zA-Z0-9_:]`, non-digit first).
fn prometheus_name(base: &str) -> String {
    let mut out: String = base
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// One sample line of a Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The metric name (including the `mobidx_` prefix).
    pub name: String,
    /// Label key/value pairs, in order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parses the subset of the Prometheus text exposition format that
/// [`Telemetry::prometheus`] emits: `# `-comments, blank lines, and
/// `name{labels} value` sample lines.
///
/// # Errors
/// Returns a message naming the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
        let (head, value) = line.rsplit_once(' ').ok_or_else(|| err("missing value"))?;
        let value = if value == "NaN" {
            f64::NAN
        } else {
            value.parse::<f64>().map_err(|_| err("bad value"))?
        };
        let (name, labels) = match head.find('{') {
            None => (head.to_owned(), Vec::new()),
            Some(i) => {
                let name = head[..i].to_owned();
                let body = head[i..]
                    .strip_prefix('{')
                    .and_then(|s| s.strip_suffix('}'))
                    .ok_or_else(|| err("unterminated labels"))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair.split_once('=').ok_or_else(|| err("bad label"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    labels.push((k.to_owned(), v.to_owned()));
                }
                (name, labels)
            }
        };
        if name.is_empty() {
            return Err(err("empty metric name"));
        }
        out.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

/// Shared stop signal of a [`Sampler`] thread.
#[derive(Debug, Default)]
struct SamplerSignal {
    stopped: Mutex<bool>,
    wake: Condvar,
}

/// A background thread invoking a harvest closure every `tick`.
///
/// The closure runs on the sampler thread; it is expected to read shared
/// atomics (health snapshots, I/O counters) and push into [`Telemetry`]
/// series. Dropping the sampler stops the thread promptly (the sleep is
/// a condvar wait, not a hard `sleep`) and joins it.
#[derive(Debug)]
pub struct Sampler {
    signal: Arc<SamplerSignal>,
    ticks: Arc<Counter>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Spawns the sampling thread: `harvest` runs once per `tick` until
    /// the sampler is dropped (first run after one tick).
    ///
    /// # Panics
    /// Panics if the thread cannot be spawned.
    #[must_use]
    pub fn spawn(tick: Duration, mut harvest: impl FnMut() + Send + 'static) -> Sampler {
        let signal = Arc::new(SamplerSignal::default());
        let ticks = Arc::new(Counter::new());
        let thread_signal = Arc::clone(&signal);
        let thread_ticks = Arc::clone(&ticks);
        let handle = std::thread::Builder::new()
            .name("mobidx-sampler".to_owned())
            .spawn(move || loop {
                let mut stopped = thread_signal.stopped.lock().expect("sampler signal");
                while !*stopped {
                    let (guard, timeout) = thread_signal
                        .wake
                        .wait_timeout(stopped, tick)
                        .expect("sampler signal");
                    stopped = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
                if *stopped {
                    return;
                }
                drop(stopped);
                harvest();
                thread_ticks.incr();
            })
            .expect("spawn sampler thread");
        Sampler {
            signal,
            ticks,
            handle: Some(handle),
        }
    }

    /// Completed harvest ticks.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks.get()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        *self.signal.stopped.lock().expect("sampler signal") = true;
        self.signal.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Sizing and thresholds of a [`WorkloadProfile`].
#[derive(Debug, Clone, Copy)]
pub struct ProfileConfig {
    /// Velocity-histogram bins over `[v_min, v_max]`.
    pub bins: usize,
    /// Smallest expected speed (|v|); slower observations clamp to the
    /// first bin.
    pub v_min: f64,
    /// Largest expected speed; faster observations clamp to the last
    /// bin.
    pub v_max: f64,
    /// Update observations per drift window.
    pub window: u64,
    /// L1 distance (in `[0, 2]`) above which a completed window raises a
    /// drift event.
    pub drift_threshold: f64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        // The paper's speed band (10–100 mph in miles/minute); 8 bins
        // keep per-window sampling noise at ~0.05 L1 for the default
        // 2000-observation window, an order of magnitude under the
        // threshold.
        Self {
            bins: 8,
            v_min: 0.16,
            v_max: 1.66,
            window: 2000,
            drift_threshold: 0.35,
        }
    }
}

/// The two drift distances between the current and reference velocity
/// windows (both over normalized histograms).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DriftScore {
    /// Total variation ×2: `Σ |p_i − q_i|`, in `[0, 2]`.
    pub l1: f64,
    /// Earth-mover's distance on the binned line, normalized by the
    /// histogram span so it lands in `[0, 1]`.
    pub emd: f64,
}

/// An online characterizer of the update/query stream with windowed
/// drift detection.
///
/// Updates feed the current window's velocity histogram through relaxed
/// atomics; every `window` observations the window closes (under a cold
/// mutex): the **first** completed window becomes the *reference*
/// distribution, and every later one is compared against it. The L1
/// distance lands in [`WorkloadProfile::drift_millis`] (a gauge, in
/// thousandths) and, when it crosses the threshold, a `drift` event
/// [`Span`] is pushed into the attached [`EventLog`]. A repartitioner
/// that has adapted to the new distribution calls
/// [`WorkloadProfile::rebaseline`] to make the next completed window the
/// new reference.
///
/// Queries feed a selectivity histogram (per-mille of the population)
/// so the profile also answers "what do queries look like" — the other
/// axis the index-advisor papers condition on.
#[derive(Debug)]
pub struct WorkloadProfile {
    cfg: ProfileConfig,
    /// Current-window velocity counts.
    bins: Box<[AtomicU64]>,
    /// Observations in the current window.
    window_obs: AtomicU64,
    /// Lifetime update observations.
    updates: Counter,
    /// Lifetime query observations.
    queries: Counter,
    /// Query selectivity in per-mille of the population.
    selectivity_pm: Histogram,
    /// Cold state: the reference distribution and rebaseline flag.
    state: Mutex<ProfileState>,
    /// Latest drift L1 distance, in thousandths (gauge exposition).
    drift_millis: Gauge,
    /// Latest scores, as bits (atomic f64).
    last_l1: AtomicU64,
    last_emd: AtomicU64,
    /// Completed windows.
    windows: Counter,
    /// Threshold crossings.
    drift_events: Counter,
    /// Sink for drift event spans.
    events: Option<Arc<EventLog>>,
    epoch: Instant,
}

#[derive(Debug, Default)]
struct ProfileState {
    reference: Option<Vec<f64>>,
    rebaseline: bool,
}

impl WorkloadProfile {
    /// Creates an empty profile measuring event times from now.
    ///
    /// # Panics
    /// Panics unless `bins ≥ 2`, `v_min < v_max`, and `window > 0`.
    #[must_use]
    pub fn new(cfg: ProfileConfig) -> WorkloadProfile {
        assert!(cfg.bins >= 2, "need at least two velocity bins");
        assert!(cfg.v_min < cfg.v_max, "empty speed band");
        assert!(cfg.window > 0, "empty drift window");
        WorkloadProfile {
            cfg,
            bins: (0..cfg.bins).map(|_| AtomicU64::new(0)).collect(),
            window_obs: AtomicU64::new(0),
            updates: Counter::new(),
            queries: Counter::new(),
            selectivity_pm: Histogram::new(),
            state: Mutex::new(ProfileState::default()),
            drift_millis: Gauge::new(),
            last_l1: AtomicU64::new(0f64.to_bits()),
            last_emd: AtomicU64::new(0f64.to_bits()),
            windows: Counter::new(),
            drift_events: Counter::new(),
            events: None,
            epoch: Instant::now(),
        }
    }

    /// Attaches an [`EventLog`] that receives a `drift` span whenever a
    /// completed window crosses the threshold (builder-style).
    #[must_use]
    pub fn with_event_log(mut self, events: Arc<EventLog>) -> WorkloadProfile {
        self.events = Some(events);
        self
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ProfileConfig {
        &self.cfg
    }

    /// Records one motion update's velocity (sign is ignored — the
    /// partitioning papers band by speed). Closes the window when it
    /// fills.
    pub fn record_update(&self, velocity: f64) {
        self.updates.incr();
        self.bins[self.bin_of(velocity.abs())].fetch_add(1, Relaxed);
        let n = self.window_obs.fetch_add(1, Relaxed) + 1;
        if n % self.cfg.window == 0 {
            self.close_window();
        }
    }

    /// Records one answered query: `results` of `population` objects
    /// matched (selectivity tracked in per-mille).
    pub fn record_query(&self, results: u64, population: u64) {
        self.queries.incr();
        if let Some(pm) = (results * 1000).checked_div(population) {
            self.selectivity_pm.record(pm);
        }
    }

    /// Lifetime update observations.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates.get()
    }

    /// Lifetime query observations.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Updates per query (`f64::INFINITY` before the first query).
    #[must_use]
    pub fn update_query_ratio(&self) -> f64 {
        let q = self.queries();
        #[allow(clippy::cast_precision_loss)]
        if q == 0 {
            f64::INFINITY
        } else {
            self.updates() as f64 / q as f64
        }
    }

    /// The query-selectivity histogram (per-mille of the population).
    #[must_use]
    pub fn selectivity_per_mille(&self) -> &Histogram {
        &self.selectivity_pm
    }

    /// Current-window per-band observation counts (the live velocity
    /// histogram; resets every window close).
    #[must_use]
    pub fn band_counts(&self) -> Vec<u64> {
        self.bins.iter().map(|b| b.load(Relaxed)).collect()
    }

    /// The reference distribution (normalized), once the first window
    /// has completed.
    #[must_use]
    pub fn reference(&self) -> Option<Vec<f64>> {
        self.state.lock().expect("profile state").reference.clone()
    }

    /// Latest drift scores (zero until the second window completes).
    #[must_use]
    pub fn drift(&self) -> DriftScore {
        DriftScore {
            l1: f64::from_bits(self.last_l1.load(Relaxed)),
            emd: f64::from_bits(self.last_emd.load(Relaxed)),
        }
    }

    /// Latest L1 drift in thousandths — the gauge the serving tier
    /// exposes.
    #[must_use]
    pub fn drift_millis(&self) -> u64 {
        self.drift_millis.get()
    }

    /// Completed drift windows.
    #[must_use]
    pub fn windows_closed(&self) -> u64 {
        self.windows.get()
    }

    /// Windows whose drift crossed the threshold.
    #[must_use]
    pub fn drift_events(&self) -> u64 {
        self.drift_events.get()
    }

    /// Makes the next completed window the new reference (call after
    /// adapting — e.g. repartitioning — to the drifted distribution).
    /// Also clears the drift gauge.
    pub fn rebaseline(&self) {
        let mut state = self.state.lock().expect("profile state");
        state.reference = None;
        state.rebaseline = false;
        self.drift_millis.set(0);
        self.last_l1.store(0f64.to_bits(), Relaxed);
        self.last_emd.store(0f64.to_bits(), Relaxed);
    }

    /// The profile as a JSON value (configuration, mix, selectivity
    /// percentiles, band counts, drift state).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let sel = self.selectivity_pm.snapshot();
        let drift = self.drift();
        let ratio = self.update_query_ratio();
        Value::Obj(vec![
            ("bins".to_owned(), Value::from(self.cfg.bins)),
            ("v_min".to_owned(), Value::Num(self.cfg.v_min)),
            ("v_max".to_owned(), Value::Num(self.cfg.v_max)),
            ("window".to_owned(), Value::from(self.cfg.window)),
            (
                "drift_threshold".to_owned(),
                Value::Num(self.cfg.drift_threshold),
            ),
            ("updates".to_owned(), Value::from(self.updates())),
            ("queries".to_owned(), Value::from(self.queries())),
            (
                "update_query_ratio".to_owned(),
                if ratio.is_finite() {
                    Value::Num(ratio)
                } else {
                    Value::Null
                },
            ),
            (
                "selectivity_per_mille".to_owned(),
                Value::Obj(vec![
                    ("count".to_owned(), Value::from(sel.count)),
                    ("mean".to_owned(), Value::Num(sel.mean)),
                    ("p50".to_owned(), Value::from(sel.p50)),
                    ("p95".to_owned(), Value::from(sel.p95)),
                    ("p99".to_owned(), Value::from(sel.p99)),
                    ("max".to_owned(), Value::from(sel.max)),
                ]),
            ),
            (
                "band_counts".to_owned(),
                Value::Arr(self.band_counts().into_iter().map(Value::from).collect()),
            ),
            (
                "reference".to_owned(),
                match self.reference() {
                    Some(r) => Value::Arr(r.into_iter().map(Value::Num).collect()),
                    None => Value::Null,
                },
            ),
            ("drift_l1".to_owned(), Value::Num(drift.l1)),
            ("drift_emd".to_owned(), Value::Num(drift.emd)),
            (
                "windows_closed".to_owned(),
                Value::from(self.windows_closed()),
            ),
            ("drift_events".to_owned(), Value::from(self.drift_events())),
        ])
    }

    /// The bin holding speed `s` (clamped to the configured band).
    fn bin_of(&self, s: f64) -> usize {
        let span = self.cfg.v_max - self.cfg.v_min;
        #[allow(clippy::cast_precision_loss)]
        let frac = ((s - self.cfg.v_min) / span).clamp(0.0, 1.0) * self.cfg.bins as f64;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        (frac as usize).min(self.cfg.bins - 1)
    }

    /// Closes the current window: snapshot + reset the bins, then either
    /// adopt the window as the reference or score it against the
    /// reference.
    fn close_window(&self) {
        let mut state = self.state.lock().expect("profile state");
        let counts: Vec<u64> = self.bins.iter().map(|b| b.swap(0, Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return;
        }
        #[allow(clippy::cast_precision_loss)]
        let current: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
        self.windows.incr();
        let window_no = self.windows.get();
        match &state.reference {
            None => state.reference = Some(current),
            Some(reference) => {
                let score = histogram_distance(reference, &current);
                self.last_l1.store(score.l1.to_bits(), Relaxed);
                self.last_emd.store(score.emd.to_bits(), Relaxed);
                #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
                self.drift_millis.set((score.l1 * 1000.0).round() as u64);
                if score.l1 > self.cfg.drift_threshold {
                    self.drift_events.incr();
                    if let Some(events) = &self.events {
                        let t = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        events.push(Arc::new(
                            Span::leaf("drift", t, crate::span::SpanIo::default())
                                .with_attr("l1", score.l1)
                                .with_attr("emd", score.emd)
                                .with_attr("threshold", self.cfg.drift_threshold)
                                .with_attr("window", window_no),
                        ));
                    }
                }
            }
        }
    }
}

/// L1 and normalized earth-mover's distances between two normalized
/// histograms of equal length.
///
/// # Panics
/// Panics if the lengths differ.
#[must_use]
pub fn histogram_distance(p: &[f64], q: &[f64]) -> DriftScore {
    assert_eq!(p.len(), q.len(), "histogram arity mismatch");
    let mut l1 = 0.0;
    let mut cdf = 0.0;
    let mut emd = 0.0;
    for (a, b) in p.iter().zip(q) {
        l1 += (a - b).abs();
        cdf += a - b;
        emd += cdf.abs();
    }
    // On the unit-spaced binned line the EMD is the summed |CDF|
    // difference; dividing by (bins − 1) normalizes the span to 1, so a
    // full shift from the first to the last bin scores exactly 1.0.
    #[allow(clippy::cast_precision_loss)]
    DriftScore {
        l1,
        emd: if p.len() > 1 {
            emd / (p.len() - 1) as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_series_panics() {
        let _ = TimeSeries::new(0);
    }

    #[test]
    fn series_fills_wraps_and_reduces() {
        let s = TimeSeries::new(4);
        assert!(s.is_empty());
        assert_eq!(s.latest(), None);
        assert_eq!(s.summary(), SeriesSummary::default());
        for i in 0..6u64 {
            #[allow(clippy::cast_precision_loss)]
            s.push(i * 100, i as f64);
        }
        assert_eq!(s.recorded(), 6);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.len(), 4);
        let w = s.samples();
        assert_eq!(
            w.iter().map(|p| p.t_nanos).collect::<Vec<_>>(),
            [200, 300, 400, 500]
        );
        let sum = s.summary();
        assert_eq!(sum.count, 4);
        assert!((sum.min - 2.0).abs() < 1e-12);
        assert!((sum.max - 5.0).abs() < 1e-12);
        assert!((sum.mean - 3.5).abs() < 1e-12);
        assert!((sum.last - 5.0).abs() < 1e-12);
        assert!((s.quantile(0.0) - 2.0).abs() < 1e-12);
        assert!((s.quantile(0.5) - 3.0).abs() < 1e-12);
        assert!((s.quantile(1.0) - 5.0).abs() < 1e-12);
        assert_eq!(s.latest().expect("nonempty").t_nanos, 500);
    }

    #[test]
    fn series_quantile_empty_is_zero() {
        let s = TimeSeries::new(2);
        assert!(s.quantile(0.9).abs() < 1e-12);
    }

    #[test]
    fn concurrent_pushes_never_lose_count() {
        let s = Arc::new(TimeSeries::new(64));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        #[allow(clippy::cast_precision_loss)]
                        s.push(t * 1000 + i, i as f64);
                    }
                });
            }
        });
        assert_eq!(s.recorded(), 800);
        assert_eq!(s.len(), 64);
        assert!(s.samples().iter().all(|p| p.value >= 0.0));
    }

    #[test]
    fn registry_get_or_creates_and_records() {
        let t = Telemetry::new(8);
        let a = t.series("queue_depth{shard=\"0\"}");
        let b = t.series("queue_depth{shard=\"0\"}");
        assert!(Arc::ptr_eq(&a, &b), "same name, same series");
        t.record("queue_depth{shard=\"0\"}", 3.0);
        t.record("io_reads", 17.0);
        assert_eq!(a.len(), 1);
        assert_eq!(t.names().len(), 2);
        assert!(t.get("io_reads").is_some());
        assert!(t.get("missing").is_none());
    }

    #[test]
    fn telemetry_json_parses_and_carries_samples() {
        let t = Telemetry::new(4);
        t.record("x", 1.5);
        t.record("x", 2.5);
        let doc = Value::parse(&t.to_json().render_pretty()).expect("valid JSON");
        let series = doc.get("series").and_then(Value::as_array).expect("series");
        assert_eq!(series.len(), 1);
        let samples = series[0]
            .get("samples")
            .and_then(Value::as_array)
            .expect("samples");
        assert_eq!(samples.len(), 2);
        let pair = samples[1].as_array().expect("pair");
        assert!((pair[1].as_f64().expect("value") - 2.5).abs() < 1e-12);
        let summary = series[0].get("summary").expect("summary");
        assert_eq!(summary.get("count").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn prometheus_round_trips() {
        let t = Telemetry::new(4);
        t.record("queue_depth{shard=\"0\"}", 3.0);
        t.record("queue_depth{shard=\"1\"}", 5.0);
        t.record("drift_l1", 0.125);
        let _ = t.series("never_recorded");
        let text = t.prometheus();
        assert_eq!(
            text.matches("# TYPE mobidx_queue_depth gauge").count(),
            1,
            "one TYPE line per base name: {text}"
        );
        assert!(!text.contains("never_recorded"));
        let samples = parse_prometheus(&text).expect("parses");
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "mobidx_queue_depth");
        assert_eq!(samples[0].labels, [("shard".to_owned(), "0".to_owned())]);
        assert!((samples[1].value - 5.0).abs() < 1e-12);
        assert_eq!(samples[2].name, "mobidx_drift_l1");
        assert!(samples[2].labels.is_empty());
        assert!((samples[2].value - 0.125).abs() < 1e-12);
    }

    /// The WAL counter series the durable serving tier publishes
    /// (`wal_records`/`wal_fsyncs` per shard, `_total` aggregates, and
    /// the pager's `wal_bytes`/`wal_replayed` names) survive the text
    /// exposition round trip with labels and values intact.
    #[test]
    fn prometheus_round_trips_wal_counter_series() {
        let t = Telemetry::new(4);
        t.record("wal_records{shard=\"0\"}", 12.0);
        t.record("wal_records{shard=\"1\"}", 7.0);
        t.record("wal_fsyncs{shard=\"0\"}", 3.0);
        t.record("wal_records_total", 19.0);
        t.record("wal_fsyncs_total", 3.0);
        t.record("wal_bytes", 4096.0);
        t.record("wal_replayed", 42.0);
        let text = t.prometheus();
        assert_eq!(
            text.matches("# TYPE mobidx_wal_records gauge").count(),
            1,
            "per-shard wal_records share one TYPE header: {text}"
        );
        let samples = parse_prometheus(&text).expect("parses");
        assert_eq!(samples.len(), 7);
        let value_of = |name: &str, labels: &[(&str, &str)]| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && s.labels.len() == labels.len()
                        && labels
                            .iter()
                            .all(|&(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
                })
                .unwrap_or_else(|| panic!("missing {name} {labels:?} in: {text}"))
                .value
        };
        assert!((value_of("mobidx_wal_records", &[("shard", "0")]) - 12.0).abs() < 1e-12);
        assert!((value_of("mobidx_wal_records", &[("shard", "1")]) - 7.0).abs() < 1e-12);
        assert!((value_of("mobidx_wal_fsyncs", &[("shard", "0")]) - 3.0).abs() < 1e-12);
        assert!((value_of("mobidx_wal_records_total", &[]) - 19.0).abs() < 1e-12);
        assert!((value_of("mobidx_wal_fsyncs_total", &[]) - 3.0).abs() < 1e-12);
        assert!((value_of("mobidx_wal_bytes", &[]) - 4096.0).abs() < 1e-12);
        assert!((value_of("mobidx_wal_replayed", &[]) - 42.0).abs() < 1e-12);
    }

    #[test]
    fn prometheus_parser_rejects_malformed() {
        for bad in ["novalue", "x{unterminated 1", "x{k=v} 1", " 3", "x one"] {
            assert!(parse_prometheus(bad).is_err(), "accepted: {bad}");
        }
        assert!(parse_prometheus("# comment\n\n").expect("ok").is_empty());
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("s0/io reads"), "s0_io_reads");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name(""), "_");
    }

    #[test]
    fn sampler_ticks_and_stops() {
        let t = Arc::new(Telemetry::new(64));
        let series = t.series("tick");
        let sampler = {
            let series = Arc::clone(&series);
            let t = Arc::clone(&t);
            Sampler::spawn(Duration::from_millis(5), move || {
                series.push(t.now_nanos(), 1.0);
            })
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        while sampler.ticks() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(sampler.ticks() >= 3, "sampler never ticked");
        drop(sampler);
        let after = series.recorded();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(series.recorded(), after, "sampler kept running after drop");
    }

    fn profile_cfg(window: u64) -> ProfileConfig {
        ProfileConfig {
            bins: 4,
            v_min: 0.0,
            v_max: 4.0,
            window,
            drift_threshold: 0.5,
        }
    }

    #[test]
    fn stationary_profile_never_fires() {
        let p = WorkloadProfile::new(profile_cfg(40));
        for round in 0..10 {
            for i in 0..40 {
                #[allow(clippy::cast_precision_loss)]
                p.record_update(((i + round) % 4) as f64 + 0.5);
            }
        }
        assert_eq!(p.windows_closed(), 10);
        assert_eq!(p.drift_events(), 0, "uniform stream must not drift");
        assert!(p.drift().l1 < 0.1, "l1 = {}", p.drift().l1);
    }

    #[test]
    fn shifted_distribution_fires_and_rebaseline_clears() {
        let log = Arc::new(EventLog::new(8));
        let p = WorkloadProfile::new(profile_cfg(40)).with_event_log(Arc::clone(&log));
        // Reference window: everything in bin 0.
        for _ in 0..40 {
            p.record_update(0.5);
        }
        assert_eq!(p.windows_closed(), 1);
        assert_eq!(p.drift_events(), 0, "first window only sets the reference");
        // Drifted window: everything in bin 3.
        for _ in 0..40 {
            p.record_update(3.5);
        }
        let d = p.drift();
        assert!(
            (d.l1 - 2.0).abs() < 1e-9,
            "disjoint histograms: l1 = {}",
            d.l1
        );
        assert!((d.emd - 1.0).abs() < 1e-9, "full shift: emd = {}", d.emd);
        assert_eq!(p.drift_millis(), 2000);
        assert_eq!(p.drift_events(), 1);
        let spans = log.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "drift");
        assert!(spans[0].attr("l1").is_some());
        assert_eq!(spans[0].attr_u64("window"), Some(2));
        // After rebaseline the next window becomes the new reference and
        // an identical follow-up window scores zero.
        p.rebaseline();
        assert_eq!(p.drift_millis(), 0);
        for _ in 0..80 {
            p.record_update(3.5);
        }
        assert_eq!(p.drift_events(), 1, "no new event after rebaseline");
        assert!(p.drift().l1 < 1e-9);
    }

    #[test]
    fn profile_tracks_mix_and_selectivity() {
        let p = WorkloadProfile::new(profile_cfg(1000));
        assert!(p.update_query_ratio().is_infinite());
        for _ in 0..30 {
            p.record_update(1.0);
        }
        p.record_query(100, 1000); // 10 % ⇒ 100 per-mille
        p.record_query(10, 1000);
        p.record_query(5, 0); // empty population: counted, not recorded
        assert_eq!(p.updates(), 30);
        assert_eq!(p.queries(), 3);
        assert!((p.update_query_ratio() - 10.0).abs() < 1e-12);
        assert_eq!(p.selectivity_per_mille().count(), 2);
        assert_eq!(p.selectivity_per_mille().max(), 100);
        assert_eq!(p.band_counts().iter().sum::<u64>(), 30);
    }

    #[test]
    fn profile_json_parses() {
        let p = WorkloadProfile::new(profile_cfg(10));
        for i in 0..25 {
            #[allow(clippy::cast_precision_loss)]
            p.record_update(f64::from(i % 4) + 0.1);
        }
        p.record_query(7, 100);
        let doc = Value::parse(&p.to_json().render_pretty()).expect("valid JSON");
        assert_eq!(doc.get("windows_closed").and_then(Value::as_u64), Some(2));
        assert_eq!(doc.get("updates").and_then(Value::as_u64), Some(25));
        let bands = doc
            .get("band_counts")
            .and_then(Value::as_array)
            .expect("band_counts");
        assert_eq!(bands.len(), 4);
        assert!(doc.get("reference").and_then(Value::as_array).is_some());
    }

    #[test]
    fn distance_identities() {
        let d = histogram_distance(&[0.5, 0.5], &[0.5, 0.5]);
        assert!(d.l1.abs() < 1e-12 && d.emd.abs() < 1e-12);
        let d = histogram_distance(&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]);
        assert!((d.l1 - 2.0).abs() < 1e-12);
        assert!((d.emd - 1.0).abs() < 1e-12);
        // A one-bin shift moves half as far as a two-bin shift.
        let d = histogram_distance(&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]);
        assert!((d.emd - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn distance_rejects_mismatched_arity() {
        let _ = histogram_distance(&[1.0], &[0.5, 0.5]);
    }
}
