//! Per-query trace spans.
//!
//! A [`QueryTrace`] is the record every index method produces around one
//! `query` call: the I/O delta, the number of candidate entries examined
//! before exact refinement vs the number of results returned (the false
//! hits of the §3.5.2 approximation method are `candidates − results`),
//! the wall-clock latency, and a per-store breakdown.

use crate::json::Value;
use crate::span::Span;

/// The I/O delta attributed to one internal page store during a traced
/// query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreTrace {
    /// Store label (e.g. `"obs3"`, `"static"`, `"gen0"`).
    pub store: String,
    /// Page reads during the query.
    pub reads: u64,
    /// Page writes during the query.
    pub writes: u64,
    /// Live pages of the store after the query.
    pub pages: u64,
}

/// The span recorded around one `query` call.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The method's display name.
    pub method: String,
    /// Candidate entries examined before exact refinement. Methods with
    /// no refinement step report the number of entries reported by the
    /// structure (then `candidates ≈ results`).
    pub candidates: u64,
    /// Results returned (after refinement + dedup).
    pub results: u64,
    /// Page reads during the query.
    pub reads: u64,
    /// Page writes during the query.
    pub writes: u64,
    /// Buffer-pool hits during the query.
    pub hits: u64,
    /// Wall-clock latency in nanoseconds.
    pub latency_nanos: u64,
    /// Per-store I/O breakdown; the component sums reconcile with the
    /// totals above.
    pub stores: Vec<StoreTrace>,
}

impl QueryTrace {
    /// The flat leaf view of a hierarchical [`Span`] tree.
    ///
    /// Totals (`reads`/`writes`/`hits`) come from [`Span::total_io`];
    /// `method`, `candidates` and `results` from the root's attributes
    /// (falling back to the root's name and 0); `latency_nanos` from the
    /// root's duration. Every descendant carrying a `store` attribute
    /// contributes one [`StoreTrace`], its label prefixed by the
    /// concatenated `store_prefix` attributes on the path from the root
    /// (how a sharded facade keeps `s<i>/` shard attribution without the
    /// tree shape).
    #[must_use]
    pub fn from_span(root: &Span) -> QueryTrace {
        fn collect(span: &Span, prefix: &str, out: &mut Vec<StoreTrace>) {
            let prefix = match span.attr_str("store_prefix") {
                Some(p) => format!("{prefix}{p}"),
                None => prefix.to_owned(),
            };
            if let Some(store) = span.attr_str("store") {
                out.push(StoreTrace {
                    store: format!("{prefix}{store}"),
                    reads: span.io.reads,
                    writes: span.io.writes,
                    pages: span.attr_u64("pages").unwrap_or(0),
                });
            }
            for c in &span.children {
                collect(c, &prefix, out);
            }
        }
        let mut stores = Vec::new();
        collect(root, "", &mut stores);
        let io = root.total_io();
        QueryTrace {
            method: root
                .attr_str("method")
                .unwrap_or(root.name.as_str())
                .to_owned(),
            candidates: root.attr_u64("candidates").unwrap_or(0),
            results: root.attr_u64("results").unwrap_or(0),
            reads: io.reads,
            writes: io.writes,
            hits: io.hits,
            latency_nanos: root.duration_nanos,
            stores,
        }
    }

    /// Reads + writes — the paper's query cost.
    #[must_use]
    pub fn ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of examined candidates that were false hits
    /// (`(candidates − results) / candidates`; 0 when nothing was
    /// examined). This quantifies the §3.5.2 rectangle approximation:
    /// the dual-B+ method scans a conservative `b`-range and discards
    /// non-matching speeds.
    #[must_use]
    pub fn false_hit_rate(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.candidates.saturating_sub(self.results) as f64 / self.candidates as f64
        }
    }

    /// Buffer hit rate during the query (`hits / (hits + reads)`; 0 when
    /// no pages were touched).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let touched = self.hits + self.reads;
        if touched == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.hits as f64 / touched as f64
        }
    }

    /// Folds another trace into this one — the fan-out aggregation of a
    /// sharded front end. Counter fields (`candidates`, `results`,
    /// `reads`, `writes`, `hits`) are summed; `latency_nanos` takes the
    /// maximum (fan-out legs run in parallel, so the slowest leg bounds
    /// the span); `other`'s stores are appended with `store_prefix`
    /// prepended to each label. Callers that deduplicate results across
    /// sources should overwrite `results` with the merged count
    /// afterwards (a disjoint partition makes the sum already exact).
    pub fn absorb(&mut self, other: &QueryTrace, store_prefix: &str) {
        self.candidates += other.candidates;
        self.results += other.results;
        self.reads += other.reads;
        self.writes += other.writes;
        self.hits += other.hits;
        self.latency_nanos = self.latency_nanos.max(other.latency_nanos);
        self.stores.extend(other.stores.iter().map(|s| StoreTrace {
            store: format!("{store_prefix}{}", s.store),
            ..s.clone()
        }));
    }

    /// The trace as a JSON value (for log lines and reports).
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("method".to_owned(), Value::Str(self.method.clone())),
            ("candidates".to_owned(), Value::from(self.candidates)),
            ("results".to_owned(), Value::from(self.results)),
            ("reads".to_owned(), Value::from(self.reads)),
            ("writes".to_owned(), Value::from(self.writes)),
            ("hits".to_owned(), Value::from(self.hits)),
            ("latency_nanos".to_owned(), Value::from(self.latency_nanos)),
            (
                "false_hit_rate".to_owned(),
                Value::Num(self.false_hit_rate()),
            ),
            (
                "stores".to_owned(),
                Value::Arr(
                    self.stores
                        .iter()
                        .map(|s| {
                            Value::Obj(vec![
                                ("store".to_owned(), Value::Str(s.store.clone())),
                                ("reads".to_owned(), Value::from(s.reads)),
                                ("writes".to_owned(), Value::from(s.writes)),
                                ("pages".to_owned(), Value::from(s.pages)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> QueryTrace {
        QueryTrace {
            method: "dual-B+ (c=6)".to_owned(),
            candidates: 40,
            results: 30,
            reads: 8,
            writes: 0,
            hits: 2,
            latency_nanos: 12_345,
            stores: vec![StoreTrace {
                store: "obs2".to_owned(),
                reads: 8,
                writes: 0,
                pages: 100,
            }],
        }
    }

    #[test]
    fn derived_rates() {
        let t = trace();
        assert_eq!(t.ios(), 8);
        assert!((t.false_hit_rate() - 0.25).abs() < 1e-12);
        assert!((t.hit_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rates_are_zero() {
        let t = QueryTrace {
            candidates: 0,
            results: 0,
            reads: 0,
            hits: 0,
            ..trace()
        };
        assert!(t.false_hit_rate().abs() < f64::EPSILON);
        assert!(t.hit_rate().abs() < f64::EPSILON);
    }

    #[test]
    fn more_results_than_candidates_saturates() {
        // Defensive: methods that don't count every source of results.
        let t = QueryTrace {
            candidates: 5,
            results: 9,
            ..trace()
        };
        assert!(t.false_hit_rate().abs() < f64::EPSILON);
    }

    #[test]
    fn absorb_aggregates_fan_out_legs() {
        let mut total = QueryTrace {
            method: "sharded".to_owned(),
            candidates: 0,
            results: 0,
            reads: 0,
            writes: 0,
            hits: 0,
            latency_nanos: 0,
            stores: Vec::new(),
        };
        let leg = trace();
        total.absorb(&leg, "s0/");
        let mut slow = trace();
        slow.latency_nanos = 99_999;
        total.absorb(&slow, "s1/");
        assert_eq!(total.candidates, 80);
        assert_eq!(total.results, 60);
        assert_eq!(total.reads, 16);
        assert_eq!(total.hits, 4);
        assert_eq!(total.latency_nanos, 99_999, "max, not sum");
        assert_eq!(total.stores.len(), 2);
        assert_eq!(total.stores[0].store, "s0/obs2");
        assert_eq!(total.stores[1].store, "s1/obs2");
    }

    #[test]
    fn from_span_flattens_the_tree() {
        use crate::span::{Span, SpanIo};
        let mut root = Span::leaf("query", 0, SpanIo::default())
            .with_attr("method", "sharded[2x id-hash]")
            .with_attr("candidates", 40u64)
            .with_attr("results", 30u64);
        root.duration_nanos = 9_000;
        for shard in 0..2u64 {
            let mut leg = Span::leaf(format!("s{shard}/execute"), 100, SpanIo::default())
                .with_attr("store_prefix", format!("s{shard}/").as_str());
            leg.children.push(
                Span::leaf(
                    "store/obs2",
                    150,
                    SpanIo {
                        reads: 4,
                        writes: 1,
                        hits: 2,
                    },
                )
                .with_attr("store", "obs2")
                .with_attr("pages", 50u64),
            );
            root.children.push(leg);
        }
        let t = QueryTrace::from_span(&root);
        assert_eq!(t.method, "sharded[2x id-hash]");
        assert_eq!(t.candidates, 40);
        assert_eq!(t.results, 30);
        assert_eq!(t.reads, 8);
        assert_eq!(t.writes, 2);
        assert_eq!(t.hits, 4);
        assert_eq!(t.latency_nanos, 9_000);
        assert_eq!(t.stores.len(), 2);
        assert_eq!(t.stores[0].store, "s0/obs2");
        assert_eq!(t.stores[1].store, "s1/obs2");
        assert_eq!(t.stores[0].pages, 50);
        let sum: u64 = t.stores.iter().map(|s| s.reads + s.writes).sum();
        assert_eq!(sum, t.ios(), "store breakdown reconciles with totals");
    }

    #[test]
    fn json_round_trips() {
        let t = trace();
        let rendered = t.to_json().render();
        let parsed = Value::parse(&rendered).expect("valid JSON");
        assert_eq!(
            parsed.get("method").and_then(Value::as_str),
            Some("dual-B+ (c=6)")
        );
        assert_eq!(parsed.get("candidates").and_then(Value::as_u64), Some(40));
        let stores = parsed.get("stores").and_then(Value::as_array).expect("arr");
        assert_eq!(stores.len(), 1);
        assert_eq!(stores[0].get("pages").and_then(Value::as_u64), Some(100));
    }
}
