//! # mobidx-obs — observability for the mobile-object index stack
//!
//! The reproduction's primary metric is the I/O count of the
//! external-memory model, but diagnosing *why* a method costs what it
//! costs needs more: buffer hit rates, candidate-vs-result ratios (the
//! §3.5.2 approximation's false hits), and wall-clock latency
//! distributions. This crate provides the shared, dependency-free
//! vocabulary for all of that:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-atomic scalars, safe to update
//!   through `&self` (no `Cell`, so instrumented types stay [`Sync`]);
//! * [`Histogram`] — a log-bucketed latency/value histogram with
//!   percentile estimation ([`Histogram::percentile`]) and cheap
//!   snapshots;
//! * [`Recorder`] — a sink trait for named metrics, with [`NoopRecorder`]
//!   (zero cost) and [`MemoryRecorder`] (in-process aggregation);
//! * [`Span`] / [`OpenSpan`] — hierarchical trace spans: one tree per
//!   query, `query → shard leg → index method → per-store I/O`, with
//!   wall-clock offsets from a shared epoch and leaf-attributed I/O
//!   deltas that reconcile with the I/O counters;
//! * [`EventLog`] — a bounded overwrite-on-wrap ring of recent spans;
//! * [`QueryTrace`] / [`StoreTrace`] — the flat per-query record every
//!   index method produces (a leaf view over a [`Span`] tree via
//!   [`QueryTrace::from_span`]): I/Os, candidates examined vs results
//!   returned, latency, per-store breakdown;
//! * [`json`] — a minimal JSON emitter + parser so the bench harness can
//!   write machine-readable `BENCH_*.json` reports without external
//!   crates, plus the Perfetto-loadable [`json::chrome_trace`] exporter;
//! * [`telemetry`] — the time axis: lock-free [`TimeSeries`] rings, a
//!   [`Sampler`] thread harvesting health state on a tick, the
//!   [`WorkloadProfile`] characterizer with windowed velocity-drift
//!   detection, and Prometheus/JSON exposition ([`Telemetry`]);
//! * [`slo`] — the judgment layer: declarative objectives with
//!   multi-window burn-rate alerting and EWMA anomaly detection over
//!   any registered series ([`SloEngine`]), emitting typed `alert`
//!   events into the [`EventLog`].

#![deny(missing_docs)]

mod event_log;
pub mod json;
mod metrics;
mod recorder;
pub mod slo;
mod span;
pub mod telemetry;
mod trace;

pub use event_log::EventLog;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use recorder::{MemoryRecorder, NoopRecorder, Recorder};
pub use slo::{ActiveAlert, AlertKind, AnomalySpec, Objective, SloEngine, SloSpec};
pub use span::{OpenSpan, Span, SpanIo};
pub use telemetry::{
    parse_prometheus, DriftScore, ProfileConfig, PromSample, Sample, Sampler, SeriesSummary,
    Telemetry, TimeSeries, WorkloadProfile,
};
pub use trace::{QueryTrace, StoreTrace};
