//! # mobidx-obs — observability for the mobile-object index stack
//!
//! The reproduction's primary metric is the I/O count of the
//! external-memory model, but diagnosing *why* a method costs what it
//! costs needs more: buffer hit rates, candidate-vs-result ratios (the
//! §3.5.2 approximation's false hits), and wall-clock latency
//! distributions. This crate provides the shared, dependency-free
//! vocabulary for all of that:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-atomic scalars, safe to update
//!   through `&self` (no `Cell`, so instrumented types stay [`Sync`]);
//! * [`Histogram`] — a log-bucketed latency/value histogram with
//!   percentile estimation ([`Histogram::percentile`]) and cheap
//!   snapshots;
//! * [`Recorder`] — a sink trait for named metrics, with [`NoopRecorder`]
//!   (zero cost) and [`MemoryRecorder`] (in-process aggregation);
//! * [`QueryTrace`] / [`StoreTrace`] — the per-query span every index
//!   method records: I/Os, candidates examined vs results returned,
//!   latency, per-store breakdown;
//! * [`json`] — a minimal JSON emitter + parser so the bench harness can
//!   write machine-readable `BENCH_*.json` reports without external
//!   crates.

pub mod json;
mod metrics;
mod recorder;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use recorder::{MemoryRecorder, NoopRecorder, Recorder};
pub use trace::{QueryTrace, StoreTrace};
