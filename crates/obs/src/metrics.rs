//! Atomic metric primitives: counters, gauges, log-bucketed histograms.
//!
//! Everything here updates through `&self` with relaxed atomics: metrics
//! are monotone tallies, not synchronization points, so no ordering
//! stronger than `Relaxed` is needed, and instrumented structures remain
//! `Sync` without locks.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A monotonically increasing event tally.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Adds one event.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current tally.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Relaxed);
    }
}

/// A last-value-wins instantaneous measurement.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a zeroed gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water tracking).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Adds one and returns the new value (e.g. queue depth on enqueue).
    pub fn incr(&self) -> u64 {
        self.0.fetch_add(1, Relaxed) + 1
    }

    /// Subtracts one, saturating at zero, and returns the new value.
    /// Saturation makes racy enqueue/dequeue accounting self-healing
    /// instead of wrapping to `u64::MAX`.
    pub fn decr(&self) -> u64 {
        let mut cur = self.0.load(Relaxed);
        loop {
            let next = cur.saturating_sub(1);
            match self.0.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => return next,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantization
/// error of any recorded value by `2^-SUB_BITS` (6.25%).
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Values below `SUBS` get exact unit-width buckets; each of the
/// remaining `64 - SUB_BITS` octaves contributes `SUBS` buckets.
const NUM_BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Index of the bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    SUBS + (msb - SUB_BITS) as usize * SUBS + sub
}

/// Smallest value mapping to bucket `i`, and the bucket's width.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUBS {
        return (i as u64, 1);
    }
    let octave = SUB_BITS + ((i - SUBS) / SUBS) as u32;
    let sub = ((i - SUBS) % SUBS) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    let low = (1u64 << octave) + sub * width;
    (low, width)
}

/// A log-bucketed histogram over `u64` values (latencies in nanoseconds,
/// I/O counts, result cardinalities, ...).
///
/// Buckets are power-of-two octaves split into 16 linear sub-buckets, so
/// any percentile estimate is within ~6% of the true value; the exact
/// minimum and maximum are tracked separately and returned exactly for
/// the 0th and 100th percentiles. Recording is lock-free (`&self`,
/// relaxed atomics).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Relaxed)
        }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Mean observation (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum.load(Relaxed) as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`), interpolating
    /// linearly within the containing bucket. `q = 0` returns the exact
    /// minimum and `q = 1` the exact maximum; an empty histogram
    /// reports 0.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let n = self.count();
        if n == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_sign_loss,
            clippy::cast_possible_truncation
        )]
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        if rank == n {
            return self.max();
        }
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Relaxed);
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= rank {
                let (low, width) = bucket_bounds(i);
                let pos = rank - (cum - c); // 1-based rank within bucket
                #[allow(
                    clippy::cast_precision_loss,
                    clippy::cast_sign_loss,
                    clippy::cast_possible_truncation
                )]
                let v = (low as f64 + width as f64 * (pos as f64 - 0.5) / c as f64) as u64;
                // The estimate stays inside the bucket and the observed range.
                return v
                    .clamp(low, low.saturating_add(width - 1))
                    .clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// [`Histogram::quantile`] under its historical name.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        self.quantile(q)
    }

    /// Estimated median — `quantile(0.50)`.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 90th percentile — `quantile(0.90)`.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Estimated 95th percentile — `quantile(0.95)`.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile — `quantile(0.99)`.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Takes a point-in-time summary (p50/p90/p99/max and friends).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            p50: self.p50(),
            p90: self.p90(),
            p95: self.p95(),
            p99: self.p99(),
            max: self.max(),
        }
    }

    /// Clears all buckets and summary state.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// A point-in-time percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Mean observation.
    pub mean: f64,
    /// Exact minimum.
    pub min: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_u64_without_gaps() {
        // Bucket lows are non-decreasing and each bucket starts where
        // the previous one ends.
        let mut expected_low = 0u64;
        for i in 0..NUM_BUCKETS {
            let (low, width) = bucket_bounds(i);
            assert_eq!(low, expected_low, "bucket {i}");
            assert_eq!(bucket_of(low), i, "low of bucket {i} maps back");
            assert_eq!(
                bucket_of(low + (width - 1)),
                i,
                "high of bucket {i} maps back"
            );
            expected_low = low.wrapping_add(width);
        }
        assert_eq!(expected_low, 0, "buckets end exactly at u64::MAX + 1");
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn zero_and_max_are_recorded_exactly() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert!(h.mean().abs() < f64::EPSILON);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        // 0..=100 once each: small values land in exact unit buckets, so
        // percentiles are exact there; larger ones are within the ~6%
        // sub-bucket quantization.
        let h = Histogram::new();
        for v in 0..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 50);
        let p90 = h.percentile(0.9);
        assert!((85..=95).contains(&p90), "p90 = {p90}");
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn quantization_error_is_bounded() {
        let h = Histogram::new();
        for v in [1_000u64, 50_000, 123_456, 9_999_999] {
            let solo = Histogram::new();
            solo.record(v);
            let est = solo.percentile(0.5);
            #[allow(clippy::cast_precision_loss)]
            let rel = (est as f64 - v as f64).abs() / v as f64;
            assert!(rel <= 0.0626, "value {v} estimated {est} (rel err {rel})");
            h.record(v);
        }
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn reset_empties() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_quantile_panics() {
        let h = Histogram::new();
        let _ = h.percentile(1.5);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn gauge_incr_decr_and_high_water() {
        let g = Gauge::new();
        assert_eq!(g.incr(), 1);
        assert_eq!(g.incr(), 2);
        assert_eq!(g.decr(), 1);
        assert_eq!(g.decr(), 0);
        assert_eq!(g.decr(), 0, "saturates at zero");
        let hw = Gauge::new();
        hw.set_max(3);
        hw.set_max(1);
        assert_eq!(hw.get(), 3, "set_max never lowers");
        hw.set_max(9);
        assert_eq!(hw.get(), 9);
    }

    #[test]
    fn histogram_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Histogram>();
        assert_sync::<Counter>();
        assert_sync::<Gauge>();
    }

    #[test]
    fn percentile_and_wrappers_agree_with_quantile() {
        let h = Histogram::new();
        for v in 0..=200u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), h.quantile(0.5));
        assert_eq!(h.p50(), h.quantile(0.50));
        assert_eq!(h.p90(), h.quantile(0.90));
        assert_eq!(h.p95(), h.quantile(0.95));
        assert_eq!(h.p99(), h.quantile(0.99));
        let snap = h.snapshot();
        assert_eq!(snap.p50, h.p50());
        assert_eq!(snap.p95, h.p95());
        assert_eq!(snap.p99, h.p99());
    }

    mod quantile_oracle {
        use super::super::*;
        use proptest::prelude::*;

        /// The exact nearest-rank quantile over the sorted sample.
        fn oracle(sorted: &[u64], q: f64) -> u64 {
            if q <= 0.0 {
                return sorted[0];
            }
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_sign_loss,
                clippy::cast_possible_truncation
            )]
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Against a sorted-sample oracle, every quantile estimate
            /// is inside the observed range, monotone in `q`, and
            /// within the documented ~6.25 % bucket quantization of the
            /// oracle value. The estimator uses the same nearest-rank
            /// rule as the oracle, so the estimate always lands in the
            /// bucket *containing* the oracle value — the error is
            /// bounded by one bucket width.
            #[test]
            fn quantile_tracks_sorted_oracle(
                mut values in prop::collection::vec(0u64..2_000_000, 1..300),
                mut qs in prop::collection::vec(0.0f64..=1.0, 1..8),
            ) {
                let h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                values.sort_unstable();
                let mut prev = h.quantile(0.0);
                prop_assert_eq!(prev, values[0], "q=0 is the exact min");
                prop_assert_eq!(h.quantile(1.0), *values.last().expect("nonempty"));
                qs.sort_by(f64::total_cmp);
                for &q in &qs {
                    let est = h.quantile(q);
                    prop_assert!(est >= prev, "quantile not monotone at q={q}");
                    prev = est;
                    prop_assert!(est >= values[0] && est <= *values.last().expect("nonempty"));
                    let want = oracle(&values, q);
                    #[allow(clippy::cast_precision_loss)]
                    let rel = (est as f64 - want as f64).abs() / (want.max(1)) as f64;
                    prop_assert!(
                        rel <= 0.0626 || est.abs_diff(want) <= 1,
                        "q={q}: est {est} vs oracle {want} (rel {rel})"
                    );
                }
            }
        }
    }
}
