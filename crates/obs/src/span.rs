//! Hierarchical trace spans.
//!
//! A [`Span`] is one timed node of a query's execution tree: a name, a
//! wall-clock interval (as nanosecond offsets from a shared epoch), the
//! I/O delta attributed to the node itself, free-form key=value
//! attributes, and child spans. A sharded query produces
//! `query → per-shard fan-out → worker execute → index method →
//! per-store I/O` as one reconcilable tree; the flat
//! [`QueryTrace`](crate::QueryTrace) is a leaf view derived from the
//! same data ([`QueryTrace::from_span`](crate::QueryTrace::from_span)).
//!
//! The accounting contract: instrumentation attributes I/O to **leaf**
//! spans (one per page store), interior spans carry zero of their own,
//! so [`Span::total_io`] — the recursive sum — reconciles exactly with
//! the [`IoTotals`]-style delta observed around the root.
//!
//! Spans are built through [`OpenSpan`], which captures the timing:
//! every span in one tree measures offsets from the *same* epoch
//! [`Instant`], so subtrees built on different threads (shard workers)
//! graft onto the facade's root with a consistent timeline — which is
//! what makes the Chrome trace export
//! ([`crate::json::chrome_trace`]) render one coherent lane per worker.

use crate::json::Value;
use std::time::Instant;

/// The I/O delta attributed to one span (exclusive of its children).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanIo {
    /// Page reads (buffer misses).
    pub reads: u64,
    /// Page writes (dirty write-backs / flushes).
    pub writes: u64,
    /// Buffer-pool hits.
    pub hits: u64,
}

impl SpanIo {
    /// Reads + writes — the paper's I/O cost.
    #[must_use]
    pub fn ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merge(self, other: SpanIo) -> SpanIo {
        SpanIo {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            hits: self.hits + other.hits,
        }
    }
}

/// One node of a hierarchical trace (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Display name (e.g. `"query"`, `"s2/execute"`, `"store/obs1"`).
    pub name: String,
    /// Start offset from the tree's shared epoch, in nanoseconds.
    pub start_nanos: u64,
    /// Wall-clock duration, in nanoseconds.
    pub duration_nanos: u64,
    /// I/O attributed to this span itself (zero for interior spans;
    /// leaves carry the per-store deltas).
    pub io: SpanIo,
    /// Key=value attributes (JSON values, insertion-ordered).
    pub attrs: Vec<(String, Value)>,
    /// Child spans, in start order.
    pub children: Vec<Span>,
}

impl Span {
    /// Creates a zero-duration leaf span at `start_nanos` (used for
    /// per-store I/O attribution, where the store's share of the parent
    /// interval is not separately timed).
    #[must_use]
    pub fn leaf(name: impl Into<String>, start_nanos: u64, io: SpanIo) -> Span {
        Span {
            name: name.into(),
            start_nanos,
            duration_nanos: 0,
            io,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Sets (or replaces) an attribute, builder-style.
    #[must_use]
    pub fn with_attr(mut self, key: &str, value: impl Into<Value>) -> Span {
        self.set_attr(key, value);
        self
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, key: &str, value: impl Into<Value>) {
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key.to_owned(), value));
        }
    }

    /// Attribute lookup.
    #[must_use]
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Attribute lookup as an unsigned integer.
    #[must_use]
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attr(key).and_then(Value::as_u64)
    }

    /// Attribute lookup as a string.
    #[must_use]
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attr(key).and_then(Value::as_str)
    }

    /// The recursive I/O sum over this span and every descendant. Since
    /// instrumentation attributes I/O to leaves only, this reconciles
    /// with the I/O-counter delta observed around the root.
    #[must_use]
    pub fn total_io(&self) -> SpanIo {
        self.children
            .iter()
            .fold(self.io, |acc, c| acc.merge(c.total_io()))
    }

    /// Number of spans in the tree (self included).
    #[must_use]
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(Span::span_count).sum::<usize>()
    }

    /// Depth-first search for the first descendant (or self) named
    /// `name`.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Visits self and every descendant, depth-first, parents first.
    pub fn visit(&self, f: &mut impl FnMut(&Span)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    /// The span tree as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut members = vec![
            ("name".to_owned(), Value::Str(self.name.clone())),
            ("start_nanos".to_owned(), Value::from(self.start_nanos)),
            (
                "duration_nanos".to_owned(),
                Value::from(self.duration_nanos),
            ),
            ("reads".to_owned(), Value::from(self.io.reads)),
            ("writes".to_owned(), Value::from(self.io.writes)),
            ("hits".to_owned(), Value::from(self.io.hits)),
        ];
        if !self.attrs.is_empty() {
            members.push(("attrs".to_owned(), Value::Obj(self.attrs.clone())));
        }
        if !self.children.is_empty() {
            members.push((
                "children".to_owned(),
                Value::Arr(self.children.iter().map(Span::to_json).collect()),
            ));
        }
        Value::Obj(members)
    }

    /// Rebuilds a span tree from its [`Span::to_json`] form.
    ///
    /// # Errors
    /// Returns a message naming the first missing or mistyped member.
    pub fn from_json(v: &Value) -> Result<Span, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("span: missing name")?
            .to_owned();
        let num = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
        let attrs = match v.get("attrs") {
            Some(Value::Obj(members)) => members.clone(),
            Some(_) => return Err(format!("span {name}: attrs is not an object")),
            None => Vec::new(),
        };
        let children = match v.get("children") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(Span::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(format!("span {name}: children is not an array")),
            None => Vec::new(),
        };
        Ok(Span {
            name,
            start_nanos: num("start_nanos"),
            duration_nanos: num("duration_nanos"),
            io: SpanIo {
                reads: num("reads"),
                writes: num("writes"),
                hits: num("hits"),
            },
            attrs,
            children,
        })
    }
}

/// An in-progress [`Span`]: captures the start against a shared epoch at
/// construction and the duration at [`OpenSpan::finish`].
///
/// ```
/// use mobidx_obs::{OpenSpan, SpanIo};
/// use std::time::Instant;
///
/// let epoch = Instant::now();
/// let mut root = OpenSpan::begin("query", epoch);
/// root.set_attr("method", "dual-B+ (c=6)");
/// let start = root.start_nanos();
/// root.push(mobidx_obs::Span::leaf("store/obs0", start, SpanIo {
///     reads: 4, writes: 0, hits: 1,
/// }));
/// let span = root.finish();
/// assert_eq!(span.total_io().reads, 4);
/// ```
#[derive(Debug)]
pub struct OpenSpan {
    start: Instant,
    span: Span,
}

impl OpenSpan {
    /// Opens a span now, measuring offsets from `epoch` (which must not
    /// be in the future; an earlier-than-epoch start saturates to 0).
    #[must_use]
    pub fn begin(name: impl Into<String>, epoch: Instant) -> OpenSpan {
        let start = Instant::now();
        OpenSpan {
            start,
            span: Span {
                name: name.into(),
                start_nanos: u64::try_from(start.saturating_duration_since(epoch).as_nanos())
                    .unwrap_or(u64::MAX),
                duration_nanos: 0,
                io: SpanIo::default(),
                attrs: Vec::new(),
                children: Vec::new(),
            },
        }
    }

    /// The start offset from the epoch, in nanoseconds.
    #[must_use]
    pub fn start_nanos(&self) -> u64 {
        self.span.start_nanos
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, key: &str, value: impl Into<Value>) {
        self.span.set_attr(key, value);
    }

    /// Sets the span's own (exclusive) I/O delta.
    pub fn set_io(&mut self, io: SpanIo) {
        self.span.io = io;
    }

    /// Appends a finished child span.
    pub fn push(&mut self, child: Span) {
        self.span.children.push(child);
    }

    /// Closes the span, stamping its wall-clock duration.
    #[must_use]
    pub fn finish(mut self) -> Span {
        self.span.duration_nanos =
            u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Span {
        let mut root = Span::leaf("query", 0, SpanIo::default()).with_attr("method", "m");
        root.duration_nanos = 5_000;
        let mut leg = Span::leaf("s0/execute", 100, SpanIo::default())
            .with_attr("shard", 0u64)
            .with_attr("store_prefix", "s0/");
        leg.children.push(
            Span::leaf(
                "store/obs0",
                150,
                SpanIo {
                    reads: 3,
                    writes: 1,
                    hits: 2,
                },
            )
            .with_attr("store", "obs0"),
        );
        root.children.push(leg);
        root.children.push(Span::leaf(
            "store/static",
            200,
            SpanIo {
                reads: 2,
                writes: 0,
                hits: 0,
            },
        ));
        root
    }

    #[test]
    fn total_io_sums_the_tree() {
        let t = tree();
        let io = t.total_io();
        assert_eq!(io.reads, 5);
        assert_eq!(io.writes, 1);
        assert_eq!(io.hits, 2);
        assert_eq!(io.ios(), 6);
        assert_eq!(t.span_count(), 4);
    }

    #[test]
    fn attrs_set_and_replace() {
        let mut s = Span::leaf("x", 0, SpanIo::default());
        s.set_attr("k", 1u64);
        s.set_attr("k", 2u64);
        assert_eq!(s.attr_u64("k"), Some(2));
        assert_eq!(s.attrs.len(), 1);
        assert!(s.attr("missing").is_none());
    }

    #[test]
    fn find_walks_depth_first() {
        let t = tree();
        assert!(t.find("store/obs0").is_some());
        assert_eq!(t.find("s0/execute").unwrap().attr_u64("shard"), Some(0));
        assert!(t.find("nope").is_none());
        let mut names = Vec::new();
        t.visit(&mut |s| names.push(s.name.clone()));
        assert_eq!(names[0], "query");
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn json_round_trips() {
        let t = tree();
        let rendered = t.to_json().render_pretty();
        let parsed = Value::parse(&rendered).expect("valid JSON");
        let back = Span::from_json(&parsed).expect("valid span");
        assert_eq!(back, t);
    }

    #[test]
    fn from_json_rejects_nameless() {
        assert!(Span::from_json(&Value::Obj(vec![])).is_err());
    }

    #[test]
    fn open_span_times_against_epoch() {
        let epoch = Instant::now();
        let mut open = OpenSpan::begin("root", epoch);
        open.set_attr("k", "v");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut child = OpenSpan::begin("child", epoch);
        child.set_io(SpanIo {
            reads: 1,
            writes: 0,
            hits: 0,
        });
        let child = child.finish();
        assert!(child.start_nanos >= 2_000_000, "child starts after sleep");
        let child_start = child.start_nanos;
        open.push(child);
        let root = open.finish();
        assert!(root.duration_nanos >= 2_000_000);
        assert!(root.start_nanos <= child_start);
        assert_eq!(root.total_io().reads, 1);
        assert_eq!(root.attr_str("k"), Some("v"));
    }

    #[test]
    fn epoch_in_the_future_saturates_to_zero() {
        let epoch = Instant::now() + std::time::Duration::from_secs(3600);
        let open = OpenSpan::begin("root", epoch);
        assert_eq!(open.start_nanos(), 0);
    }
}
