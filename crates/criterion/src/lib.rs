//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build container has no crates.io access; this shim is patched
//! over `crates-io` in the workspace manifest. It runs each registered
//! benchmark for a bounded number of timed iterations and prints
//! mean/min wall-clock times — enough to eyeball regressions locally.
//! (The I/O-count reproduction of the paper's figures lives in the
//! `figures` binary, which does not use criterion at all.)

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The per-benchmark timing driver.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_samples,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }

    /// Times `routine` on inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        #[allow(clippy::cast_possible_truncation)]
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("nonempty");
        println!(
            "{name:<50} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim always runs a fixed number
    /// of samples instead of a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Ends the group (no-op; printed incrementally).
    pub fn finish(&mut self) {}
}

/// The top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("## bench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(10);
        f(&mut b);
        b.report(&id.into());
        self
    }
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut count = 0u64;
        group.sample_size(3).bench_function("inc", |b| {
            b.iter(|| count += 1);
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| x * 2, BatchSize::SmallInput);
        });
        group.finish();
        assert!(count >= 3);
    }
}
