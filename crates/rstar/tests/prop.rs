//! Property tests: the R\*-tree must behave exactly like a brute-force
//! rectangle set under arbitrary insert/remove/query interleavings,
//! while keeping its structural invariants.

use mobidx_geom::Rect2;
use mobidx_rstar::{RStarConfig, RStarTree};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(Rect2, u64),
    RemoveNth(usize),
    Window(Rect2),
}

fn rect_strategy() -> impl Strategy<Value = Rect2> {
    (0.0f64..1000.0, 0.0f64..1000.0, 0.0f64..120.0, 0.0f64..120.0)
        .prop_map(|(x, y, w, h)| Rect2::from_bounds(x, y, x + w, y + h))
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (rect_strategy(), 0u64..100_000).prop_map(|(r, v)| Op::Insert(r, v)),
        2 => (0usize..512).prop_map(Op::RemoveNth),
        1 => rect_strategy().prop_map(Op::Window),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn matches_naive_set(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let mut tree: RStarTree<u64> = RStarTree::new(RStarConfig::with_max(6));
        let mut naive: Vec<(Rect2, u64)> = Vec::new();
        let mut next_unique = 0u64;
        for op in ops {
            match op {
                Op::Insert(r, v) => {
                    // Ensure (mbr, item) uniqueness for exact removal.
                    let v = v * 1000 + next_unique % 1000;
                    next_unique += 1;
                    tree.insert(r, v);
                    naive.push((r, v));
                }
                Op::RemoveNth(i) => {
                    if naive.is_empty() {
                        continue;
                    }
                    let (r, v) = naive.swap_remove(i % naive.len());
                    prop_assert!(tree.remove(r, v), "tree lost entry");
                }
                Op::Window(q) => {
                    let mut got: Vec<u64> =
                        tree.search(&q).into_iter().map(|(_, v)| v).collect();
                    got.sort_unstable();
                    let mut want: Vec<u64> = naive
                        .iter()
                        .filter(|(r, _)| r.intersects(&q))
                        .map(|&(_, v)| v)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), naive.len());
        }
        tree.check_invariants();
        let mut all: Vec<u64> = tree.collect_all().into_iter().map(|(_, v)| v).collect();
        all.sort_unstable();
        let mut want: Vec<u64> = naive.iter().map(|&(_, v)| v).collect();
        want.sort_unstable();
        prop_assert_eq!(all, want);
    }

    #[test]
    fn degenerate_rects_behave(points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..150)) {
        // Points as degenerate rectangles (the dual-plane use case).
        let mut tree: RStarTree<u64> = RStarTree::new(RStarConfig::with_max(5));
        for (i, &(x, y)) in points.iter().enumerate() {
            tree.insert(Rect2::from_bounds(x, y, x, y), i as u64);
        }
        tree.check_invariants();
        let q = Rect2::from_bounds(25.0, 25.0, 75.0, 75.0);
        let mut got: Vec<u64> = tree.search(&q).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| q.contains_point(mobidx_geom::Point2::new(x, y)))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
