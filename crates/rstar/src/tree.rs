//! The R\*-tree proper.

use crate::query::RectQuery;
use mobidx_geom::{Rect2, Relation};
use mobidx_pager::{Backend, IoStats, PageId, PageStore, PagerError, DEFAULT_BUFFER_PAGES};
use std::fmt::Debug;

const INFALLIBLE: &str = "pager fault (use the try_* API with fault-injecting backends)";

/// Sizing parameters of an R\*-tree.
#[derive(Debug, Clone, Copy)]
pub struct RStarConfig {
    /// Maximum entries per node (the paper's `B` = 204).
    pub max_entries: usize,
    /// Minimum entries per non-root node (Beckmann et al. recommend 40 %).
    pub min_entries: usize,
    /// Entries removed by forced reinsertion (30 % of `max_entries`).
    pub reinsert_count: usize,
    /// Buffer-pool capacity in pages.
    pub buffer_pages: usize,
}

impl Default for RStarConfig {
    fn default() -> Self {
        Self::with_max(crate::paper_entry_capacity())
    }
}

impl RStarConfig {
    /// Derives the 40 % / 30 % parameters from a node capacity.
    #[must_use]
    pub fn with_max(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R*-tree node capacity must be >= 4");
        Self {
            max_entries,
            min_entries: (max_entries * 2 / 5).max(1),
            reinsert_count: (max_entries * 3 / 10).max(1),
            buffer_pages: DEFAULT_BUFFER_PAGES,
        }
    }
}

/// One page of the tree.
#[derive(Debug, Clone)]
enum RNode<T> {
    Leaf(Vec<(Rect2, T)>),
    Branch(Vec<(Rect2, PageId)>),
}

impl<T> RNode<T> {
    fn occupancy(&self) -> usize {
        match self {
            RNode::Leaf(e) => e.len(),
            RNode::Branch(e) => e.len(),
        }
    }

    fn mbr(&self) -> Rect2 {
        let union = |rects: &mut dyn Iterator<Item = Rect2>| {
            let first = rects.next().expect("mbr of empty node");
            rects.fold(first, |acc, r| acc.union(&r))
        };
        match self {
            RNode::Leaf(e) => union(&mut e.iter().map(|&(r, _)| r)),
            RNode::Branch(e) => union(&mut e.iter().map(|&(r, _)| r)),
        }
    }
}

/// An entry detached from a node, pending (re)insertion at some level.
#[derive(Debug, Clone, Copy)]
enum Slot<T> {
    Item(T),
    Child(PageId),
}

/// A paged R\*-tree storing `(mbr, item)` pairs.
///
/// `item` equality (together with MBR equality) identifies entries for
/// [`RStarTree::remove`]; items are small `Copy` payloads (object ids,
/// route-segment ids).
#[derive(Debug)]
pub struct RStarTree<T: Copy + PartialEq + Debug> {
    store: PageStore<RNode<T>>,
    root: PageId,
    /// Number of levels; 1 means the root is a leaf.
    height: usize,
    len: usize,
    cfg: RStarConfig,
}

impl<T: Copy + PartialEq + Debug> RStarTree<T> {
    /// Creates an empty tree.
    #[must_use]
    pub fn new(cfg: RStarConfig) -> Self {
        let mut store = PageStore::new(cfg.buffer_pages);
        let root = store.allocate(RNode::Leaf(Vec::new()));
        Self {
            store,
            root,
            height: 1,
            len: 0,
            cfg,
        }
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 = root is a leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// I/O statistics of the underlying page store.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        self.store.stats()
    }

    /// Live pages — the space metric of Figure 8.
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.store.live_pages()
    }

    /// Flushes and empties the buffer pool.
    ///
    /// # Panics
    /// Panics on a pager fault; see [`RStarTree::try_clear_buffer`].
    pub fn clear_buffer(&mut self) {
        self.try_clear_buffer().expect(INFALLIBLE);
    }

    /// Fallible twin of [`RStarTree::clear_buffer`].
    ///
    /// # Errors
    /// Returns the first write-back fault; the buffer is drained anyway.
    pub fn try_clear_buffer(&mut self) -> Result<(), PagerError> {
        self.store.try_clear_buffer()
    }

    /// Replaces the page-store backend, returning the previous one.
    pub fn set_backend(&mut self, backend: Box<dyn Backend>) -> Box<dyn Backend> {
        self.store.set_backend(backend)
    }

    /// Inserts `(mbr, item)`.
    ///
    /// # Panics
    /// Panics on a pager fault; see [`RStarTree::try_insert`].
    pub fn insert(&mut self, mbr: Rect2, item: T) {
        self.try_insert(mbr, item).expect(INFALLIBLE);
    }

    /// Fallible twin of [`RStarTree::insert`].
    ///
    /// # Errors
    /// Surfaces pager faults; the tree may hold a partially applied
    /// insert (entry placed but overflow treatment unfinished).
    pub fn try_insert(&mut self, mbr: Rect2, item: T) -> Result<(), PagerError> {
        let mut reinserted = vec![false; self.height + 2];
        self.try_insert_at(mbr, Slot::Item(item), 1, &mut reinserted)?;
        self.len += 1;
        Ok(())
    }

    /// Removes the entry with exactly this `(mbr, item)`. Returns whether
    /// it was found.
    ///
    /// # Panics
    /// Panics on a pager fault; see [`RStarTree::try_remove`].
    pub fn remove(&mut self, mbr: Rect2, item: T) -> bool {
        self.try_remove(mbr, item).expect(INFALLIBLE)
    }

    /// Fallible twin of [`RStarTree::remove`].
    ///
    /// # Errors
    /// Surfaces pager faults; a fault mid-way may leave condensed nodes
    /// with pending orphan reinserts unapplied.
    pub fn try_remove(&mut self, mbr: Rect2, item: T) -> Result<bool, PagerError> {
        let mut orphans: Vec<(usize, Rect2, Slot<T>)> = Vec::new();
        let removed = self.try_remove_rec(self.root, self.height, &mbr, &item, &mut orphans)?;
        if !removed {
            debug_assert!(orphans.is_empty());
            return Ok(false);
        }
        self.len -= 1;
        // Shrink a root branch chain down to the first real fan-out.
        while self.height > 1 {
            let only = match self.store.try_read(self.root)? {
                RNode::Branch(entries) if entries.len() == 1 => Some(entries[0].1),
                _ => None,
            };
            match only {
                Some(child) => {
                    let _ = self.store.try_free(self.root)?;
                    self.root = child;
                    self.height -= 1;
                }
                None => break,
            }
        }
        // Reinsert orphaned entries at their original levels, highest
        // levels first.
        orphans.sort_by_key(|o| std::cmp::Reverse(o.0));
        for (level, mbr, slot) in orphans {
            let mut reinserted = vec![false; self.height + 2];
            self.try_insert_at(mbr, slot, level, &mut reinserted)?;
        }
        Ok(true)
    }

    /// Reports all `(mbr, item)` entries whose MBR is not disjoint from
    /// the query region (window rectangle or convex polygon).
    ///
    /// The result is *candidates* in the usual SAM sense: for non-point
    /// data (trajectory segments) the caller refines against the exact
    /// geometry, as the paper's baseline does.
    ///
    /// # Panics
    /// Panics on a pager fault; see [`RStarTree::try_search`].
    pub fn search<Q: RectQuery>(&mut self, query: &Q) -> Vec<(Rect2, T)> {
        self.try_search(query).expect(INFALLIBLE)
    }

    /// Fallible twin of [`RStarTree::search`].
    ///
    /// # Errors
    /// Surfaces pager faults.
    pub fn try_search<Q: RectQuery>(&mut self, query: &Q) -> Result<Vec<(Rect2, T)>, PagerError> {
        let mut out = Vec::new();
        self.try_search_with(query, |mbr, item| out.push((mbr, item)))?;
        Ok(out)
    }

    /// Visitor-style search (avoids allocating for large results).
    ///
    /// # Panics
    /// Panics on a pager fault; see [`RStarTree::try_search_with`].
    pub fn search_with<Q: RectQuery>(&mut self, query: &Q, visit: impl FnMut(Rect2, T)) {
        self.try_search_with(query, visit).expect(INFALLIBLE);
    }

    /// Fallible twin of [`RStarTree::search_with`].
    ///
    /// # Errors
    /// Surfaces pager faults; entries already visited stay visited.
    pub fn try_search_with<Q: RectQuery>(
        &mut self,
        query: &Q,
        mut visit: impl FnMut(Rect2, T),
    ) -> Result<(), PagerError> {
        if self.len == 0 {
            return Ok(());
        }
        let mut stack = vec![(self.root, self.height)];
        while let Some((pid, level)) = stack.pop() {
            if level > 1 {
                let kids: Vec<(PageId, usize)> = match self.store.try_read(pid)? {
                    RNode::Branch(entries) => entries
                        .iter()
                        .filter(|(r, _)| query.relation(r) != Relation::Disjoint)
                        .map(|&(_, c)| (c, level - 1))
                        .collect(),
                    RNode::Leaf(_) => unreachable!("leaf above leaf level"),
                };
                stack.extend(kids);
            } else {
                let hits: Vec<(Rect2, T)> = match self.store.try_read(pid)? {
                    RNode::Leaf(entries) => entries
                        .iter()
                        .filter(|(r, _)| query.relation(r) != Relation::Disjoint)
                        .copied()
                        .collect(),
                    RNode::Branch(_) => unreachable!("branch at leaf level"),
                };
                for (r, t) in hits {
                    visit(r, t);
                }
            }
        }
        Ok(())
    }

    /// All entries (uncounted access; for tests and audits).
    #[must_use]
    pub fn collect_all(&self) -> Vec<(Rect2, T)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            match self.store.peek(pid) {
                RNode::Leaf(entries) => out.extend_from_slice(entries),
                RNode::Branch(entries) => stack.extend(entries.iter().map(|&(_, c)| c)),
            }
        }
        out
    }

    /// Verifies structural invariants (uncounted access):
    /// * uniform leaf depth;
    /// * every branch entry's MBR equals the union of its child's MBRs;
    /// * occupancy within `[min, max]` (non-root);
    /// * `len` equals the number of leaf entries.
    ///
    /// # Panics
    /// Panics describing the first violated invariant.
    pub fn check_invariants(&self) {
        let mut count = 0usize;
        self.check_rec(self.root, self.height, None, &mut count);
        assert_eq!(count, self.len, "len does not match leaf contents");
    }

    fn check_rec(&self, pid: PageId, level: usize, expected_mbr: Option<Rect2>, count: &mut usize) {
        let node = self.store.peek(pid);
        let occ = node.occupancy();
        assert!(
            occ <= self.cfg.max_entries,
            "overfull node: {occ} > {}",
            self.cfg.max_entries
        );
        if expected_mbr.is_some() {
            // Non-root.
            assert!(
                occ >= self.cfg.min_entries,
                "underfull node: {occ} < {}",
                self.cfg.min_entries
            );
        }
        if let Some(expect) = expected_mbr {
            let actual = node.mbr();
            assert!(
                rect_close(&expect, &actual),
                "stale parent MBR: expected {expect:?}, actual {actual:?}"
            );
        }
        match node {
            RNode::Leaf(entries) => {
                assert_eq!(level, 1, "leaf at wrong depth");
                *count += entries.len();
            }
            RNode::Branch(entries) => {
                assert!(level > 1, "branch at leaf depth");
                for &(mbr, child) in entries.clone().iter() {
                    self.check_rec(child, level - 1, Some(mbr), count);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Insertion internals
    // ------------------------------------------------------------------

    fn try_insert_at(
        &mut self,
        mbr: Rect2,
        slot: Slot<T>,
        target_level: usize,
        reinserted: &mut Vec<bool>,
    ) -> Result<(), PagerError> {
        if reinserted.len() < self.height + 2 {
            reinserted.resize(self.height + 2, false);
        }
        let path = self.try_choose_path(&mbr, target_level)?;
        let target = *path.last().expect("empty path");
        let occ = self.store.try_write(target, |n| {
            match (&mut *n, slot) {
                (RNode::Leaf(entries), Slot::Item(item)) => entries.push((mbr, item)),
                (RNode::Branch(entries), Slot::Child(child)) => entries.push((mbr, child)),
                _ => unreachable!("slot kind does not match node kind"),
            }
            n.occupancy()
        })?;
        // Extend ancestor MBRs to cover the new entry.
        for w in path.windows(2) {
            let (parent, child) = (w[0], w[1]);
            self.store.try_write(parent, |n| {
                if let RNode::Branch(entries) = n {
                    let e = entries
                        .iter_mut()
                        .find(|(_, c)| *c == child)
                        .expect("path child missing from parent");
                    e.0 = e.0.union(&mbr);
                }
            })?;
        }
        if occ > self.cfg.max_entries {
            self.try_handle_overflow(path, target_level, reinserted)?;
        }
        Ok(())
    }

    /// Descends from the root to `target_level`, returning the node path.
    fn try_choose_path(
        &mut self,
        mbr: &Rect2,
        target_level: usize,
    ) -> Result<Vec<PageId>, PagerError> {
        debug_assert!(target_level <= self.height);
        let mut path = vec![self.root];
        let mut level = self.height;
        while level > target_level {
            let node = *path.last().expect("empty path");
            let next = match self.store.try_read(node)? {
                RNode::Branch(entries) => {
                    if level - 1 == 1 {
                        choose_subtree_leaf_level(entries, mbr)
                    } else {
                        choose_subtree_inner(entries, mbr)
                    }
                }
                RNode::Leaf(_) => unreachable!("leaf above target level"),
            };
            path.push(next);
            level -= 1;
        }
        Ok(path)
    }

    fn try_handle_overflow(
        &mut self,
        mut path: Vec<PageId>,
        mut level: usize,
        reinserted: &mut Vec<bool>,
    ) -> Result<(), PagerError> {
        loop {
            let node = *path.last().expect("empty path");
            if self.store.try_read(node)?.occupancy() <= self.cfg.max_entries {
                break;
            }
            let is_root = path.len() == 1;
            if !is_root && !reinserted[level] {
                reinserted[level] = true;
                self.try_forced_reinsert(&path, level, reinserted)?;
                break;
            }
            // Split.
            let (left_mbr, right_mbr, right_pid) = self.try_split_node(node)?;
            if is_root {
                let new_root = self.store.try_allocate(RNode::Branch(vec![
                    (left_mbr, node),
                    (right_mbr, right_pid),
                ]))?;
                self.root = new_root;
                self.height += 1;
                if reinserted.len() < self.height + 2 {
                    reinserted.resize(self.height + 2, false);
                }
                break;
            }
            let parent = path[path.len() - 2];
            self.store.try_write(parent, |n| {
                if let RNode::Branch(entries) = n {
                    let e = entries
                        .iter_mut()
                        .find(|(_, c)| *c == node)
                        .expect("split child missing from parent");
                    e.0 = left_mbr;
                    entries.push((right_mbr, right_pid));
                }
            })?;
            path.pop();
            level += 1;
        }
        Ok(())
    }

    /// Removes the `p` entries farthest from the node's center and
    /// reinserts them closest-first (Beckmann et al.'s "close reinsert").
    fn try_forced_reinsert(
        &mut self,
        path: &[PageId],
        level: usize,
        reinserted: &mut Vec<bool>,
    ) -> Result<(), PagerError> {
        let node = *path.last().expect("empty path");
        let p = self.cfg.reinsert_count;
        let removed: Vec<(Rect2, Slot<T>)> = self.store.try_write(node, |n| {
            let center = Rect2::point(n.mbr().center());
            match n {
                RNode::Leaf(entries) => {
                    sort_by_center_distance_desc(entries, &center);
                    entries
                        .drain(..p.min(entries.len().saturating_sub(1)))
                        .map(|(r, t)| (r, Slot::Item(t)))
                        .collect()
                }
                RNode::Branch(entries) => {
                    sort_by_center_distance_desc(entries, &center);
                    entries
                        .drain(..p.min(entries.len().saturating_sub(1)))
                        .map(|(r, c)| (r, Slot::Child(c)))
                        .collect()
                }
            }
        })?;
        self.try_recompute_path_mbrs(path)?;
        // Close reinsert: the drained list is farthest-first, so iterate
        // in reverse.
        for (mbr, slot) in removed.into_iter().rev() {
            self.try_insert_at(mbr, slot, level, reinserted)?;
        }
        Ok(())
    }

    /// Recomputes exact MBRs along a root-to-node path, bottom-up (used
    /// after entries have been removed, when MBRs may shrink).
    fn try_recompute_path_mbrs(&mut self, path: &[PageId]) -> Result<(), PagerError> {
        for w in path.windows(2).rev() {
            let (parent, child) = (w[0], w[1]);
            let child_mbr = self.store.try_read(child)?.mbr();
            self.store.try_write(parent, |n| {
                if let RNode::Branch(entries) = n {
                    let e = entries
                        .iter_mut()
                        .find(|(_, c)| *c == child)
                        .expect("path child missing from parent");
                    e.0 = child_mbr;
                }
            })?;
        }
        Ok(())
    }

    /// R\*-tree topological split: axis by minimum margin sum,
    /// distribution by minimum overlap (ties: minimum combined area).
    /// Returns `(left_mbr, right_mbr, right_pid)`.
    fn try_split_node(&mut self, node: PageId) -> Result<(Rect2, Rect2, PageId), PagerError> {
        let m = self.cfg.min_entries;
        enum SplitOut<T> {
            Leaf(Vec<(Rect2, T)>),
            Branch(Vec<(Rect2, PageId)>),
        }
        let (left_mbr, right_mbr, right_part) = self.store.try_write(node, |n| match n {
            RNode::Leaf(entries) => {
                let right = rstar_split(entries, m);
                (mbr_of(entries), mbr_of(&right), SplitOut::Leaf(right))
            }
            RNode::Branch(entries) => {
                let right = rstar_split(entries, m);
                (mbr_of(entries), mbr_of(&right), SplitOut::Branch(right))
            }
        })?;
        let right_pid = match right_part {
            SplitOut::Leaf(v) => self.store.try_allocate(RNode::Leaf(v))?,
            SplitOut::Branch(v) => self.store.try_allocate(RNode::Branch(v))?,
        };
        Ok((left_mbr, right_mbr, right_pid))
    }

    // ------------------------------------------------------------------
    // Deletion internals
    // ------------------------------------------------------------------

    fn try_remove_rec(
        &mut self,
        pid: PageId,
        level: usize,
        mbr: &Rect2,
        item: &T,
        orphans: &mut Vec<(usize, Rect2, Slot<T>)>,
    ) -> Result<bool, PagerError> {
        if level == 1 {
            return self.store.try_write(pid, |n| match n {
                RNode::Leaf(entries) => {
                    match entries.iter().position(|(r, t)| r == mbr && t == item) {
                        Some(pos) => {
                            entries.remove(pos);
                            true
                        }
                        None => false,
                    }
                }
                RNode::Branch(_) => unreachable!("branch at leaf level"),
            });
        }
        let candidates: Vec<PageId> = match self.store.try_read(pid)? {
            RNode::Branch(entries) => entries
                .iter()
                .filter(|(r, _)| r.contains_rect(mbr))
                .map(|&(_, c)| c)
                .collect(),
            RNode::Leaf(_) => unreachable!("leaf above leaf level"),
        };
        for child in candidates {
            if !self.try_remove_rec(child, level - 1, mbr, item, orphans)? {
                continue;
            }
            let occ = self.store.try_read(child)?.occupancy();
            if occ < self.cfg.min_entries {
                // Dissolve the child; its entries become orphans at the
                // child's level.
                let dissolved = self.store.try_read(child)?.clone();
                let _ = self.store.try_free(child)?;
                match dissolved {
                    RNode::Leaf(entries) => orphans.extend(
                        entries
                            .into_iter()
                            .map(|(r, t)| (level - 1, r, Slot::Item(t))),
                    ),
                    RNode::Branch(entries) => orphans.extend(
                        entries
                            .into_iter()
                            .map(|(r, c)| (level - 1, r, Slot::Child(c))),
                    ),
                }
                self.store.try_write(pid, |n| {
                    if let RNode::Branch(entries) = n {
                        let pos = entries
                            .iter()
                            .position(|(_, c)| *c == child)
                            .expect("dissolved child missing");
                        entries.remove(pos);
                    }
                })?;
            } else {
                let child_mbr = self.store.try_read(child)?.mbr();
                self.store.try_write(pid, |n| {
                    if let RNode::Branch(entries) = n {
                        let e = entries
                            .iter_mut()
                            .find(|(_, c)| *c == child)
                            .expect("child missing");
                        e.0 = child_mbr;
                    }
                })?;
            }
            return Ok(true);
        }
        Ok(false)
    }
}

// ----------------------------------------------------------------------
// Free helpers (entry-kind generic)
// ----------------------------------------------------------------------

fn mbr_of<X>(entries: &[(Rect2, X)]) -> Rect2 {
    let mut it = entries.iter().map(|&(r, _)| r);
    let first = it.next().expect("mbr of empty entry list");
    it.fold(first, |acc, r| acc.union(&r))
}

fn sort_by_center_distance_desc<X>(entries: &mut [(Rect2, X)], center: &Rect2) {
    entries.sort_by(|a, b| {
        let da = a.0.center_distance_sq(center);
        let db = b.0.center_distance_sq(center);
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
}

/// R\* choose-subtree at the level whose children are leaves: minimum
/// *overlap* enlargement, computed (as Beckmann et al. recommend) only for
/// the 32 entries with the least area enlargement.
fn choose_subtree_leaf_level(entries: &[(Rect2, PageId)], mbr: &Rect2) -> PageId {
    const CANDIDATES: usize = 32;
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        let ea = entries[a].0.enlargement(mbr);
        let eb = entries[b].0.enlargement(mbr);
        ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal)
    });
    order.truncate(CANDIDATES);

    let mut best = order[0];
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for &i in &order {
        let grown = entries[i].0.union(mbr);
        let mut overlap_delta = 0.0;
        for (j, &(other, _)) in entries.iter().enumerate() {
            if j != i {
                overlap_delta += grown.overlap_area(&other) - entries[i].0.overlap_area(&other);
            }
        }
        let key = (
            overlap_delta,
            entries[i].0.enlargement(mbr),
            entries[i].0.area(),
        );
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    entries[best].1
}

/// R\* choose-subtree above the leaf level: minimum area enlargement
/// (ties: minimum area).
fn choose_subtree_inner(entries: &[(Rect2, PageId)], mbr: &Rect2) -> PageId {
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for (i, &(r, _)) in entries.iter().enumerate() {
        let key = (r.enlargement(mbr), r.area());
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    entries[best].1
}

/// The R\*-tree split: mutates `entries` into the left group and returns
/// the right group.
fn rstar_split<X: Clone>(entries: &mut Vec<(Rect2, X)>, min_entries: usize) -> Vec<(Rect2, X)> {
    let n = entries.len();
    let m = min_entries.min(n / 2).max(1);
    debug_assert!(n >= 2 * m);

    // Candidate orders: (axis, by-upper?) — four sorts as in the paper.
    let orders: [(usize, bool); 4] = [(0, false), (0, true), (1, false), (1, true)];

    let sort_entries = |entries: &mut Vec<(Rect2, X)>, axis: usize, by_upper: bool| {
        entries.sort_by(|a, b| {
            let (pa, pb) = if by_upper {
                (
                    if axis == 0 { a.0.hi.x } else { a.0.hi.y },
                    if axis == 0 { b.0.hi.x } else { b.0.hi.y },
                )
            } else {
                (
                    if axis == 0 { a.0.lo.x } else { a.0.lo.y },
                    if axis == 0 { b.0.lo.x } else { b.0.lo.y },
                )
            };
            pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
        });
    };

    // Pass 1: pick the split axis by minimum total margin.
    let mut margin_by_axis = [0.0f64; 2];
    for &(axis, by_upper) in &orders {
        sort_entries(entries, axis, by_upper);
        let (prefix, suffix) = prefix_suffix_mbrs(entries);
        for k in m..=(n - m) {
            margin_by_axis[axis] += prefix[k - 1].margin() + suffix[k].margin();
        }
    }
    let split_axis = if margin_by_axis[0] <= margin_by_axis[1] {
        0
    } else {
        1
    };

    // Pass 2: on the chosen axis, pick sort order and split index by
    // minimum overlap (ties: minimum combined area).
    let mut best: Option<(bool, usize)> = None;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for by_upper in [false, true] {
        sort_entries(entries, split_axis, by_upper);
        let (prefix, suffix) = prefix_suffix_mbrs(entries);
        for k in m..=(n - m) {
            let left = prefix[k - 1];
            let right = suffix[k];
            let key = (left.overlap_area(&right), left.area() + right.area());
            if key < best_key {
                best_key = key;
                best = Some((by_upper, k));
            }
        }
    }
    let (by_upper, k) = best.expect("no split distribution found");
    sort_entries(entries, split_axis, by_upper);
    entries.split_off(k)
}

/// `prefix[i]` = MBR of entries `0..=i`; `suffix[i]` = MBR of `i..`.
fn prefix_suffix_mbrs<X>(entries: &[(Rect2, X)]) -> (Vec<Rect2>, Vec<Rect2>) {
    let n = entries.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = entries[0].0;
    for e in entries {
        acc = acc.union(&e.0);
        prefix.push(acc);
    }
    let mut suffix = vec![entries[n - 1].0; n];
    let mut acc = entries[n - 1].0;
    for i in (0..n).rev() {
        acc = acc.union(&entries[i].0);
        suffix[i] = acc;
    }
    (prefix, suffix)
}

fn rect_close(a: &Rect2, b: &Rect2) -> bool {
    let eps = 1e-7;
    (a.lo.x - b.lo.x).abs() < eps
        && (a.lo.y - b.lo.y).abs() < eps
        && (a.hi.x - b.hi.x).abs() < eps
        && (a.hi.y - b.hi.y).abs() < eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_geom::Point2;

    fn small_cfg() -> RStarConfig {
        let mut cfg = RStarConfig::with_max(8);
        cfg.buffer_pages = 4;
        cfg
    }

    fn pseudo_rects(n: usize, seed: u64) -> Vec<Rect2> {
        // Deterministic pseudo-random rects without external crates.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            #[allow(clippy::cast_precision_loss)]
            {
                (state % 10_000) as f64 / 10.0
            }
        };
        (0..n)
            .map(|_| {
                let x = next();
                let y = next();
                let w = next() / 100.0;
                let h = next() / 100.0;
                Rect2::from_bounds(x, y, x + w, y + h)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let mut t: RStarTree<u64> = RStarTree::new(small_cfg());
        assert!(t.is_empty());
        assert_eq!(t.search(&Rect2::from_bounds(0.0, 0.0, 1e9, 1e9)), vec![]);
        assert!(!t.remove(Rect2::point(Point2::new(0.0, 0.0)), 0));
        t.check_invariants();
    }

    #[test]
    fn window_query_matches_naive() {
        let rects = pseudo_rects(500, 7);
        let mut t: RStarTree<u64> = RStarTree::new(small_cfg());
        for (i, &r) in rects.iter().enumerate() {
            t.insert(r, i as u64);
        }
        t.check_invariants();
        assert_eq!(t.len(), 500);

        for (qi, q) in pseudo_rects(20, 99).iter().enumerate() {
            // Blow the query rect up a bit so results are non-trivial.
            let q = Rect2::from_bounds(q.lo.x, q.lo.y, q.lo.x + 150.0, q.lo.y + 150.0);
            let mut got: Vec<u64> = t.search(&q).into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(&q))
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi} mismatch");
        }
    }

    #[test]
    fn delete_then_query() {
        let rects = pseudo_rects(300, 3);
        let mut t: RStarTree<u64> = RStarTree::new(small_cfg());
        for (i, &r) in rects.iter().enumerate() {
            t.insert(r, i as u64);
        }
        // Delete every third entry.
        for (i, &r) in rects.iter().enumerate() {
            if i % 3 == 0 {
                assert!(t.remove(r, i as u64), "missing entry {i}");
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), 200);
        // Deleted entries are gone, others remain.
        let everything = Rect2::from_bounds(-1e6, -1e6, 1e6, 1e6);
        let mut got: Vec<u64> = t.search(&everything).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..300u64).filter(|i| i % 3 != 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_absent_entry_is_noop() {
        let mut t: RStarTree<u64> = RStarTree::new(small_cfg());
        let r = Rect2::from_bounds(0.0, 0.0, 1.0, 1.0);
        t.insert(r, 1);
        assert!(!t.remove(r, 2), "wrong item must not match");
        assert!(!t.remove(Rect2::from_bounds(0.0, 0.0, 2.0, 2.0), 1));
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn churn_keeps_invariants() {
        let rects = pseudo_rects(400, 11);
        let mut t: RStarTree<u64> = RStarTree::new(small_cfg());
        for (i, &r) in rects.iter().enumerate() {
            t.insert(r, i as u64);
            if i >= 50 && i % 2 == 0 {
                let j = i - 50;
                assert!(t.remove(rects[j], j as u64));
            }
        }
        t.check_invariants();
    }

    #[test]
    fn delete_everything() {
        let rects = pseudo_rects(150, 5);
        let mut t: RStarTree<u64> = RStarTree::new(small_cfg());
        for (i, &r) in rects.iter().enumerate() {
            t.insert(r, i as u64);
        }
        for (i, &r) in rects.iter().enumerate() {
            assert!(t.remove(r, i as u64));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants();
        // Space shrinks back to a single page.
        assert_eq!(t.live_pages(), 1);
    }

    #[test]
    fn duplicate_mbrs_with_distinct_items() {
        let mut t: RStarTree<u64> = RStarTree::new(small_cfg());
        let r = Rect2::from_bounds(1.0, 1.0, 2.0, 2.0);
        for i in 0..100u64 {
            t.insert(r, i);
        }
        t.check_invariants();
        assert!(t.remove(r, 57));
        assert!(!t.remove(r, 57));
        assert_eq!(t.len(), 99);
        let got = t.search(&r);
        assert_eq!(got.len(), 99);
    }

    #[test]
    fn point_query_costs_less_than_full_scan() {
        let rects = pseudo_rects(2000, 13);
        let mut t: RStarTree<u64> = RStarTree::new(RStarConfig::with_max(16));
        for (i, &r) in rects.iter().enumerate() {
            t.insert(r, i as u64);
        }
        t.clear_buffer();
        let snap = t.stats().snapshot();
        let q = Rect2::from_bounds(100.0, 100.0, 110.0, 110.0);
        let _ = t.search(&q);
        let cost = t.stats().since(&snap).reads;
        let total_pages = t.live_pages();
        assert!(
            cost < total_pages / 2,
            "small window query should not scan most pages ({cost} of {total_pages})"
        );
    }
}
