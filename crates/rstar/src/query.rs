//! Query regions an R\*-tree can search with.

use mobidx_geom::{Aabb, ConvexPolygon, QueryRegion, Rect2, Relation};

/// A query region that can classify an MBR.
///
/// Window queries and linear-constraint (simplex) queries share the same
/// tree traversal; only this classification differs — exactly the point
/// made by Goldstein et al. \[18\] and used by the paper in §3.5.1.
pub trait RectQuery {
    /// Relation of the rectangle `r` to the query region.
    fn relation(&self, r: &Rect2) -> Relation;
}

/// Orthogonal window query.
impl RectQuery for Rect2 {
    fn relation(&self, r: &Rect2) -> Relation {
        if !self.intersects(r) {
            Relation::Disjoint
        } else if self.contains_rect(r) {
            Relation::Contains
        } else {
            Relation::Overlaps
        }
    }
}

/// Linear-constraint (simplex) query.
impl RectQuery for ConvexPolygon {
    fn relation(&self, r: &Rect2) -> Relation {
        QueryRegion::<2>::cell_relation(self, &Aabb::new([r.lo.x, r.lo.y], [r.hi.x, r.hi.y]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_geom::HalfPlane;

    #[test]
    fn rect_window_relations() {
        let q = Rect2::from_bounds(0.0, 0.0, 10.0, 10.0);
        assert_eq!(
            q.relation(&Rect2::from_bounds(1.0, 1.0, 2.0, 2.0)),
            Relation::Contains
        );
        assert_eq!(
            q.relation(&Rect2::from_bounds(20.0, 20.0, 30.0, 30.0)),
            Relation::Disjoint
        );
        assert_eq!(
            q.relation(&Rect2::from_bounds(5.0, 5.0, 15.0, 15.0)),
            Relation::Overlaps
        );
    }

    #[test]
    fn polygon_query_relations() {
        // Triangle (0,0) (4,0) (0,4).
        let t = ConvexPolygon::new(vec![
            HalfPlane::x_ge(0.0),
            HalfPlane::y_ge(0.0),
            HalfPlane::new(1.0, 1.0, 4.0),
        ]);
        assert_eq!(
            t.relation(&Rect2::from_bounds(0.5, 0.5, 1.0, 1.0)),
            Relation::Contains
        );
        assert_eq!(
            t.relation(&Rect2::from_bounds(5.0, 5.0, 6.0, 6.0)),
            Relation::Disjoint
        );
        assert_eq!(
            t.relation(&Rect2::from_bounds(1.0, 1.0, 5.0, 5.0)),
            Relation::Overlaps
        );
    }
}
