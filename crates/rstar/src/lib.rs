//! # mobidx-rstar — a paged R\*-tree
//!
//! The paper's baseline (§3.1, §5) indexes trajectory line segments as
//! MBRs in an R\*-tree \[8\] and shows it performs poorly for mobile
//! objects: long, mutually-overlapping segment MBRs destroy the spatial
//! clustering R-trees rely on, queries touch most of the tree, and updates
//! cost "more than 90 I/Os". Reproducing those numbers requires a real
//! R\*-tree, so this crate implements the full Beckmann et al. algorithm:
//!
//! * **choose-subtree** — minimum overlap enlargement at the leaf level,
//!   minimum area enlargement above;
//! * **forced reinsertion** — on first overflow per level per insertion,
//!   the 30 % of entries farthest from the node center are reinserted
//!   ("close reinsert" order);
//! * **split** — axis by minimum margin sum, distribution by minimum
//!   overlap (ties: minimum area);
//! * **deletion** — condense-tree: underfull nodes are dissolved and their
//!   entries reinserted at their original levels.
//!
//! The tree also answers **linear-constraint (simplex) queries** through
//! the [`RectQuery`] trait — the technique of Goldstein et al. \[18\] that
//! the paper's §3.5.1 uses for dual-space point data.
//!
//! Page capacity follows the paper's arithmetic: a 20-byte entry (four
//! 4-byte coordinates + 4-byte pointer) on a 4096-byte page gives
//! `M = 204` ([`paper_entry_capacity`]).

mod query;
mod tree;

pub use query::RectQuery;
pub use tree::{RStarConfig, RStarTree};

use mobidx_pager::{page_capacity, DEFAULT_PAGE_SIZE};

/// Node capacity used in the paper's experiments: 20-byte entries on
/// 4096-byte pages ⇒ 204.
#[must_use]
pub fn paper_entry_capacity() -> usize {
    page_capacity(DEFAULT_PAGE_SIZE, 20)
}

#[cfg(test)]
mod capacity_tests {
    #[test]
    fn paper_capacity_is_204() {
        assert_eq!(super::paper_entry_capacity(), 204);
    }
}
