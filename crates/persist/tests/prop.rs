//! Property tests for the persistence machinery: every historical
//! version of the list must equal an eager replay, and crossing
//! enumeration must match the quadratic definition.

use mobidx_persist::{
    all_crossings, count_crossings, Occupant, PersistConfig, PersistentListBTree,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Versioned list ≡ replaying the swap prefix on a plain vector, at
    /// arbitrary probe times.
    #[test]
    fn versions_equal_replay(n in 2usize..60,
                             swaps in prop::collection::vec((0usize..64, 0.0f64..100.0), 1..150),
                             probes in prop::collection::vec(-1.0f64..120.0, 1..8),
                             page_records in 8usize..64) {
        let occupants: Vec<Occupant> = (0..n)
            .map(|i| Occupant { id: i as u64, y0: i as f64, v: 0.0 })
            .collect();
        let mut tree = PersistentListBTree::new(
            PersistConfig::small(page_records),
            occupants.clone(),
        );
        // Times must be monotone: sort the swap schedule.
        let mut schedule: Vec<(usize, f64)> =
            swaps.into_iter().map(|(p, t)| (p % (n - 1), t)).collect();
        schedule.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

        let mut replay = occupants.clone();
        let mut versions: Vec<(f64, Vec<Occupant>)> =
            vec![(f64::NEG_INFINITY, replay.clone())];
        for &(pos, t) in &schedule {
            tree.apply_swap(t, pos);
            replay.swap(pos, pos + 1);
            versions.push((t, replay.clone()));
        }
        for &probe in &probes {
            let idx = versions.partition_point(|&(t, _)| t <= probe);
            let want = &versions[idx - 1].1;
            let got = tree.snapshot_at(probe);
            prop_assert_eq!(&got, want, "probe {}", probe);
        }
    }

    /// Crossing enumeration == inversion count == quadratic oracle, and
    /// every event is a genuine meet.
    #[test]
    fn crossings_complete_and_correct(objs in prop::collection::vec((0.0f64..500.0, 0.2f64..2.0, prop::bool::ANY), 2..50),
                                      horizon in 1.0f64..500.0) {
        let objs: Vec<(f64, f64)> = objs
            .into_iter()
            .map(|(y, s, neg)| (y, if neg { -s } else { s }))
            .collect();
        let events = all_crossings(&objs, horizon);
        prop_assert_eq!(events.len(), count_crossings(&objs, horizon));
        for e in &events {
            let (ya, va) = objs[e.a];
            let (yb, vb) = objs[e.b];
            prop_assert!((ya + va * e.time - yb - vb * e.time).abs() < 1e-6);
            // b overtakes a: b is behind just before, ahead just after.
            let eps = 1e-7;
            let before = (yb + vb * (e.time - eps)) - (ya + va * (e.time - eps));
            let after = (yb + vb * (e.time + eps)) - (ya + va * (e.time + eps));
            prop_assert!(before < after, "overtaking direction violated");
        }
        // Sorted by time.
        prop_assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
    }

    /// Range queries on the live tree equal filtering the replayed list
    /// by computed positions (crossings applied in causal order).
    #[test]
    fn range_queries_on_moving_objects(seedless in prop::collection::vec((0.0f64..300.0, 0.3f64..1.5), 3..40),
                                       horizon in 10.0f64..100.0,
                                       probe_frac in 0.0f64..1.0,
                                       y_lo in 0.0f64..300.0, width in 1.0f64..100.0) {
        let objs = seedless;
        let mut order: Vec<usize> = (0..objs.len()).collect();
        order.sort_by(|&i, &j| {
            (objs[i].0, objs[i].1).partial_cmp(&(objs[j].0, objs[j].1)).unwrap()
        });
        let occupants: Vec<Occupant> = order
            .iter()
            .map(|&i| Occupant { id: i as u64, y0: objs[i].0, v: objs[i].1 })
            .collect();
        let mut tree = PersistentListBTree::new(PersistConfig::small(24), occupants);
        for e in all_crossings(&objs, horizon) {
            let pos = tree.position_of(e.b as u64).unwrap();
            prop_assert_eq!(tree.position_of(e.a as u64), Some(pos + 1));
            tree.apply_swap(e.time, pos);
        }
        let tq = horizon * probe_frac;
        let mut got: Vec<u64> = Vec::new();
        tree.query(tq, y_lo, y_lo + width, |o| got.push(o.id));
        got.sort_unstable();
        let mut want: Vec<u64> = objs
            .iter()
            .enumerate()
            .filter(|(_, &(y, v))| {
                let p = y + v * tq;
                y_lo <= p && p <= y_lo + width
            })
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
