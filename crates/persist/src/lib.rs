//! # mobidx-persist — the logarithmic-query-time MOR1 structure (§3.6)
//!
//! For queries restricted to a bounded time window `T` in the future and
//! a single time instant (`t1q = t2q`, the **MOR1 query**), the paper
//! beats the `Ω(√n)` linear-space lower bound: `O(log_B(n + m))` I/Os
//! with `O(n + m)` space, where `M` is the number of *crossings* (one
//! object overtaking another) within the window.
//!
//! Three pieces, one per module:
//!
//! * [`crossings`] — Lemma 3: enumerate all crossings in `(0, T]` in
//!   `O(N log N + M log M)` time via the paper's inversion-scan over the
//!   orderings at time 0 and time `T`.
//! * [`list_btree`] — Lemma 4: the M orderings of the N objects (one per
//!   crossing) stored as a **partially persistent B-tree-embedded binary
//!   search tree**. Each page owns a fixed set of list positions; changes
//!   append to a per-page log; every `O(B)` changes the page is copied
//!   and the copy is *posted to the parent's log* (not an auxiliary
//!   array), which is what makes the search `O(log_B(n + m))` instead of
//!   `O(log_B n · log_B m)`.
//! * Lemma 2 (the query): at query time `t_q`, locate the version at the
//!   last crossing before `t_q` and binary-search the list by *computed*
//!   object positions `y₀ + v·t_q` — between crossings the stored order
//!   coincides with the order of computed positions.
//!
//! The root-copy history (the paper's auxiliary array, `O(m/B)` entries)
//! is kept in memory; locating the root is `O(log_B m)` I/Os in the
//! paper and 0 here — a constant ≤ 2 I/O difference at our scales,
//! applied uniformly (documented in DESIGN.md).

pub mod crossings;
pub mod list_btree;

pub use crossings::{all_crossings, count_crossings, CrossEvent};
pub use list_btree::{Occupant, PersistConfig, PersistentListBTree};
