//! Lemma 3: enumerating all object crossings within a time horizon.
//!
//! Objects move as `y(t) = y₀ + v·t`. Two objects *cross* when their
//! relative order on the line changes. The paper's algorithm: sort the
//! objects at time 0 and at time `T`; every inversion between the two
//! orders is exactly one crossing in `(0, T]`. The inversions are
//! enumerated with the linked-list scan of the proof (`O(N + M)` after
//! sorting), then sorted by crossing time.

/// One crossing event: objects `a` and `b` (indices into the caller's
/// slice) meet at `time`, after which their order is swapped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossEvent {
    /// Crossing time, in `(0, T]`.
    pub time: f64,
    /// Index of the object that is *ahead* (larger position) before the
    /// crossing.
    pub a: usize,
    /// Index of the object that overtakes `a`.
    pub b: usize,
}

/// Enumerates every crossing among `objects = [(y0, v); N]` in the open
/// interval `(0, T]`, sorted by ascending time.
///
/// Objects sharing an identical trajectory never cross. Pairs meeting
/// exactly at `T` are included (their order at `T⁺` is swapped).
///
/// # Panics
/// Panics if `T` is not positive and finite, or any coordinate is NaN.
#[must_use]
pub fn all_crossings(objects: &[(f64, f64)], horizon: f64) -> Vec<CrossEvent> {
    assert!(
        horizon.is_finite() && horizon > 0.0,
        "horizon must be positive and finite"
    );
    let n = objects.len();
    if n < 2 {
        return Vec::new();
    }
    // Order at time 0⁺: by position, then velocity (an infinitesimal
    // instant later the faster object is ahead among ties), then index.
    let key0 = |i: usize| (objects[i].0, objects[i].1, i);
    // Order at time T⁺: by position at T, then velocity (a pair meeting
    // exactly at T counts as crossed), then index.
    let key_t = |i: usize| {
        let (y, v) = objects[i];
        (y + v * horizon, v, i)
    };
    let mut order0: Vec<usize> = (0..n).collect();
    order0.sort_by(|&i, &j| key0(i).partial_cmp(&key0(j)).expect("NaN input"));
    let mut order_t: Vec<usize> = (0..n).collect();
    order_t.sort_by(|&i, &j| key_t(i).partial_cmp(&key_t(j)).expect("NaN input"));

    // Linked list over order0; for each object in T-order, everything
    // still ahead of it in the list has been overtaken by it.
    let mut next = vec![usize::MAX; n + 1]; // n = head sentinel
    let mut prev = vec![usize::MAX; n + 1];
    let head = n;
    let mut cursor = head;
    for &obj in &order0 {
        next[cursor] = obj;
        prev[obj] = cursor;
        cursor = obj;
    }
    next[cursor] = usize::MAX;

    let mut events = Vec::new();
    for &obj in &order_t {
        // Walk from the head to `obj`, reporting each predecessor as a
        // crossing (obj overtakes it).
        let mut walker = next[head];
        while walker != obj {
            debug_assert!(walker != usize::MAX, "T-order element missing from list");
            let (ya, va) = (objects[walker].0, objects[walker].1);
            let (yb, vb) = (objects[obj].0, objects[obj].1);
            debug_assert!(
                (vb - va).abs() > 0.0,
                "inverted pair with equal velocities cannot cross"
            );
            let time = (ya - yb) / (vb - va);
            // `walker` started behind `obj` (earlier in the ascending
            // order-0 list) and ends ahead: walker overtakes obj.
            events.push(CrossEvent {
                time,
                a: obj,
                b: walker,
            });
            walker = next[walker];
        }
        // Unlink obj.
        let p = prev[obj];
        let nx = next[obj];
        next[p] = nx;
        if nx != usize::MAX {
            prev[nx] = p;
        }
    }
    events.sort_by(|x, y| x.time.partial_cmp(&y.time).expect("NaN crossing time"));
    events
}

/// Counts crossings only (merge-sort inversion count), for cross-checking
/// [`all_crossings`] in tests and for sizing decisions (the structure is
/// worth building only while `M = O(N)`, §3.6).
#[must_use]
pub fn count_crossings(objects: &[(f64, f64)], horizon: f64) -> usize {
    let n = objects.len();
    if n < 2 {
        return 0;
    }
    let key0 = |i: usize| (objects[i].0, objects[i].1, i);
    let key_t = |i: usize| {
        let (y, v) = objects[i];
        (y + v * horizon, v, i)
    };
    let mut order0: Vec<usize> = (0..n).collect();
    order0.sort_by(|&i, &j| key0(i).partial_cmp(&key0(j)).expect("NaN input"));
    // rank_t[obj] = position of obj in the T-order.
    let mut order_t: Vec<usize> = (0..n).collect();
    order_t.sort_by(|&i, &j| key_t(i).partial_cmp(&key_t(j)).expect("NaN input"));
    let mut rank_t = vec![0usize; n];
    for (r, &obj) in order_t.iter().enumerate() {
        rank_t[obj] = r;
    }
    let seq: Vec<usize> = order0.iter().map(|&o| rank_t[o]).collect();
    count_inversions(&seq)
}

fn count_inversions(seq: &[usize]) -> usize {
    fn rec(buf: &mut Vec<usize>, seq: &mut [usize]) -> usize {
        let n = seq.len();
        if n < 2 {
            return 0;
        }
        let mid = n / 2;
        let mut inv = {
            let (l, r) = seq.split_at_mut(mid);
            rec(buf, l) + rec(buf, r)
        };
        buf.clear();
        let (mut i, mut j) = (0, mid);
        while i < mid && j < n {
            if seq[i] <= seq[j] {
                buf.push(seq[i]);
                i += 1;
            } else {
                inv += mid - i;
                buf.push(seq[j]);
                j += 1;
            }
        }
        buf.extend_from_slice(&seq[i..mid]);
        buf.extend_from_slice(&seq[j..n]);
        seq.copy_from_slice(buf);
        inv
    }
    let mut seq = seq.to_vec();
    let mut buf = Vec::with_capacity(seq.len());
    rec(&mut buf, &mut seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_objects_cross_once() {
        // Object 0 at 0 with v=2 catches object 1 at 10 with v=1 at t=10.
        let objs = [(0.0, 2.0), (10.0, 1.0)];
        let ev = all_crossings(&objs, 20.0);
        assert_eq!(ev.len(), 1);
        assert!((ev[0].time - 10.0).abs() < 1e-12);
        assert_eq!((ev[0].a, ev[0].b), (1, 0)); // 0 overtakes 1
    }

    #[test]
    fn crossing_beyond_horizon_excluded() {
        let objs = [(0.0, 2.0), (10.0, 1.0)];
        assert!(all_crossings(&objs, 9.9).is_empty());
        // Exactly at the horizon: included.
        assert_eq!(all_crossings(&objs, 10.0).len(), 1);
    }

    #[test]
    fn parallel_objects_never_cross() {
        let objs = [(0.0, 1.0), (5.0, 1.0), (10.0, 1.0)];
        assert!(all_crossings(&objs, 1e6).is_empty());
    }

    #[test]
    fn identical_trajectories_never_cross() {
        let objs = [(3.0, 1.5), (3.0, 1.5)];
        assert!(all_crossings(&objs, 100.0).is_empty());
    }

    #[test]
    fn all_pairs_cross_in_reversal() {
        // Velocities strictly increasing with start positions strictly
        // decreasing: every pair crosses eventually.
        let objs: Vec<(f64, f64)> = (0..20)
            .map(|i| (f64::from(20 - i), 1.0 + 0.1 * f64::from(i)))
            .collect();
        let ev = all_crossings(&objs, 1e4);
        assert_eq!(ev.len(), 20 * 19 / 2);
        // Sorted by time.
        assert!(ev.windows(2).all(|w| w[0].time <= w[1].time));
        // All times within the horizon and positive.
        assert!(ev.iter().all(|e| e.time > 0.0 && e.time <= 1e4));
    }

    #[test]
    fn matches_inversion_count() {
        // Deterministic pseudo-random instance.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            #[allow(clippy::cast_precision_loss)]
            {
                (state % 1000) as f64
            }
        };
        let objs: Vec<(f64, f64)> = (0..200).map(|_| (next(), 0.5 + next() / 500.0)).collect();
        for horizon in [1.0, 10.0, 100.0, 1000.0] {
            let ev = all_crossings(&objs, horizon);
            assert_eq!(ev.len(), count_crossings(&objs, horizon), "T={horizon}");
        }
    }

    #[test]
    fn event_times_verify_positions_meet() {
        let objs = [(0.0, 1.6), (4.0, 0.4), (9.0, 0.2), (1.0, 1.0)];
        for e in all_crossings(&objs, 100.0) {
            let (ya, va) = objs[e.a];
            let (yb, vb) = objs[e.b];
            let pa = ya + va * e.time;
            let pb = yb + vb * e.time;
            assert!((pa - pb).abs() < 1e-9, "objects do not meet at event time");
        }
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn bad_horizon_panics() {
        let _ = all_crossings(&[(0.0, 1.0)], 0.0);
    }
}
