//! Lemma 4: the partially persistent B-tree-embedded list.
//!
//! The `N` list positions carry a **static** binary search tree (node =
//! median position, recursively). The top `L` levels of each subtree are
//! packed into one disk page, hB-style, so a root-to-leaf BST walk
//! touches `O(log_B n)` pages. Each page owns the occupants of its
//! in-page BST nodes and the copy-pointers of its child pages, and
//! evolves by appending to a bounded in-page **log**:
//!
//! * a crossing swaps two adjacent occupants → two `Occ` log records;
//! * when a page's log budget is exhausted, the page state is
//!   **materialized into a fresh copy** and a `Child` record (new copy
//!   id, timestamp) is appended to the *parent's* log — which may cascade
//!   upward; a new root copy is appended to the root history.
//!
//! Old copies are never mutated again (their logs stay as the record of
//! the interval they cover), giving partial persistence with `O(n + m)`
//! pages and `O(log_B(n + m))`-page searches into any version.

use mobidx_pager::{Backend, IoStats, PageId, PageStore, PagerError, DEFAULT_BUFFER_PAGES};
use std::collections::HashMap;

const INFALLIBLE: &str = "pager fault (use the try_* API with fault-injecting backends)";

/// A list element: enough motion state to compute the object's position
/// at any time in the structure's window (`y(t) = y0 + v·t`, with `t`
/// relative to the structure's epoch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupant {
    /// Object identifier.
    pub id: u64,
    /// Position at the structure's epoch (t = 0).
    pub y0: f64,
    /// Velocity.
    pub v: f64,
}

impl Occupant {
    /// Position at time `t` (relative to the epoch).
    #[must_use]
    pub fn position(&self, t: f64) -> f64 {
        self.y0 + self.v * t
    }
}

/// Sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct PersistConfig {
    /// Total records (base occupants + child pointers + log entries) per
    /// page. With 16-byte records on 4096-byte pages this is 256.
    pub records_per_page: usize,
    /// Buffer-pool pages.
    pub buffer_pages: usize,
}

impl Default for PersistConfig {
    fn default() -> Self {
        Self {
            records_per_page: 256,
            buffer_pages: DEFAULT_BUFFER_PAGES,
        }
    }
}

impl PersistConfig {
    /// Small-page configuration for tests.
    #[must_use]
    pub fn small(records_per_page: usize) -> Self {
        Self {
            records_per_page,
            buffer_pages: DEFAULT_BUFFER_PAGES,
        }
    }

    /// In-page BST depth: the largest `L` with
    /// `(2^L − 1) + 2^L ≤ records_per_page / 2` (nodes + child slots fit
    /// in half a page, leaving at least half for the log).
    #[must_use]
    pub fn levels(&self) -> usize {
        let budget = (self.records_per_page / 2).max(3);
        let mut l = 1usize;
        while (1usize << (l + 1)) - 1 + (1usize << (l + 1)) <= budget {
            l += 1;
        }
        l
    }
}

/// One log record.
#[derive(Debug, Clone, Copy)]
enum LogRec {
    /// Position-occupant change (a crossing half).
    Occ { time: f64, slot: u32, occ: Occupant },
    /// A child page was copied; `copy` is the new current copy.
    Child { time: f64, slot: u32, copy: PageId },
}

/// One page copy.
#[derive(Debug, Clone)]
struct PCopy {
    /// Occupants at copy-creation time, parallel to the static page's
    /// node list.
    occ: Vec<Occupant>,
    /// Child copy ids at copy-creation time, parallel to the static
    /// page's child list.
    children: Vec<PageId>,
    /// Changes since creation, time-ordered.
    log: Vec<LogRec>,
}

/// Static description of one page of the embedded BST.
#[derive(Debug, Clone)]
struct StaticPage {
    /// Position range `[lo, hi)` covered by this page's subtree.
    lo: usize,
    hi: usize,
    /// Positions of the in-page BST nodes (deterministic order; slot =
    /// index here).
    nodes: Vec<usize>,
    /// Child static-page indices, left-to-right.
    children: Vec<usize>,
    /// Child position ranges, parallel to `children` (sorted by `lo`).
    child_ranges: Vec<(usize, usize)>,
    /// Parent page and the child slot this page occupies there.
    parent: Option<(usize, u32)>,
    /// In-page BST depth of this page (adaptive; see [`page_depth`]).
    depth_limit: usize,
}

/// The partially persistent list B-tree (see module docs).
#[derive(Debug)]
pub struct PersistentListBTree {
    store: PageStore<PCopy>,
    shape: Vec<StaticPage>,
    /// `pos_owner[p] = (static page, slot)` owning position `p`.
    pos_owner: Vec<(usize, u32)>,
    /// Current copy of each static page.
    current: Vec<PageId>,
    /// `(creation time, root copy)` — the paper's auxiliary array.
    root_history: Vec<(f64, PageId)>,
    /// In-memory mirror of the *current* occupants (write-path
    /// convenience; queries never touch it).
    cur_occ: Vec<Occupant>,
    /// Current position of each object id.
    pos_of: HashMap<u64, usize>,
    records_per_page: usize,
    last_time: f64,
    swaps_applied: usize,
}

impl PersistentListBTree {
    /// Builds the epoch version from occupants **sorted by position**
    /// (ascending `y0`, ties by velocity then id — the order at `t = 0⁺`).
    ///
    /// # Panics
    /// Panics if the occupants are not sorted or ids repeat.
    #[must_use]
    pub fn new(cfg: PersistConfig, occupants: Vec<Occupant>) -> Self {
        assert!(
            occupants
                .windows(2)
                .all(|w| (w[0].y0, w[0].v) <= (w[1].y0, w[1].v)),
            "occupants must be sorted by (position, velocity)"
        );
        let n = occupants.len();
        let levels = cfg.levels();
        let mut shape = Vec::new();
        let mut pos_owner = vec![(usize::MAX, u32::MAX); n];
        if n > 0 {
            build_shape(0, n, levels, None, &mut shape, &mut pos_owner);
        }
        let mut pos_of = HashMap::with_capacity(n);
        for (p, o) in occupants.iter().enumerate() {
            let clash = pos_of.insert(o.id, p);
            assert!(clash.is_none(), "duplicate object id {}", o.id);
        }
        let mut this = Self {
            store: PageStore::new(cfg.buffer_pages),
            shape,
            pos_owner,
            current: Vec::new(),
            root_history: Vec::new(),
            cur_occ: occupants,
            pos_of,
            records_per_page: cfg.records_per_page,
            last_time: f64::NEG_INFINITY,
            swaps_applied: 0,
        };
        if n > 0 {
            this.current = vec![PageId::from_index(0); this.shape.len()];
            let root_copy = this.build_copies(0);
            this.root_history.push((f64::NEG_INFINITY, root_copy));
        }
        this
    }

    /// Number of list positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cur_occ.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cur_occ.is_empty()
    }

    /// Number of swaps applied so far.
    #[must_use]
    pub fn swaps_applied(&self) -> usize {
        self.swaps_applied
    }

    /// I/O statistics.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        self.store.stats()
    }

    /// Live pages (all copies — persistence never frees).
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.store.live_pages()
    }

    /// Flushes and empties the buffer pool.
    ///
    /// # Panics
    /// Panics on a pager fault; see
    /// [`PersistentListBTree::try_clear_buffer`].
    pub fn clear_buffer(&mut self) {
        self.try_clear_buffer().expect(INFALLIBLE);
    }

    /// Fallible twin of [`PersistentListBTree::clear_buffer`].
    ///
    /// # Errors
    /// Returns the first write-back fault; the buffer is drained anyway.
    pub fn try_clear_buffer(&mut self) -> Result<(), PagerError> {
        self.store.try_clear_buffer()
    }

    /// Replaces the page-store backend, returning the previous one.
    pub fn set_backend(&mut self, backend: Box<dyn Backend>) -> Box<dyn Backend> {
        self.store.set_backend(backend)
    }

    /// Current position of an object, if present.
    #[must_use]
    pub fn position_of(&self, id: u64) -> Option<usize> {
        self.pos_of.get(&id).copied()
    }

    /// Applies a crossing at `time`: the occupants of positions `pos` and
    /// `pos + 1` swap.
    ///
    /// # Panics
    /// Panics if `time` precedes an already-applied event, `pos + 1` is
    /// out of range, or a pager fault fires; see
    /// [`PersistentListBTree::try_apply_swap`].
    pub fn apply_swap(&mut self, time: f64, pos: usize) {
        self.try_apply_swap(time, pos).expect(INFALLIBLE);
    }

    /// Fallible twin of [`PersistentListBTree::apply_swap`].
    ///
    /// The in-memory mirrors (`cur_occ`, `pos_of`) are updated *before*
    /// the swap is logged to the paged structure, so a fault here leaves
    /// the two out of sync: the structure must be rebuilt (or the swap
    /// durably retried) before it is trusted again.
    ///
    /// # Errors
    /// Surfaces pager faults raised while logging the swap.
    ///
    /// # Panics
    /// Panics if `time` precedes an already-applied event or `pos + 1` is
    /// out of range.
    pub fn try_apply_swap(&mut self, time: f64, pos: usize) -> Result<(), PagerError> {
        assert!(
            time >= self.last_time,
            "events must be applied in time order"
        );
        assert!(pos + 1 < self.cur_occ.len(), "swap position out of range");
        self.last_time = time;
        self.swaps_applied += 1;
        let a = self.cur_occ[pos];
        let b = self.cur_occ[pos + 1];
        self.cur_occ[pos] = b;
        self.cur_occ[pos + 1] = a;
        *self.pos_of.get_mut(&a.id).expect("unknown id") = pos + 1;
        *self.pos_of.get_mut(&b.id).expect("unknown id") = pos;
        self.try_log_occ(time, pos, b)?;
        self.try_log_occ(time, pos + 1, a)?;
        Ok(())
    }

    /// Reports, in ascending position order, every occupant whose
    /// *computed* position `y0 + v·t` lies in `[yl, yr]`, against the
    /// version current at time `t` (Lemma 2's query).
    ///
    /// # Panics
    /// Panics on a pager fault; see [`PersistentListBTree::try_query`].
    pub fn query(&mut self, t: f64, yl: f64, yr: f64, visit: impl FnMut(&Occupant)) {
        self.try_query(t, yl, yr, visit).expect(INFALLIBLE);
    }

    /// Fallible twin of [`PersistentListBTree::query`].
    ///
    /// # Errors
    /// Surfaces pager faults; occupants already visited stay visited.
    pub fn try_query(
        &mut self,
        t: f64,
        yl: f64,
        yr: f64,
        mut visit: impl FnMut(&Occupant),
    ) -> Result<(), PagerError> {
        if self.cur_occ.is_empty() || yl > yr {
            return Ok(());
        }
        // Locate the root copy for time t (in-memory auxiliary array).
        let idx = self.root_history.partition_point(|&(time, _)| time <= t);
        if idx == 0 {
            return Ok(()); // t precedes the epoch
        }
        let root_copy = self.root_history[idx - 1].1;
        self.try_visit_page(root_copy, 0, t, yl, yr, &mut visit)
    }

    /// The full list order at time `t` (by occupant), for tests/oracles.
    ///
    /// # Panics
    /// Panics on a pager fault; see
    /// [`PersistentListBTree::try_snapshot_at`].
    pub fn snapshot_at(&mut self, t: f64) -> Vec<Occupant> {
        self.try_snapshot_at(t).expect(INFALLIBLE)
    }

    /// Fallible twin of [`PersistentListBTree::snapshot_at`].
    ///
    /// # Errors
    /// Surfaces pager faults.
    pub fn try_snapshot_at(&mut self, t: f64) -> Result<Vec<Occupant>, PagerError> {
        let mut out = Vec::with_capacity(self.len());
        self.try_query(t, f64::NEG_INFINITY, f64::INFINITY, |o| out.push(*o))?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    fn try_log_occ(&mut self, time: f64, pos: usize, occ: Occupant) -> Result<(), PagerError> {
        let (pg, slot) = self.pos_owner[pos];
        self.try_append_log(pg, LogRec::Occ { time, slot, occ }, time)
    }

    fn try_append_log(&mut self, pg: usize, rec: LogRec, time: f64) -> Result<(), PagerError> {
        let base = self.shape[pg].nodes.len() + self.shape[pg].children.len();
        let cap = self.records_per_page;
        let cid = self.current[pg];
        let full = self.store.try_write(cid, |c| {
            c.log.push(rec);
            base + c.log.len() >= cap
        })?;
        if full {
            self.try_copy_page(pg, time)?;
        }
        Ok(())
    }

    /// Materializes the current state of static page `pg` into a fresh
    /// copy and posts it to the parent (or the root history).
    fn try_copy_page(&mut self, pg: usize, time: f64) -> Result<(), PagerError> {
        let old = self.current[pg];
        let materialized = {
            let c = self.store.try_read(old)?;
            let mut occ = c.occ.clone();
            let mut children = c.children.clone();
            for rec in &c.log {
                match *rec {
                    LogRec::Occ { slot, occ: o, .. } => occ[slot as usize] = o,
                    LogRec::Child { slot, copy, .. } => children[slot as usize] = copy,
                }
            }
            PCopy {
                occ,
                children,
                log: Vec::new(),
            }
        };
        let new_id = self.store.try_allocate(materialized)?;
        self.current[pg] = new_id;
        match self.shape[pg].parent {
            None => {
                self.root_history.push((time, new_id));
                Ok(())
            }
            Some((parent, slot)) => self.try_append_log(
                parent,
                LogRec::Child {
                    time,
                    slot,
                    copy: new_id,
                },
                time,
            ),
        }
    }

    /// Builds the epoch copy of static page `pg` (children first).
    fn build_copies(&mut self, pg: usize) -> PageId {
        let child_indices = self.shape[pg].children.clone();
        let children: Vec<PageId> = child_indices
            .iter()
            .map(|&c| self.build_copies(c))
            .collect();
        let occ: Vec<Occupant> = self.shape[pg]
            .nodes
            .iter()
            .map(|&pos| self.cur_occ[pos])
            .collect();
        let id = self.store.allocate(PCopy {
            occ,
            children,
            log: Vec::new(),
        });
        self.current[pg] = id;
        id
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Reconstructs the state of a page copy at time `t` and continues
    /// the BST range search through it.
    fn try_visit_page(
        &mut self,
        copy: PageId,
        pg: usize,
        t: f64,
        yl: f64,
        yr: f64,
        visit: &mut impl FnMut(&Occupant),
    ) -> Result<(), PagerError> {
        let (occ, children) = {
            let c = self.store.try_read(copy)?;
            let mut occ = c.occ.clone();
            let mut children = c.children.clone();
            for rec in &c.log {
                match *rec {
                    LogRec::Occ { time, slot, occ: o } => {
                        if time <= t {
                            occ[slot as usize] = o;
                        }
                    }
                    LogRec::Child { time, slot, copy } => {
                        if time <= t {
                            children[slot as usize] = copy;
                        }
                    }
                }
            }
            (occ, children)
        };
        let (lo, hi) = (self.shape[pg].lo, self.shape[pg].hi);
        self.try_walk(pg, &occ, &children, lo, hi, 0, t, yl, yr, visit)
    }

    /// In-page BST range walk (in-order, so output is position-sorted).
    #[allow(clippy::too_many_arguments)]
    fn try_walk(
        &mut self,
        pg: usize,
        occ: &[Occupant],
        children: &[PageId],
        lo: usize,
        hi: usize,
        depth: usize,
        t: f64,
        yl: f64,
        yr: f64,
        visit: &mut impl FnMut(&Occupant),
    ) -> Result<(), PagerError> {
        if lo >= hi {
            return Ok(());
        }
        if depth == self.shape[pg].depth_limit {
            // Child page boundary.
            let ranges = &self.shape[pg].child_ranges;
            let slot = ranges
                .binary_search_by_key(&lo, |&(l, _)| l)
                .expect("child range missing");
            let child_copy = children[slot];
            let child_pg = self.shape[pg].children[slot];
            return self.try_visit_page(child_copy, child_pg, t, yl, yr, visit);
        }
        let mid = lo + (hi - lo) / 2;
        let (owner_pg, slot) = self.pos_owner[mid];
        debug_assert_eq!(owner_pg, pg, "position owned by unexpected page");
        let o = occ[slot as usize];
        let loc = o.position(t);
        if loc >= yl {
            self.try_walk(pg, occ, children, lo, mid, depth + 1, t, yl, yr, visit)?;
        }
        if loc >= yl && loc <= yr {
            visit(&o);
        }
        if loc <= yr {
            self.try_walk(pg, occ, children, mid + 1, hi, depth + 1, t, yl, yr, visit)?;
        }
        Ok(())
    }
}

/// Recursively builds the static page tree over positions `[lo, hi)`.
fn build_shape(
    lo: usize,
    hi: usize,
    levels: usize,
    parent: Option<(usize, u32)>,
    shape: &mut Vec<StaticPage>,
    pos_owner: &mut [(usize, u32)],
) -> usize {
    debug_assert!(lo < hi);
    let depth_limit = page_depth(hi - lo, levels);
    let idx = shape.len();
    shape.push(StaticPage {
        lo,
        hi,
        nodes: Vec::new(),
        children: Vec::new(),
        child_ranges: Vec::new(),
        parent,
        depth_limit,
    });
    let mut nodes = Vec::new();
    let mut child_ranges = Vec::new();
    gather(lo, hi, 0, depth_limit, &mut nodes, &mut child_ranges);
    for (slot, &pos) in nodes.iter().enumerate() {
        pos_owner[pos] = (idx, u32::try_from(slot).expect("slot overflow"));
    }
    shape[idx].nodes = nodes;
    // Child ranges are produced left-to-right; keep them sorted by lo so
    // the read path can binary-search.
    child_ranges.sort_unstable_by_key(|&(l, _)| l);
    let children: Vec<usize> = child_ranges
        .iter()
        .enumerate()
        .map(|(slot, &(clo, chi))| {
            build_shape(
                clo,
                chi,
                levels,
                Some((idx, u32::try_from(slot).expect("slot overflow"))),
                shape,
                pos_owner,
            )
        })
        .collect();
    shape[idx].children = children;
    shape[idx].child_ranges = child_ranges;
    idx
}

/// Chooses the in-page depth for a page covering `s` positions.
///
/// A fixed depth would shatter mid-size subtrees into dozens of 1–2 node
/// pages (terrible occupancy *and* range-scan locality). Instead the page
/// absorbs just enough levels that its children are themselves fully
/// embeddable: `d = clamp(height(s) − levels, 1, levels)`; a subtree of
/// height ≤ `levels` is embedded whole.
fn page_depth(s: usize, levels: usize) -> usize {
    let height = usize::BITS as usize - s.leading_zeros() as usize; // ceil(log2(s+1))
    if height <= levels {
        levels // recursion bottoms out before the limit: full embed
    } else {
        (height - levels).clamp(1, levels)
    }
}

/// Collects the in-page BST nodes (truncated at `levels`) and the child
/// subranges hanging below the truncation.
fn gather(
    lo: usize,
    hi: usize,
    depth: usize,
    levels: usize,
    nodes: &mut Vec<usize>,
    child_ranges: &mut Vec<(usize, usize)>,
) {
    if lo >= hi {
        return;
    }
    if depth == levels {
        child_ranges.push((lo, hi));
        return;
    }
    let mid = lo + (hi - lo) / 2;
    nodes.push(mid);
    gather(lo, mid, depth + 1, levels, nodes, child_ranges);
    gather(mid + 1, hi, depth + 1, levels, nodes, child_ranges);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize, cfg: PersistConfig) -> (PersistentListBTree, Vec<Occupant>) {
        // Objects evenly spaced, alternately slow/fast so neighbours
        // cross over time.
        let occupants: Vec<Occupant> = (0..n)
            .map(|i| Occupant {
                id: i as u64,
                #[allow(clippy::cast_precision_loss)]
                y0: i as f64 * 10.0,
                v: if i % 2 == 0 { 2.0 } else { 0.5 },
            })
            .collect();
        let t = PersistentListBTree::new(cfg, occupants.clone());
        (t, occupants)
    }

    #[test]
    fn epoch_snapshot_matches_input() {
        let (mut t, occupants) = make(100, PersistConfig::small(16));
        let snap = t.snapshot_at(0.0);
        assert_eq!(snap, occupants);
    }

    #[test]
    fn empty_and_singleton() {
        let mut empty = PersistentListBTree::new(PersistConfig::small(16), vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.snapshot_at(5.0), vec![]);

        let one = vec![Occupant {
            id: 9,
            y0: 1.0,
            v: 1.0,
        }];
        let mut t = PersistentListBTree::new(PersistConfig::small(16), one.clone());
        assert_eq!(t.snapshot_at(3.0), one);
        let mut hits = Vec::new();
        t.query(3.0, 0.0, 10.0, |o| hits.push(o.id));
        assert_eq!(hits, vec![9]);
        t.query(3.0, 10.0, 20.0, |o| hits.push(o.id));
        assert_eq!(hits, vec![9]); // 1 + 3 = 4 not in [10, 20]
    }

    /// Reference implementation: replay swaps on a plain vector.
    struct Oracle {
        list: Vec<Occupant>,
        versions: Vec<(f64, Vec<Occupant>)>,
    }

    impl Oracle {
        fn new(occupants: &[Occupant]) -> Self {
            Self {
                list: occupants.to_vec(),
                versions: vec![(f64::NEG_INFINITY, occupants.to_vec())],
            }
        }
        fn swap(&mut self, time: f64, pos: usize) {
            self.list.swap(pos, pos + 1);
            self.versions.push((time, self.list.clone()));
        }
        fn at(&self, t: f64) -> &[Occupant] {
            let idx = self.versions.partition_point(|&(time, _)| time <= t);
            &self.versions[idx - 1].1
        }
    }

    #[test]
    fn versions_match_oracle_replay() {
        let (mut t, occupants) = make(64, PersistConfig::small(16));
        let mut oracle = Oracle::new(&occupants);
        // Apply a deterministic churn of swaps.
        let mut state = 0xDEADBEEFu64;
        let mut times = Vec::new();
        for step in 0..500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let pos = (state as usize) % 63;
            let time = f64::from(step) * 0.1;
            t.apply_swap(time, pos);
            oracle.swap(time, pos);
            times.push(time);
        }
        // Probe a spread of historical versions.
        for &probe in &[0.0, 0.05, 5.0, 12.34, 25.0, 49.9, 100.0] {
            let got = t.snapshot_at(probe);
            // snapshot_at reports in *computed position* order at `probe`,
            // which equals list order only when the list is order-
            // consistent at that time. Here swaps are arbitrary (not real
            // crossings), so compare as the set of occupants per position
            // via a full walk instead: the BST in-order traversal is the
            // list order.
            assert_eq!(got.len(), 64, "probe {probe}");
            let want = oracle.at(probe);
            // The BST walk visits in position order; computed-position
            // pruning is disabled by the infinite range, so got == list.
            assert_eq!(got, want, "probe {probe}");
        }
    }

    #[test]
    fn range_query_with_real_crossings() {
        // Build real motion: fast objects behind slow ones; apply the true
        // crossing events, then range-query at various times and compare
        // with brute force.
        let n = 80usize;
        let objects: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                #[allow(clippy::cast_precision_loss)]
                let y = i as f64 * 5.0;
                let v = if i % 3 == 0 {
                    3.0
                } else {
                    1.0 + (i % 7) as f64 * 0.1
                };
                (y, v)
            })
            .collect();
        let horizon = 120.0;
        let events = crate::crossings::all_crossings(&objects, horizon);
        assert!(!events.is_empty());

        let mut sorted: Vec<usize> = (0..n).collect();
        sorted.sort_by(|&i, &j| {
            (objects[i].0, objects[i].1)
                .partial_cmp(&(objects[j].0, objects[j].1))
                .unwrap()
        });
        let occupants: Vec<Occupant> = sorted
            .iter()
            .map(|&i| Occupant {
                id: i as u64,
                y0: objects[i].0,
                v: objects[i].1,
            })
            .collect();
        let mut t = PersistentListBTree::new(PersistConfig::small(16), occupants);
        for e in &events {
            let pos = t.position_of(e.b as u64).expect("known id");
            // b overtakes a: b must sit directly behind a.
            assert_eq!(
                t.position_of(e.a as u64),
                Some(pos + 1),
                "crossing pair not adjacent"
            );
            t.apply_swap(e.time, pos);
        }
        // Probe times between, before and after events.
        for &tq in &[0.0, 1.0, 13.37, 60.0, 119.9, 120.0] {
            for &(yl, yr) in &[(0.0, 100.0), (150.0, 260.0), (42.0, 42.5), (-50.0, -1.0)] {
                let mut got: Vec<u64> = Vec::new();
                t.query(tq, yl, yr, |o| got.push(o.id));
                let mut want: Vec<u64> = (0..n)
                    .filter(|&i| {
                        let p = objects[i].0 + objects[i].1 * tq;
                        yl <= p && p <= yr
                    })
                    .map(|i| i as u64)
                    .collect();
                // got is in position order == ascending computed position.
                let mut got_sorted = got.clone();
                got_sorted.sort_unstable();
                want.sort_unstable();
                assert_eq!(got_sorted, want, "t={tq} range=({yl},{yr})");
            }
        }
    }

    #[test]
    fn query_io_logarithmic_not_linear() {
        let n = 4096usize;
        let occupants: Vec<Occupant> = (0..n)
            .map(|i| Occupant {
                id: i as u64,
                #[allow(clippy::cast_precision_loss)]
                y0: i as f64,
                v: 1.0,
            })
            .collect();
        let mut t = PersistentListBTree::new(PersistConfig::default(), occupants);
        t.clear_buffer();
        let snap = t.stats().snapshot();
        let mut hits = 0usize;
        t.query(10.0, 100.0, 105.0, |_| hits += 1);
        assert_eq!(hits, 6);
        let cost = t.stats().since(&snap).reads;
        assert!(cost <= 6, "narrow query cost {cost} pages");
    }

    #[test]
    fn copies_preserve_old_versions() {
        // Force many page copies with a tiny log budget and verify an
        // early version still reads correctly afterwards.
        let (mut t, occupants) = make(32, PersistConfig::small(8));
        let pages_before = t.live_pages();
        for step in 0..2000u32 {
            let pos = (step as usize * 7) % 31;
            t.apply_swap(f64::from(step), pos);
        }
        assert!(
            t.live_pages() > pages_before,
            "copy-on-log-overflow never triggered"
        );
        // Version at t = -0.5 (before any swap) is the epoch order.
        let snap = t.snapshot_at(-0.5);
        assert_eq!(snap, occupants);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_events_panic() {
        let (mut t, _) = make(8, PersistConfig::small(16));
        t.apply_swap(5.0, 0);
        t.apply_swap(4.0, 1);
    }

    #[test]
    fn levels_arithmetic() {
        assert!(PersistConfig::small(16).levels() >= 1);
        let cfg = PersistConfig::default();
        // 256 records: nodes+children = 2^{L+1} - 1 + ... fits in 128.
        let l = cfg.levels();
        // cost(L) = (2^L - 1) nodes + 2^L child slots.
        assert!((1usize << l) - 1 + (1usize << l) <= 128);
        assert!((1usize << (l + 1)) - 1 + (1usize << (l + 1)) > 128);
    }
}
