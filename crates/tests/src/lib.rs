//! Host crate for the repository-level `tests/` directory: cross-crate
//! integration tests spanning the substrates, the core methods, and the
//! workload oracles. See the `[[test]]` targets in this crate's
//! manifest.
