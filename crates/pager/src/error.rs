//! The typed error surfaced by the fallible (`try_*`) pager APIs.

use crate::store::PageId;

/// A storage fault observed while accessing a [`crate::PageStore`].
///
/// Every variant corresponds to a distinct failure mode of the simulated
/// disk (see [`crate::FaultStore`]); infallible backends never produce
/// one. The index crates propagate these unchanged through their own
/// `try_*` APIs, so a caller always learns *which page* misbehaved and
/// *how*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagerError {
    /// A page could not be fetched from the backend (buffer-miss read).
    ReadFailed {
        /// The page whose fetch failed.
        page: PageId,
    },
    /// A page mutation was rejected before any byte was applied; the
    /// page still holds its previous contents.
    WriteFailed {
        /// The page whose update failed.
        page: PageId,
    },
    /// A page mutation was *partially applied* (torn): the in-store copy
    /// holds the new contents, but durability was not acknowledged. The
    /// enclosing multi-page operation must be treated as failed and the
    /// structure recovered (see DESIGN.md, "Fault model & recovery
    /// guarantees").
    TornWrite {
        /// The page whose update tore.
        page: PageId,
    },
    /// The backing store died after its fault plan's I/O budget was
    /// exhausted; every subsequent access fails with this error.
    Crashed {
        /// Number of physical I/Os the store had served when it died.
        after_ios: u64,
    },
}

impl PagerError {
    /// The page involved, if the fault is page-scoped.
    #[must_use]
    pub fn page(&self) -> Option<PageId> {
        match *self {
            PagerError::ReadFailed { page }
            | PagerError::WriteFailed { page }
            | PagerError::TornWrite { page } => Some(page),
            PagerError::Crashed { .. } => None,
        }
    }

    /// Whether the fault may have left the page (and hence any
    /// multi-page operation in flight) partially applied.
    #[must_use]
    pub fn is_torn(&self) -> bool {
        matches!(self, PagerError::TornWrite { .. })
    }

    /// Whether the whole store is dead (every further access will fail).
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(self, PagerError::Crashed { .. })
    }
}

impl std::fmt::Display for PagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PagerError::ReadFailed { page } => write!(f, "read of page {page} failed"),
            PagerError::WriteFailed { page } => write!(f, "write of page {page} failed"),
            PagerError::TornWrite { page } => write!(f, "torn write on page {page}"),
            PagerError::Crashed { after_ios } => {
                write!(f, "store crashed after {after_ios} I/Os")
            }
        }
    }
}

impl std::error::Error for PagerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let p = PageId::from_index(3);
        let e = PagerError::ReadFailed { page: p };
        assert_eq!(e.to_string(), "read of page p3 failed");
        assert_eq!(e.page(), Some(p));
        assert!(!e.is_torn());
        assert!(!e.is_crash());

        let t = PagerError::TornWrite { page: p };
        assert!(t.is_torn());

        let c = PagerError::Crashed { after_ios: 42 };
        assert_eq!(c.page(), None);
        assert!(c.is_crash());
        assert_eq!(c.to_string(), "store crashed after 42 I/Os");
    }
}
