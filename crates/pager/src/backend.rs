//! Storage backends: the policy layer that decides whether each physical
//! page access succeeds.
//!
//! A [`crate::PageStore`] keeps page *contents* in its slab (the
//! simulated disk) and consults a [`Backend`] at every physical access —
//! buffer-miss reads, dirty write-backs, in-buffer mutations, page
//! allocation and freeing. The default [`MemBackend`] permits
//! everything, reproducing the seed behaviour bit-for-bit. The
//! [`FaultStore`] backend injects deterministic, seedable faults so the
//! model-checking harness (`mobidx-check`) can prove the indexes degrade
//! gracefully: every injected fault either surfaces as a typed
//! [`crate::PagerError`] or is transparently absorbed by the store's
//! retry policy.

use crate::store::PageId;

/// The class of physical access being arbitrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// A buffer-miss fetch from the simulated disk (one read I/O).
    Read,
    /// A dirty page displaced or flushed back to the simulated disk
    /// (one write I/O).
    WriteBack,
    /// An in-place mutation of a resident page. Not an I/O in the
    /// external-memory cost model, but the access where write failures
    /// and torn writes manifest.
    Mutate,
    /// Allocation of a fresh page.
    Alloc,
    /// Deallocation of a live page.
    Free,
}

/// How an injected fault fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The access fails cleanly; nothing was applied.
    Failed,
    /// The access was partially applied (meaningful for
    /// [`IoKind::Mutate`]: the store applies the mutation, then reports
    /// the failure).
    Torn,
    /// The whole store is dead.
    Crashed,
}

/// One injected fault, as reported by a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Failure mode.
    pub kind: FaultKind,
    /// Whether an immediate retry of the same access may succeed. The
    /// store's [`crate::RetryPolicy`] only re-attempts transient faults.
    pub transient: bool,
}

/// Acknowledgement of one durable journal operation, carrying the cost
/// the backend actually paid so the store can feed its WAL counters
/// ([`crate::IoStats::wal_bytes`], [`crate::IoStats::wal_fsyncs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalAck {
    /// Bytes appended to the log (or written to the page file, for
    /// checkpoints).
    pub bytes: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Framed records appended.
    pub records: u64,
}

impl JournalAck {
    /// Sums two acknowledgements (commit paths accumulate one total).
    #[must_use]
    pub fn merge(self, other: JournalAck) -> JournalAck {
        JournalAck {
            bytes: self.bytes + other.bytes,
            fsyncs: self.fsyncs + other.fsyncs,
            records: self.records + other.records,
        }
    }
}

/// Arbitrates physical page accesses for a [`crate::PageStore`].
///
/// `permit` is called once per physical access *attempt* (so a retried
/// transient fault produces several calls). Returning `Ok(())` lets the
/// access proceed; returning a [`Fault`] makes the store either retry
/// (transient, within policy) or surface a typed [`crate::PagerError`].
///
/// Backends are `Send` so a [`crate::PageStore`] (and hence any index
/// built on one) can be owned by a dedicated worker thread — the shard
/// ownership model of `mobidx-serve`.
pub trait Backend: std::fmt::Debug + Send {
    /// Decides the fate of one access attempt.
    fn permit(&mut self, kind: IoKind, page: PageId) -> Result<(), Fault>;

    /// Human-readable backend name (diagnostics, harness reports).
    fn label(&self) -> &'static str {
        "backend"
    }

    /// Whether this backend persists journaled bytes. Stores skip all
    /// commit bookkeeping (dirty-page tracking, journaling) for
    /// non-durable backends, keeping the simulated-disk hot path
    /// untouched.
    fn is_durable(&self) -> bool {
        false
    }

    /// Journals the encoded image of a page dirtied since the last
    /// commit. Part of the current commit window; not durable until
    /// [`Backend::journal_commit`] seals it. Non-durable backends
    /// acknowledge without writing anything.
    ///
    /// # Errors
    /// Fails with the backend's fault decision; a transient fault may
    /// be retried by the store, a torn or crashed fault means the
    /// journal tail is unusable and the store is dead.
    fn journal_page(&mut self, page: PageId, bytes: &[u8]) -> Result<JournalAck, Fault> {
        let _ = (page, bytes);
        Ok(JournalAck::default())
    }

    /// Journals the freeing of a page in the current commit window.
    ///
    /// # Errors
    /// Same failure modes as [`Backend::journal_page`].
    fn journal_free(&mut self, page: PageId) -> Result<JournalAck, Fault> {
        let _ = page;
        Ok(JournalAck::default())
    }

    /// Seals the current commit window with an opaque metadata blob
    /// (handed back verbatim on recovery), making the whole window
    /// durable per the backend's fsync policy.
    ///
    /// # Errors
    /// Same failure modes as [`Backend::journal_page`]; a fault here
    /// means the window did not commit (recovery yields the previous
    /// committed state).
    fn journal_commit(&mut self, meta: &[u8]) -> Result<JournalAck, Fault> {
        let _ = meta;
        Ok(JournalAck::default())
    }

    /// Writes a full checkpoint image — every live page plus `meta` —
    /// and truncates the journal. A checkpoint *is* a commit (it seals
    /// current state durably); on success recovery starts from this
    /// image with an empty log.
    ///
    /// # Errors
    /// Fails with the backend's fault decision; a clean failure leaves
    /// the previous page file and the full journal intact.
    fn checkpoint(
        &mut self,
        pages: &[(PageId, Vec<u8>)],
        meta: &[u8],
    ) -> Result<JournalAck, Fault> {
        let _ = (pages, meta);
        Ok(JournalAck::default())
    }
}

/// The infallible in-memory backend: every access succeeds. This is the
/// default and reproduces the pre-fault-injection pager exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemBackend;

impl Backend for MemBackend {
    fn permit(&mut self, _kind: IoKind, _page: PageId) -> Result<(), Fault> {
        Ok(())
    }

    fn label(&self) -> &'static str {
        "mem"
    }
}

/// A backend that charges wall-clock latency for each disk I/O — buffer-miss
/// reads and dirty write-backs — before delegating the fault decision to the
/// wrapped backend.
///
/// The pager's cost model counts I/Os instead of timing them because the
/// simulated disk answers instantly; that is right for reproducing the
/// paper's figures but makes wall-clock throughput numbers CPU-bound and
/// unrepresentative of a disk-resident deployment. Wrapping a store's
/// backend in a `DelayBackend` makes every *counted* I/O also *cost* its
/// latency, so a throughput benchmark over the simulated disk is I/O-bound
/// exactly where the paper's cost model says it should be. The thread
/// sleeps (rather than spins) through the latency, so on a machine with
/// fewer cores than shards, concurrent stores still overlap their I/O
/// waits the way independent disks would.
///
/// `Mutate`, `Alloc`, and `Free` accesses are not I/Os in the
/// external-memory model and are not delayed.
#[derive(Debug)]
pub struct DelayBackend<B> {
    inner: B,
    latency: std::time::Duration,
    io_wait: Option<std::sync::Arc<mobidx_obs::Histogram>>,
}

impl<B: Backend> DelayBackend<B> {
    /// Wraps `inner`, charging `latency` per read or write-back.
    #[must_use]
    pub fn new(inner: B, latency: std::time::Duration) -> Self {
        Self {
            inner,
            latency,
            io_wait: None,
        }
    }

    /// Like [`DelayBackend::new`], additionally recording every charged
    /// I/O wait into `io_wait` in microseconds — the health-snapshot
    /// hook: a serving tier hands each shard's backend the shard's
    /// `io_wait` histogram and the waits show up in
    /// `ShardedDb::health()`.
    #[must_use]
    pub fn with_histogram(
        inner: B,
        latency: std::time::Duration,
        io_wait: std::sync::Arc<mobidx_obs::Histogram>,
    ) -> Self {
        Self {
            inner,
            latency,
            io_wait: Some(io_wait),
        }
    }

    /// The per-I/O latency charged.
    #[must_use]
    pub fn latency(&self) -> std::time::Duration {
        self.latency
    }

    /// The wrapped backend.
    #[must_use]
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Backend> Backend for DelayBackend<B> {
    fn permit(&mut self, kind: IoKind, page: PageId) -> Result<(), Fault> {
        if matches!(kind, IoKind::Read | IoKind::WriteBack) && !self.latency.is_zero() {
            // Charged even when the inner backend then faults the access:
            // a real device spends the time before reporting the error.
            let start = std::time::Instant::now();
            std::thread::sleep(self.latency);
            if let Some(h) = &self.io_wait {
                h.record(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
            }
        }
        self.inner.permit(kind, page)
    }

    fn label(&self) -> &'static str {
        "delay"
    }

    // Journal operations pass straight through: their latency is real
    // (the inner durable backend actually writes and fsyncs), so the
    // simulated per-I/O charge would double-count.
    fn is_durable(&self) -> bool {
        self.inner.is_durable()
    }

    fn journal_page(&mut self, page: PageId, bytes: &[u8]) -> Result<JournalAck, Fault> {
        self.inner.journal_page(page, bytes)
    }

    fn journal_free(&mut self, page: PageId) -> Result<JournalAck, Fault> {
        self.inner.journal_free(page)
    }

    fn journal_commit(&mut self, meta: &[u8]) -> Result<JournalAck, Fault> {
        self.inner.journal_commit(meta)
    }

    fn checkpoint(
        &mut self,
        pages: &[(PageId, Vec<u8>)],
        meta: &[u8],
    ) -> Result<JournalAck, Fault> {
        self.inner.checkpoint(pages, meta)
    }
}

/// Bounded retry policy for transient faults, applied by the store.
///
/// The backoff is *logical*: the store does not sleep (the whole disk is
/// simulated), it counts backoff units — `1 << attempt` per re-attempt,
/// i.e. exponential — into [`crate::IoStats::backoff_units`], so the
/// harness and benchmarks can report how much wall-clock a real
/// deployment would have spent waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of re-attempts after the initial failure.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 3 }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every fault surfaces immediately).
    #[must_use]
    pub fn none() -> Self {
        Self { max_retries: 0 }
    }
}

/// Probabilities are expressed per mille (0..=1000) so plans stay
/// integer-only and exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// RNG seed; two `FaultStore`s with equal plans inject identical
    /// fault sequences for identical access sequences.
    pub seed: u64,
    /// Probability (per mille) that a buffer-miss read fails.
    pub read_fault_per_mille: u16,
    /// Probability (per mille) that a mutation or write-back fails
    /// cleanly (nothing applied).
    pub write_fault_per_mille: u16,
    /// Probability (per mille) that a mutation tears (applied but not
    /// acknowledged).
    pub torn_per_mille: u16,
    /// Share (per mille) of injected read/write faults that are
    /// transient — they clear after `transient_tries` failed attempts.
    pub transient_per_mille: u16,
    /// How many consecutive attempts a transient fault keeps failing
    /// before it clears (1..=n, sampled per fault).
    pub transient_tries: u32,
    /// Kill the store after this many physical I/Os (reads +
    /// write-backs). `None` disables the crash point.
    pub crash_after_ios: Option<u64>,
    /// Kill the store after this many *reads* specifically. Unlike
    /// [`FaultPlan::crash_after_ios`] (which counts reads and
    /// write-backs together, so the I/O index of "the Nth write" shifts
    /// with read traffic), a per-kind point pins the crash to a
    /// deterministic read index regardless of interleaving.
    pub crash_after_reads: Option<u64>,
    /// Kill the store after this many *write-class* accesses
    /// (write-backs and mutations; for the durable adapter, journal
    /// appends) specifically — the knob crash-matrix tests use to die
    /// mid-commit at "the Nth write".
    pub crash_after_writes: Option<u64>,
}

impl FaultPlan {
    /// A plan that never faults (useful as the control row of a matrix).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            read_fault_per_mille: 0,
            write_fault_per_mille: 0,
            torn_per_mille: 0,
            transient_per_mille: 0,
            transient_tries: 1,
            crash_after_ios: None,
            crash_after_reads: None,
            crash_after_writes: None,
        }
    }

    /// Only transient faults, frequent enough to exercise the retry
    /// path, short enough that the default [`RetryPolicy`] absorbs them.
    #[must_use]
    pub fn transient(seed: u64) -> Self {
        Self {
            read_fault_per_mille: 30,
            write_fault_per_mille: 30,
            transient_per_mille: 1000,
            transient_tries: 2,
            ..Self::none(seed)
        }
    }

    /// Hard faults and torn writes: a share of reads and mutations fail
    /// for good, and some mutations are applied but unacknowledged.
    #[must_use]
    pub fn torn(seed: u64) -> Self {
        Self {
            read_fault_per_mille: 10,
            write_fault_per_mille: 10,
            torn_per_mille: 10,
            transient_per_mille: 300,
            transient_tries: 2,
            ..Self::none(seed)
        }
    }

    /// Fault-free until the store dies at its `n`-th physical I/O.
    #[must_use]
    pub fn crash_after(seed: u64, n: u64) -> Self {
        Self {
            crash_after_ios: Some(n),
            ..Self::none(seed)
        }
    }

    /// Fault-free until the store dies at its `n`-th read.
    #[must_use]
    pub fn crash_after_reads(seed: u64, n: u64) -> Self {
        Self {
            crash_after_reads: Some(n),
            ..Self::none(seed)
        }
    }

    /// Fault-free until the store dies at its `n`-th write — the
    /// deterministic "crash during the Nth write of a commit window"
    /// point the crash matrix sweeps.
    #[must_use]
    pub fn crash_after_writes(seed: u64, n: u64) -> Self {
        Self {
            crash_after_writes: Some(n),
            ..Self::none(seed)
        }
    }
}

/// A deterministic fault-injecting backend (see [`FaultPlan`]).
///
/// The RNG is a splitmix64 stream seeded from the plan; faults depend
/// only on the plan and the sequence of accesses, so a failing harness
/// run reproduces from its seed alone.
#[derive(Debug, Clone)]
pub struct FaultStore {
    plan: FaultPlan,
    rng_state: u64,
    /// Physical I/Os served (reads + write-backs) for the combined
    /// crash point.
    ios: u64,
    /// Reads served, for [`FaultPlan::crash_after_reads`].
    reads_served: u64,
    /// Writes served, for [`FaultPlan::crash_after_writes`].
    writes_served: u64,
    /// An in-flight transient fault: `(page, kind, remaining_failures)`.
    /// While present, matching accesses keep failing until the counter
    /// reaches zero, then succeed — which is what makes retries succeed
    /// deterministically.
    pending_transient: Option<(PageId, IoKind, u32)>,
    /// Total faults this backend has injected (diagnostics).
    injected: u64,
}

impl FaultStore {
    /// Creates a backend following `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            rng_state: plan.seed ^ 0x9E37_79B9_7F4A_7C15,
            ios: 0,
            reads_served: 0,
            writes_served: 0,
            pending_transient: None,
            injected: 0,
        }
    }

    /// The plan this backend follows.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far (each failed attempt counts once).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Reads served so far (the [`FaultPlan::crash_after_reads`] index).
    #[must_use]
    pub fn reads_served(&self) -> u64 {
        self.reads_served
    }

    /// Writes served so far (the [`FaultPlan::crash_after_writes`]
    /// index).
    #[must_use]
    pub fn writes_served(&self) -> u64 {
        self.writes_served
    }

    /// Whether any configured crash point has been reached (the store
    /// is dead and every further access fails).
    #[must_use]
    pub fn crashed(&self) -> bool {
        let hit = |count: u64, limit: Option<u64>| limit.is_some_and(|l| count >= l);
        hit(self.ios, self.plan.crash_after_ios)
            || hit(self.reads_served, self.plan.crash_after_reads)
            || hit(self.writes_served, self.plan.crash_after_writes)
    }

    /// splitmix64: deterministic, full-period, dependency-free.
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..1000`.
    fn per_mille(&mut self) -> u16 {
        #[allow(clippy::cast_possible_truncation)]
        {
            (self.next_u64() % 1000) as u16
        }
    }

    /// Decides whether to inject a fresh fault for this access, and of
    /// what kind. `None` = permit.
    fn draw_fault(&mut self, kind: IoKind, page: PageId) -> Option<Fault> {
        let fail = match kind {
            IoKind::Read => self.per_mille() < self.plan.read_fault_per_mille,
            IoKind::WriteBack => self.per_mille() < self.plan.write_fault_per_mille,
            IoKind::Mutate => {
                // Torn and clean write faults are disjoint draws so
                // their rates compose.
                if self.per_mille() < self.plan.torn_per_mille {
                    return Some(Fault {
                        kind: FaultKind::Torn,
                        transient: false,
                    });
                }
                self.per_mille() < self.plan.write_fault_per_mille
            }
            // Allocation and freeing are metadata operations on the
            // simulated disk; their write cost is paid (and faultable)
            // at write-back time.
            IoKind::Alloc | IoKind::Free => false,
        };
        if !fail {
            return None;
        }
        let transient = self.per_mille() < self.plan.transient_per_mille;
        if transient {
            let tries = 1 + self.next_u64() % u64::from(self.plan.transient_tries.max(1));
            #[allow(clippy::cast_possible_truncation)]
            {
                self.pending_transient = Some((page, kind, tries as u32));
            }
        }
        Some(Fault {
            kind: FaultKind::Failed,
            transient,
        })
    }
}

impl Backend for FaultStore {
    fn permit(&mut self, kind: IoKind, page: PageId) -> Result<(), Fault> {
        // A dead store stays dead.
        if self.crashed() {
            self.injected += 1;
            return Err(Fault {
                kind: FaultKind::Crashed,
                transient: false,
            });
        }
        // A pending transient fault owns its access until it clears.
        if let Some((p, k, remaining)) = self.pending_transient {
            if p == page && k == kind {
                if remaining > 1 {
                    self.pending_transient = Some((p, k, remaining - 1));
                } else {
                    self.pending_transient = None;
                }
                self.injected += 1;
                return Err(Fault {
                    kind: FaultKind::Failed,
                    transient: true,
                });
            }
        }
        if let Some(fault) = self.draw_fault(kind, page) {
            self.injected += 1;
            return Err(fault);
        }
        match kind {
            IoKind::Read => {
                self.ios += 1;
                self.reads_served += 1;
            }
            IoKind::WriteBack => {
                self.ios += 1;
                self.writes_served += 1;
            }
            // Mutations are not I/Os in the cost model (`ios` stays
            // put) but they are write-class accesses, so the per-kind
            // write clock counts them — the durable adapter arbitrates
            // journal appends as mutations.
            IoKind::Mutate => {
                self.writes_served += 1;
            }
            IoKind::Alloc | IoKind::Free => {}
        }
        Ok(())
    }

    fn label(&self) -> &'static str {
        "fault"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> PageId {
        PageId::from_index(n)
    }

    #[test]
    fn mem_backend_always_permits() {
        let mut b = MemBackend;
        for kind in [
            IoKind::Read,
            IoKind::WriteBack,
            IoKind::Mutate,
            IoKind::Alloc,
            IoKind::Free,
        ] {
            assert!(b.permit(kind, pid(0)).is_ok());
        }
    }

    #[test]
    fn none_plan_never_faults() {
        let mut b = FaultStore::new(FaultPlan::none(7));
        for i in 0..10_000 {
            assert!(b.permit(IoKind::Read, pid(i % 13)).is_ok());
            assert!(b.permit(IoKind::Mutate, pid(i % 13)).is_ok());
        }
        assert_eq!(b.injected(), 0);
    }

    #[test]
    fn fault_sequences_are_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let mut b = FaultStore::new(FaultPlan::torn(seed));
            (0..2000u32)
                .map(|i| b.permit(IoKind::Mutate, pid(i % 7)).is_err())
                .collect()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should diverge");
        assert!(run(11).iter().any(|&f| f), "plan should inject something");
    }

    #[test]
    fn transient_fault_clears_after_its_tries() {
        let mut b = FaultStore::new(FaultPlan::transient(3));
        let mut cleared = 0u32;
        for i in 0..5000u32 {
            let page = pid(i % 5);
            if let Err(f) = b.permit(IoKind::Read, page) {
                assert!(f.transient, "transient plan injected a hard fault");
                // Retry until it clears. Each pending fault lasts at most
                // 2 extra tries, but a fresh draw can chain a new one, so
                // allow a generous (still deterministic) bound.
                let mut attempts = 0;
                while b.permit(IoKind::Read, page).is_err() {
                    attempts += 1;
                    assert!(attempts <= 20, "transient fault failed to clear");
                }
                cleared += 1;
            }
        }
        assert!(cleared > 0, "no transient fault was ever injected");
    }

    #[test]
    fn crash_point_kills_the_store_permanently() {
        let mut b = FaultStore::new(FaultPlan::crash_after(1, 5));
        let mut served = 0;
        loop {
            match b.permit(IoKind::Read, pid(0)) {
                Ok(()) => served += 1,
                Err(f) => {
                    assert_eq!(f.kind, FaultKind::Crashed);
                    break;
                }
            }
        }
        assert_eq!(served, 5);
        // Dead forever, for every access kind.
        for kind in [IoKind::Read, IoKind::WriteBack, IoKind::Mutate] {
            let f = b.permit(kind, pid(1)).unwrap_err();
            assert_eq!(f.kind, FaultKind::Crashed);
            assert!(!f.transient);
        }
    }

    #[test]
    fn alloc_and_free_are_never_faulted() {
        let mut b = FaultStore::new(FaultPlan::torn(99));
        for i in 0..5000u32 {
            assert!(b.permit(IoKind::Alloc, pid(i)).is_ok());
            assert!(b.permit(IoKind::Free, pid(i)).is_ok());
        }
    }

    #[test]
    fn delay_backend_charges_ios_and_delegates() {
        use std::time::{Duration, Instant};
        let mut b = DelayBackend::new(MemBackend, Duration::from_millis(2));
        assert_eq!(b.latency(), Duration::from_millis(2));
        assert_eq!(b.label(), "delay");
        let start = Instant::now();
        assert!(b.permit(IoKind::Read, pid(0)).is_ok());
        assert!(b.permit(IoKind::WriteBack, pid(0)).is_ok());
        assert!(
            start.elapsed() >= Duration::from_millis(4),
            "both I/Os charged"
        );
        let start = Instant::now();
        assert!(b.permit(IoKind::Mutate, pid(0)).is_ok());
        assert!(b.permit(IoKind::Alloc, pid(1)).is_ok());
        assert!(b.permit(IoKind::Free, pid(1)).is_ok());
        assert!(
            start.elapsed() < Duration::from_millis(2),
            "non-I/O kinds are free"
        );
    }

    #[test]
    fn delay_backend_records_waits_into_histogram() {
        use std::sync::Arc;
        use std::time::Duration;
        let h = Arc::new(mobidx_obs::Histogram::new());
        let mut b =
            DelayBackend::with_histogram(MemBackend, Duration::from_millis(1), Arc::clone(&h));
        assert!(b.permit(IoKind::Read, pid(0)).is_ok());
        assert!(b.permit(IoKind::WriteBack, pid(0)).is_ok());
        assert!(b.permit(IoKind::Mutate, pid(0)).is_ok());
        assert_eq!(h.count(), 2, "only charged I/Os are recorded");
        assert!(h.min() >= 1_000, "waits recorded in microseconds");
    }

    #[test]
    fn crash_after_writes_ignores_read_traffic() {
        // The per-kind point: reads must not advance the write clock,
        // so "crash during the Nth write" is deterministic no matter
        // how many reads interleave.
        let mut b = FaultStore::new(FaultPlan::crash_after_writes(5, 2));
        for i in 0..100u32 {
            assert!(b.permit(IoKind::Read, pid(i)).is_ok());
        }
        assert!(b.permit(IoKind::WriteBack, pid(0)).is_ok());
        assert!(b.permit(IoKind::Read, pid(1)).is_ok());
        assert!(b.permit(IoKind::WriteBack, pid(2)).is_ok());
        assert_eq!(b.writes_served(), 2);
        assert!(!b.crashed() || b.plan().crash_after_writes == Some(2));
        let f = b.permit(IoKind::WriteBack, pid(3)).unwrap_err();
        assert_eq!(f.kind, FaultKind::Crashed);
        // Dead for every kind, including reads.
        assert_eq!(
            b.permit(IoKind::Read, pid(4)).unwrap_err().kind,
            FaultKind::Crashed
        );
        assert!(b.crashed());
    }

    #[test]
    fn crash_after_reads_ignores_write_traffic() {
        let mut b = FaultStore::new(FaultPlan::crash_after_reads(5, 3));
        for i in 0..50u32 {
            assert!(b.permit(IoKind::WriteBack, pid(i)).is_ok());
        }
        for i in 0..3u32 {
            assert!(b.permit(IoKind::Read, pid(i)).is_ok());
        }
        assert_eq!(b.reads_served(), 3);
        let f = b.permit(IoKind::Read, pid(9)).unwrap_err();
        assert_eq!(f.kind, FaultKind::Crashed);
    }

    #[test]
    fn per_kind_and_combined_crash_points_compose() {
        // Whichever clock hits first kills the store.
        let plan = FaultPlan {
            crash_after_ios: Some(10),
            crash_after_writes: Some(1),
            ..FaultPlan::none(1)
        };
        let mut b = FaultStore::new(plan);
        assert!(b.permit(IoKind::Read, pid(0)).is_ok());
        assert!(b.permit(IoKind::WriteBack, pid(0)).is_ok());
        assert_eq!(
            b.permit(IoKind::Read, pid(0)).unwrap_err().kind,
            FaultKind::Crashed,
            "write clock reached its limit first"
        );
    }

    #[test]
    fn default_backend_journal_hooks_are_noop_acks() {
        let mut b = MemBackend;
        assert!(!b.is_durable());
        assert_eq!(
            b.journal_page(pid(0), &[1, 2, 3]).unwrap(),
            JournalAck::default()
        );
        assert_eq!(b.journal_free(pid(0)).unwrap(), JournalAck::default());
        assert_eq!(b.journal_commit(&[]).unwrap(), JournalAck::default());
        assert_eq!(b.checkpoint(&[], &[]).unwrap(), JournalAck::default());
        let merged = JournalAck {
            bytes: 3,
            fsyncs: 1,
            records: 2,
        }
        .merge(JournalAck {
            bytes: 4,
            fsyncs: 0,
            records: 1,
        });
        assert_eq!(
            merged,
            JournalAck {
                bytes: 7,
                fsyncs: 1,
                records: 3
            }
        );
    }

    #[test]
    fn delay_backend_zero_latency_is_transparent() {
        let mut b = DelayBackend::new(
            FaultStore::new(FaultPlan::crash_after(1, 0)),
            std::time::Duration::ZERO,
        );
        let f = b.permit(IoKind::Read, pid(0)).unwrap_err();
        assert_eq!(f.kind, FaultKind::Crashed, "inner backend still decides");
        assert_eq!(b.inner().injected(), 1);
    }
}
