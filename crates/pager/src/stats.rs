//! I/O and space accounting.
//!
//! All metrics reported by the benchmark harness (Figures 6–9 of the paper)
//! are derived from [`IoStats`]: query cost = reads+writes between two
//! [`IoSnapshot`]s, space = live page count. Buffer-pool behaviour (hits,
//! evictions, dirty write-backs) is tallied alongside so the harness can
//! report hit rates, and every counter can be published to a
//! [`mobidx_obs::Recorder`] under a per-store prefix.

use mobidx_obs::Recorder;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Cumulative I/O and space counters for one paged structure.
///
/// Counters use relaxed atomics so that logically read-only operations
/// (searches, which still touch the buffer pool) don't force `&mut` APIs
/// up the stack, and so instrumented structures stay `Sync`. The counters
/// are independent tallies, not synchronization points, so `Relaxed`
/// ordering is sufficient.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    allocated: AtomicU64,
    freed: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    retries: AtomicU64,
    faults_injected: AtomicU64,
    faults_recovered: AtomicU64,
    backoff_units: AtomicU64,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_replayed: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` page reads (buffer misses).
    pub fn add_reads(&self, n: u64) {
        self.reads.fetch_add(n, Relaxed);
    }

    /// Records `n` page writes (dirty evictions / flushes).
    pub fn add_writes(&self, n: u64) {
        self.writes.fetch_add(n, Relaxed);
    }

    /// Records one page allocation.
    pub fn add_alloc(&self) {
        self.allocated.fetch_add(1, Relaxed);
    }

    /// Records one page deallocation.
    pub fn add_free(&self) {
        self.freed.fetch_add(1, Relaxed);
    }

    /// Records `n` buffer hits (page accesses served without I/O).
    pub fn add_hits(&self, n: u64) {
        self.hits.fetch_add(n, Relaxed);
    }

    /// Records one buffer eviction (a resident page displaced to make
    /// room).
    pub fn add_eviction(&self) {
        self.evictions.fetch_add(1, Relaxed);
    }

    /// Records one dirty write-back (an eviction or flush that had to pay
    /// a write I/O).
    ///
    /// The write-back ledger is *per dirty page leaving residency*, not
    /// per mutation: however many mutations a page absorbs while resident
    /// — one, or a whole grouped batch applied in a single
    /// [`crate::PageStore::try_write`] closure — it owes exactly one write
    /// I/O when it is evicted, flushed, or (with a capacity-0 pool)
    /// bounced straight back out. This is what makes batch apply
    /// amortization visible in the counters: grouping k same-page
    /// mutations turns k read+write pairs into one.
    pub fn add_writeback(&self) {
        self.writebacks.fetch_add(1, Relaxed);
    }

    /// Records one retry of a faulted page access.
    pub fn add_retry(&self) {
        self.retries.fetch_add(1, Relaxed);
    }

    /// Records one fault injected by the backend (each failed attempt
    /// counts once, including the attempts a retry loop absorbs).
    pub fn add_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Relaxed);
    }

    /// Records one fault fully recovered by retrying (the access
    /// ultimately succeeded, so the caller never saw an error).
    pub fn add_fault_recovered(&self) {
        self.faults_recovered.fetch_add(1, Relaxed);
    }

    /// Records `n` logical backoff units spent waiting between retries.
    pub fn add_backoff_units(&self, n: u64) {
        self.backoff_units.fetch_add(n, Relaxed);
    }

    /// Records the cost of acknowledged durable journal work: framed
    /// records appended, bytes written, `fsync`s issued. Fed by the
    /// [`crate::JournalAck`]s commit and checkpoint paths collect.
    pub fn add_wal(&self, records: u64, bytes: u64, fsyncs: u64) {
        self.wal_records.fetch_add(records, Relaxed);
        self.wal_bytes.fetch_add(bytes, Relaxed);
        self.wal_fsyncs.fetch_add(fsyncs, Relaxed);
    }

    /// Records `n` WAL records replayed during recovery-on-open.
    pub fn add_wal_replayed(&self, n: u64) {
        self.wal_replayed.fetch_add(n, Relaxed);
    }

    /// Total page reads so far.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads.load(Relaxed)
    }

    /// Total page writes so far.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes.load(Relaxed)
    }

    /// Total reads + writes.
    #[must_use]
    pub fn total_ios(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Total buffer hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Relaxed)
    }

    /// Total buffer misses so far. Every miss faults a page in, so this
    /// equals [`IoStats::reads`].
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.reads()
    }

    /// Total buffer evictions so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Relaxed)
    }

    /// Total dirty write-backs so far (the subset of [`IoStats::writes`]
    /// paid by evictions and flushes).
    #[must_use]
    pub fn writebacks(&self) -> u64 {
        self.writebacks.load(Relaxed)
    }

    /// Fraction of buffered page accesses served without I/O
    /// (`hits / (hits + misses)`; 0.0 before any access).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let touched = hits + self.misses();
        if touched == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            hits as f64 / touched as f64
        }
    }

    /// Total retries of faulted accesses so far.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries.load(Relaxed)
    }

    /// Total faults injected by the backend so far.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Relaxed)
    }

    /// Total faults absorbed by the retry policy so far.
    #[must_use]
    pub fn faults_recovered(&self) -> u64 {
        self.faults_recovered.load(Relaxed)
    }

    /// Total logical backoff units spent between retries so far.
    #[must_use]
    pub fn backoff_units(&self) -> u64 {
        self.backoff_units.load(Relaxed)
    }

    /// Durable journal records appended so far.
    #[must_use]
    pub fn wal_records(&self) -> u64 {
        self.wal_records.load(Relaxed)
    }

    /// Durable journal bytes written so far (WAL appends and
    /// checkpoint images).
    #[must_use]
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.load(Relaxed)
    }

    /// `fsync`s issued by the durable backend so far.
    #[must_use]
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal_fsyncs.load(Relaxed)
    }

    /// WAL records replayed by recovery-on-open.
    #[must_use]
    pub fn wal_replayed(&self) -> u64 {
        self.wal_replayed.load(Relaxed)
    }

    /// Pages allocated over the lifetime of the structure.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Relaxed)
    }

    /// Pages freed over the lifetime of the structure.
    #[must_use]
    pub fn freed(&self) -> u64 {
        self.freed.load(Relaxed)
    }

    /// Pages currently live — the paper's space-consumption metric (Fig. 8).
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.allocated() - self.freed()
    }

    /// Resets the read/write and buffer counters, keeping space counters
    /// intact.
    pub fn reset_io(&self) {
        self.reads.store(0, Relaxed);
        self.writes.store(0, Relaxed);
        self.hits.store(0, Relaxed);
        self.evictions.store(0, Relaxed);
        self.writebacks.store(0, Relaxed);
        self.retries.store(0, Relaxed);
        self.faults_injected.store(0, Relaxed);
        self.faults_recovered.store(0, Relaxed);
        self.backoff_units.store(0, Relaxed);
        self.wal_records.store(0, Relaxed);
        self.wal_bytes.store(0, Relaxed);
        self.wal_fsyncs.store(0, Relaxed);
        self.wal_replayed.store(0, Relaxed);
    }

    /// Takes a snapshot for later differencing (cost of one operation).
    #[must_use]
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads(),
            writes: self.writes(),
            hits: self.hits(),
            evictions: self.evictions(),
        }
    }

    /// I/Os performed since `since` was taken.
    #[must_use]
    pub fn since(&self, since: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads() - since.reads,
            writes: self.writes() - since.writes,
            hits: self.hits() - since.hits,
            evictions: self.evictions() - since.evictions,
        }
    }

    /// Publishes every counter to `recorder`, each name prefixed with
    /// `prefix` (e.g. `"pager.obs3."`).
    pub fn publish(&self, recorder: &dyn Recorder, prefix: &str) {
        recorder.add_counter(&format!("{prefix}reads"), self.reads());
        recorder.add_counter(&format!("{prefix}writes"), self.writes());
        recorder.add_counter(&format!("{prefix}hits"), self.hits());
        recorder.add_counter(&format!("{prefix}evictions"), self.evictions());
        recorder.add_counter(&format!("{prefix}writebacks"), self.writebacks());
        recorder.add_counter(&format!("{prefix}retries"), self.retries());
        recorder.add_counter(&format!("{prefix}faults_injected"), self.faults_injected());
        recorder.add_counter(
            &format!("{prefix}faults_recovered"),
            self.faults_recovered(),
        );
        recorder.add_counter(&format!("{prefix}backoff_units"), self.backoff_units());
        recorder.add_counter(&format!("{prefix}wal_records"), self.wal_records());
        recorder.add_counter(&format!("{prefix}wal_bytes"), self.wal_bytes());
        recorder.add_counter(&format!("{prefix}wal_fsyncs"), self.wal_fsyncs());
        recorder.add_counter(&format!("{prefix}wal_replayed"), self.wal_replayed());
        recorder.set_gauge(&format!("{prefix}live_pages"), self.live_pages());
    }
}

/// A point-in-time copy of the I/O and buffer counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Page reads at snapshot time (or delta, when produced by
    /// [`IoStats::since`]).
    pub reads: u64,
    /// Page writes at snapshot time (or delta).
    pub writes: u64,
    /// Buffer hits at snapshot time (or delta).
    pub hits: u64,
    /// Buffer evictions at snapshot time (or delta).
    pub evictions: u64,
}

impl IoSnapshot {
    /// Reads + writes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of page accesses served by the buffer
    /// (`hits / (hits + reads)`; 0.0 when no pages were touched).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let touched = self.hits + self.reads;
        if touched == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.hits as f64 / touched as f64
        }
    }
}

impl fmt::Display for IoSnapshot {
    /// The compact `"4r+1w"` form; the alternate form (`{:#}`) appends
    /// buffer hits: `"4r+1w (2h)"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}r+{}w", self.reads, self.writes)?;
        if f.alternate() {
            write!(f, " ({}h)", self.hits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.add_reads(3);
        s.add_writes(2);
        s.add_alloc();
        s.add_alloc();
        s.add_free();
        assert_eq!(s.reads(), 3);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.total_ios(), 5);
        assert_eq!(s.live_pages(), 1);
    }

    #[test]
    fn buffer_counters_accumulate() {
        let s = IoStats::new();
        s.add_hits(3);
        s.add_reads(1); // = one miss
        s.add_eviction();
        s.add_writeback();
        assert_eq!(s.hits(), 3);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.writebacks(), 1);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_is_zero_before_any_access() {
        let s = IoStats::new();
        assert!(s.hit_rate().abs() < f64::EPSILON);
    }

    #[test]
    fn snapshot_diff() {
        let s = IoStats::new();
        s.add_reads(5);
        let snap = s.snapshot();
        s.add_reads(2);
        s.add_writes(1);
        s.add_hits(4);
        let d = s.since(&snap);
        assert_eq!(d.reads, 2);
        assert_eq!(d.writes, 1);
        assert_eq!(d.hits, 4);
        assert_eq!(d.total(), 3);
        assert!((d.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn reset_io_keeps_space() {
        let s = IoStats::new();
        s.add_reads(5);
        s.add_hits(2);
        s.add_eviction();
        s.add_alloc();
        s.reset_io();
        assert_eq!(s.reads(), 0);
        assert_eq!(s.hits(), 0);
        assert_eq!(s.evictions(), 0);
        assert_eq!(s.live_pages(), 1);
    }

    #[test]
    fn display_formats() {
        let snap = IoSnapshot {
            reads: 4,
            writes: 1,
            hits: 2,
            evictions: 0,
        };
        assert_eq!(snap.to_string(), "4r+1w");
        assert_eq!(format!("{snap:#}"), "4r+1w (2h)");
    }

    #[test]
    fn fault_counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.add_fault_injected();
        s.add_fault_injected();
        s.add_retry();
        s.add_fault_recovered();
        s.add_backoff_units(3);
        assert_eq!(s.faults_injected(), 2);
        assert_eq!(s.retries(), 1);
        assert_eq!(s.faults_recovered(), 1);
        assert_eq!(s.backoff_units(), 3);
        s.reset_io();
        assert_eq!(s.faults_injected(), 0);
        assert_eq!(s.retries(), 0);
        assert_eq!(s.faults_recovered(), 0);
        assert_eq!(s.backoff_units(), 0);
    }

    #[test]
    fn wal_counters_accumulate_reset_and_publish() {
        let s = IoStats::new();
        s.add_wal(3, 120, 1);
        s.add_wal(1, 40, 1);
        s.add_wal_replayed(5);
        assert_eq!(s.wal_records(), 4);
        assert_eq!(s.wal_bytes(), 160);
        assert_eq!(s.wal_fsyncs(), 2);
        assert_eq!(s.wal_replayed(), 5);
        let rec = mobidx_obs::MemoryRecorder::new();
        s.publish(&rec, "pager.d.");
        assert_eq!(rec.counter("pager.d.wal_records"), 4);
        assert_eq!(rec.counter("pager.d.wal_bytes"), 160);
        assert_eq!(rec.counter("pager.d.wal_fsyncs"), 2);
        assert_eq!(rec.counter("pager.d.wal_replayed"), 5);
        s.reset_io();
        assert_eq!(s.wal_records(), 0);
        assert_eq!(s.wal_bytes(), 0);
        assert_eq!(s.wal_fsyncs(), 0);
        assert_eq!(s.wal_replayed(), 0);
    }

    #[test]
    fn stats_are_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<IoStats>();
    }

    #[test]
    fn publish_emits_prefixed_metrics() {
        let s = IoStats::new();
        s.add_reads(2);
        s.add_hits(1);
        s.add_alloc();
        let rec = mobidx_obs::MemoryRecorder::new();
        s.publish(&rec, "pager.t.");
        assert_eq!(rec.counter("pager.t.reads"), 2);
        assert_eq!(rec.counter("pager.t.hits"), 1);
        assert_eq!(rec.gauge("pager.t.live_pages"), 1);
    }
}
