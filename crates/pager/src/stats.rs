//! I/O and space accounting.
//!
//! All metrics reported by the benchmark harness (Figures 6–9 of the paper)
//! are derived from [`IoStats`]: query cost = reads+writes between two
//! [`IoSnapshot`]s, space = live page count.

use std::cell::Cell;
use std::fmt;

/// Cumulative I/O and space counters for one paged structure.
///
/// Counters use interior mutability ([`Cell`]) so that logically read-only
/// operations (searches, which still touch the buffer pool) don't force
/// `&mut` APIs all the way up the stack.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: Cell<u64>,
    writes: Cell<u64>,
    allocated: Cell<u64>,
    freed: Cell<u64>,
}

impl IoStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` page reads (buffer misses).
    pub fn add_reads(&self, n: u64) {
        self.reads.set(self.reads.get() + n);
    }

    /// Records `n` page writes (dirty evictions / flushes).
    pub fn add_writes(&self, n: u64) {
        self.writes.set(self.writes.get() + n);
    }

    /// Records one page allocation.
    pub fn add_alloc(&self) {
        self.allocated.set(self.allocated.get() + 1);
    }

    /// Records one page deallocation.
    pub fn add_free(&self) {
        self.freed.set(self.freed.get() + 1);
    }

    /// Total page reads so far.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Total page writes so far.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Total reads + writes.
    #[must_use]
    pub fn total_ios(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Pages allocated over the lifetime of the structure.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.allocated.get()
    }

    /// Pages freed over the lifetime of the structure.
    #[must_use]
    pub fn freed(&self) -> u64 {
        self.freed.get()
    }

    /// Pages currently live — the paper's space-consumption metric (Fig. 8).
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.allocated.get() - self.freed.get()
    }

    /// Resets the read/write counters, keeping space counters intact.
    pub fn reset_io(&self) {
        self.reads.set(0);
        self.writes.set(0);
    }

    /// Takes a snapshot for later differencing (cost of one operation).
    #[must_use]
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads(),
            writes: self.writes(),
        }
    }

    /// I/Os performed since `since` was taken.
    #[must_use]
    pub fn since(&self, since: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads() - since.reads,
            writes: self.writes() - since.writes,
        }
    }
}

/// A point-in-time copy of the read/write counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Page reads at snapshot time (or delta, when produced by
    /// [`IoStats::since`]).
    pub reads: u64,
    /// Page writes at snapshot time (or delta).
    pub writes: u64,
}

impl IoSnapshot {
    /// Reads + writes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}r+{}w", self.reads, self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.add_reads(3);
        s.add_writes(2);
        s.add_alloc();
        s.add_alloc();
        s.add_free();
        assert_eq!(s.reads(), 3);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.total_ios(), 5);
        assert_eq!(s.live_pages(), 1);
    }

    #[test]
    fn snapshot_diff() {
        let s = IoStats::new();
        s.add_reads(5);
        let snap = s.snapshot();
        s.add_reads(2);
        s.add_writes(1);
        let d = s.since(&snap);
        assert_eq!(d.reads, 2);
        assert_eq!(d.writes, 1);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn reset_io_keeps_space() {
        let s = IoStats::new();
        s.add_reads(5);
        s.add_alloc();
        s.reset_io();
        assert_eq!(s.reads(), 0);
        assert_eq!(s.live_pages(), 1);
    }

    #[test]
    fn display_formats() {
        let snap = IoSnapshot { reads: 4, writes: 1 };
        assert_eq!(snap.to_string(), "4r+1w");
    }
}
