//! # mobidx-pager — external-memory page management with I/O accounting
//!
//! The paper ("On Indexing Mobile Objects", PODS '99) evaluates every index
//! in the standard external-memory model of Aggarwal & Vitter: each disk
//! access transfers one page of `B` entries, and the cost of an operation is
//! the *number of page accesses* (I/Os), not wall-clock time.
//!
//! This crate reproduces that model faithfully in memory:
//!
//! * a [`PageStore`] keeps every page of a structure (the simulated disk);
//! * a small [`BufferPool`] sits in front of it (the paper buffers only the
//!   root-to-leaf path, 3–4 pages, and clears the buffer before each
//!   query — see §5 of the paper);
//! * every fetch that misses the buffer counts one **read I/O**, every
//!   eviction of a dirty page counts one **write I/O**, and page
//!   allocations/frees are tracked so that space consumption (Figure 8)
//!   can be reported in pages.
//!
//! Page *capacity* is always derived from byte sizes via [`page_capacity`],
//! reproducing the paper's arithmetic (4096-byte pages, 20-byte segment
//! entries ⇒ B = 204 for the R*-tree; 12-byte entries ⇒ B = 341 for the
//! B+-tree).

mod backend;
mod buffer;
mod codec;
mod error;
mod file;
mod stats;
mod store;
pub mod wal;

pub use backend::{
    Backend, DelayBackend, Fault, FaultKind, FaultPlan, FaultStore, IoKind, JournalAck, MemBackend,
    RetryPolicy,
};
pub use buffer::{BufferPool, INDEXED_THRESHOLD};
pub use codec::{crc32, put_bytes, put_u32, put_u64, ByteReader, FixedCodec, PageCodec};
pub use error::PagerError;
pub use file::{DurableFaultStore, FileBackend, FsyncPolicy, RecoveredImage, PAGE_FILE, WAL_FILE};
pub use stats::{IoSnapshot, IoStats};
pub use store::{FrozenPages, PageId, PageStore};

/// Default logical page size used throughout the reproduction, in bytes.
///
/// Matches §5 of the paper: "We fixed the page size to 4096 bytes."
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Default buffer-pool capacity, in pages.
///
/// The paper (§5): "we buffer the path from the root to a leaf node, thus
/// the buffer size is only 3 or 4 pages."
pub const DEFAULT_BUFFER_PAGES: usize = 4;

/// Number of entries of `entry_bytes` bytes that fit in a page of
/// `page_size` bytes.
///
/// This is the paper's definition of the page capacity `B`. For example,
/// with the paper's numbers:
///
/// ```
/// use mobidx_pager::{page_capacity, DEFAULT_PAGE_SIZE};
/// // R*-tree line-segment entry: four 4-byte coordinates + 4-byte pointer.
/// assert_eq!(page_capacity(DEFAULT_PAGE_SIZE, 20), 204);
/// // B+-tree entry: 4-byte b-coordinate + 4-byte speed + 4-byte pointer.
/// assert_eq!(page_capacity(DEFAULT_PAGE_SIZE, 12), 341);
/// ```
#[must_use]
pub fn page_capacity(page_size: usize, entry_bytes: usize) -> usize {
    assert!(entry_bytes > 0, "entry size must be positive");
    page_size / entry_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_page_capacities() {
        assert_eq!(page_capacity(DEFAULT_PAGE_SIZE, 20), 204);
        assert_eq!(page_capacity(DEFAULT_PAGE_SIZE, 12), 341);
    }

    #[test]
    #[should_panic(expected = "entry size must be positive")]
    fn zero_entry_size_panics() {
        let _ = page_capacity(DEFAULT_PAGE_SIZE, 0);
    }
}
