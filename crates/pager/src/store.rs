//! The simulated disk: a slab of typed pages behind a buffer pool.

use crate::backend::{Backend, Fault, FaultKind, IoKind, JournalAck, MemBackend, RetryPolicy};
use crate::buffer::BufferPool;
use crate::codec::PageCodec;
use crate::error::PagerError;
use crate::file::RecoveredImage;
use crate::stats::IoStats;
use crate::DEFAULT_BUFFER_PAGES;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Identifier of a page within one [`PageStore`].
///
/// Page ids are dense indices; freed ids are recycled. A `PageId` is only
/// meaningful for the store that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(u32);

impl PageId {
    /// Builds a `PageId` from a raw slab index.
    #[must_use]
    pub fn from_index(idx: u32) -> Self {
        Self(idx)
    }

    /// The raw slab index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A store of typed pages `P` with I/O-counted access through a small LRU
/// buffer pool.
///
/// This is the "disk" of the external-memory model. Access pattern:
///
/// * [`PageStore::read`] — fetch a page for reading; a buffer miss costs
///   one read I/O.
/// * [`PageStore::write`] — fetch a page and mutate it in place; a miss
///   costs a read I/O and the page becomes dirty (its write I/O is paid
///   when it is evicted or flushed).
/// * [`PageStore::allocate`] / [`PageStore::free`] — create / destroy pages
///   (tracked for the space metric of Figure 8).
/// * [`PageStore::clear_buffer`] — flush + empty the pool; the paper does
///   this before every query so query costs are cold.
///
/// Pages are typed (structs, not raw bytes): the reproduction measures
/// I/O *counts*, which depend only on page capacities — those are enforced
/// by each index's entry-size arithmetic, see [`crate::page_capacity`].
///
/// At most one page can be **pinned** ([`PageStore::try_pin`]): a
/// pinned page lives outside the LRU pool in a dedicated slot, is never
/// evicted, and — crucially — survives [`PageStore::clear_buffer`].
/// Its first access after pinning still pays the fault-in read; every
/// later access is a buffer hit. Multi-tree facades pin each sub-tree's
/// root so a fan-out query pays `depth - 1` I/Os per descent instead of
/// `depth`, for one page of memory per sub-tree.
///
/// Every physical access is arbitrated by a [`Backend`]. The default
/// [`MemBackend`] permits everything, so the infallible methods
/// ([`PageStore::read`], [`PageStore::write`], …) behave exactly as
/// before. With a fault-injecting backend ([`crate::FaultStore`]),
/// use the fallible `try_*` twins: transient faults are retried within
/// the store's [`RetryPolicy`] (counted in [`IoStats`]), and unabsorbed
/// faults surface as typed [`PagerError`]s.
///
/// Pages are held behind [`Arc`] so the store can be [frozen]
/// (`PageStore::freeze`) into an immutable [`FrozenPages`] snapshot in
/// O(live slots) pointer bumps. Mutations go through [`Arc::make_mut`]:
/// a page is deep-copied only when a live snapshot still references it
/// (copy-on-write), so the content-copy cost between two snapshots is
/// O(pages dirtied in between). None of this changes the I/O
/// accounting — residency, misses, and write-backs are modeled by the
/// buffer pool exactly as before.
///
/// [frozen]: PageStore::freeze
#[derive(Debug)]
pub struct PageStore<P> {
    pages: Vec<Option<Arc<P>>>,
    free_list: Vec<u32>,
    buffer: BufferPool,
    stats: IoStats,
    backend: Box<dyn Backend>,
    retry: RetryPolicy,
    /// Whether the backend persists journaled bytes; cached from
    /// [`Backend::is_durable`] so the hot path pays nothing when false.
    durable: bool,
    /// Pages mutated since the last sealed commit window. Only
    /// maintained for durable backends. Invariant: an id is in at most
    /// one of `dirty_since_commit` / `freed_since_commit`.
    dirty_since_commit: BTreeSet<u32>,
    /// Pages freed since the last sealed commit window.
    freed_since_commit: BTreeSet<u32>,
    /// The pinned page (at most one) and its residency state.
    pinned: Option<(u32, PinState)>,
}

/// Residency of the pinned page (see [`PageStore::try_pin`]).
#[derive(Debug, Clone, Copy)]
struct PinState {
    /// Whether the page has been faulted in since it was pinned (the
    /// first post-pin access pays the read; later ones are hits).
    resident: bool,
    /// Whether a write-back is owed (paid on flush/clear, like the
    /// pool's dirty pages — the page just stays resident afterwards).
    dirty: bool,
}

impl<P> Default for PageStore<P> {
    fn default() -> Self {
        Self::new(DEFAULT_BUFFER_PAGES)
    }
}

impl<P> PageStore<P> {
    /// Creates an empty store with a buffer pool of `buffer_pages` pages
    /// and the infallible [`MemBackend`].
    #[must_use]
    pub fn new(buffer_pages: usize) -> Self {
        Self::with_backend(buffer_pages, Box::new(MemBackend))
    }

    /// Creates an empty store whose physical accesses are arbitrated by
    /// `backend`.
    #[must_use]
    pub fn with_backend(buffer_pages: usize, backend: Box<dyn Backend>) -> Self {
        let durable = backend.is_durable();
        Self {
            pages: Vec::new(),
            free_list: Vec::new(),
            buffer: BufferPool::new(buffer_pages),
            stats: IoStats::new(),
            backend,
            retry: RetryPolicy::default(),
            durable,
            dirty_since_commit: BTreeSet::new(),
            freed_since_commit: BTreeSet::new(),
            pinned: None,
        }
    }

    /// Pins page `id` (or releases the pin with `None`). At most one
    /// page is pinned; pinning a new one releases the previous pin,
    /// handing its residency (and any owed write-back) to the LRU pool.
    ///
    /// Pinning is an accounting operation — it performs no I/O itself.
    /// If the page is currently pool-resident, residency transfers to
    /// the pin slot; otherwise the next access pays the usual fault-in
    /// read, after which the page stays resident until unpinned or
    /// freed.
    ///
    /// # Errors
    /// Releasing a previously pinned *resident* page re-inserts it into
    /// the pool, which can evict a dirty page whose write-back the
    /// backend rejects.
    pub fn try_pin(&mut self, id: Option<PageId>) -> Result<(), PagerError> {
        if self.pinned.map(|(p, _)| p) == id.map(PageId::index) {
            return Ok(());
        }
        if let Some((old, st)) = self.pinned.take() {
            let live = self
                .pages
                .get(old as usize)
                .is_some_and(std::option::Option::is_some);
            if st.resident && live {
                self.insert_resident(PageId(old), st.dirty)?;
            }
        }
        if let Some(id) = id {
            let st = match self.buffer.remove(id) {
                Some(dirty) => PinState {
                    resident: true,
                    dirty,
                },
                None => PinState {
                    resident: false,
                    dirty: false,
                },
            };
            self.pinned = Some((id.index(), st));
        }
        Ok(())
    }

    /// The currently pinned page, if any.
    #[must_use]
    pub fn pinned(&self) -> Option<PageId> {
        self.pinned.map(|(p, _)| PageId(p))
    }

    /// Swaps in a new backend, returning the previous one. Page contents
    /// are untouched; only the fault policy changes.
    ///
    /// When the incoming backend is durable, every live page is marked
    /// dirty: nothing in this store has been journaled to *that*
    /// backend yet, so the first commit must carry the full image.
    pub fn set_backend(&mut self, backend: Box<dyn Backend>) -> Box<dyn Backend> {
        let prev = std::mem::replace(&mut self.backend, backend);
        self.durable = self.backend.is_durable();
        if self.durable {
            self.dirty_since_commit = self
                .pages
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.as_ref().map(|_| i as u32))
                .collect();
            self.freed_since_commit.clear();
        }
        prev
    }

    /// Whether the current backend persists journaled bytes (commits
    /// and checkpoints have real effect).
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.durable
    }

    /// How much work the next commit window will journal:
    /// `(dirty_pages, freed_pages)`. Always `(0, 0)` for non-durable
    /// backends.
    #[must_use]
    pub fn pending_commit(&self) -> (usize, usize) {
        (self.dirty_since_commit.len(), self.freed_since_commit.len())
    }

    /// The retry policy applied to transient faults.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Sets the retry policy applied to transient faults.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The label of the current backend (diagnostics).
    #[must_use]
    pub fn backend_label(&self) -> &'static str {
        self.backend.label()
    }

    /// The I/O statistics of this store.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Number of live (allocated, not freed) pages.
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.stats.live_pages()
    }

    /// Allocates a page holding `page`, returning its id.
    ///
    /// The new page enters the buffer dirty; its write I/O is paid on
    /// eviction or flush, like any other mutation. Infallible wrapper
    /// around [`PageStore::try_allocate`] for infallible backends.
    ///
    /// # Panics
    /// Panics if the backend injects a fault (never with [`MemBackend`]).
    pub fn allocate(&mut self, page: P) -> PageId {
        self.try_allocate(page)
            .expect("pager fault (use try_allocate with fallible backends)")
    }

    /// Allocates a page holding `page`, returning its id.
    ///
    /// # Errors
    /// Fails if the backend rejects the allocation, or if making room in
    /// the buffer forces a write-back that the backend rejects (the page
    /// is still allocated in that case — its write I/O simply never
    /// completed).
    pub fn try_allocate(&mut self, page: P) -> Result<PageId, PagerError> {
        let prospective = PageId(match self.free_list.last() {
            Some(&idx) => idx,
            None => u32::try_from(self.pages.len()).expect("page count exceeds u32"),
        });
        self.permit(IoKind::Alloc, prospective)?;
        let id = match self.free_list.pop() {
            Some(idx) => {
                debug_assert!(self.pages[idx as usize].is_none());
                self.pages[idx as usize] = Some(Arc::new(page));
                PageId(idx)
            }
            None => {
                let idx = u32::try_from(self.pages.len()).expect("page count exceeds u32");
                self.pages.push(Some(Arc::new(page)));
                PageId(idx)
            }
        };
        self.stats.add_alloc();
        if self.durable {
            // A recycled id moves from the freed set to the dirty set:
            // the next window journals its new contents, not its death.
            self.freed_since_commit.remove(&id.0);
            self.dirty_since_commit.insert(id.0);
        }
        self.insert_resident(id, true)?;
        Ok(id)
    }

    /// Frees page `id`, returning its contents. Infallible wrapper around
    /// [`PageStore::try_free`] for infallible backends.
    ///
    /// # Panics
    /// Panics if `id` is not a live page, or if the backend injects a
    /// fault (never with [`MemBackend`]).
    pub fn free(&mut self, id: PageId) -> P
    where
        P: Clone,
    {
        self.try_free(id)
            .expect("pager fault (use try_free with fallible backends)")
    }

    /// Frees page `id`, returning its contents.
    ///
    /// # Errors
    /// Fails if the backend rejects the deallocation (the page stays
    /// live).
    ///
    /// # Panics
    /// Panics if `id` is not a live page.
    pub fn try_free(&mut self, id: PageId) -> Result<P, PagerError>
    where
        P: Clone,
    {
        self.permit(IoKind::Free, id)?;
        // No write-back is owed for a page that ceases to exist.
        let _ = self.buffer.remove(id);
        if self.pinned.is_some_and(|(p, _)| p == id.0) {
            self.pinned = None;
        }
        let slot = self.pages[id.0 as usize].take().expect("free of dead page");
        self.free_list.push(id.0);
        self.stats.add_free();
        if self.durable {
            self.dirty_since_commit.remove(&id.0);
            self.freed_since_commit.insert(id.0);
        }
        // A frozen snapshot may still hold the page; it keeps its copy
        // and the store gives up its own reference.
        Ok(Arc::try_unwrap(slot).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Fetches page `id` for reading. A buffer miss costs one read I/O.
    /// Infallible wrapper around [`PageStore::try_read`] for infallible
    /// backends.
    ///
    /// # Panics
    /// Panics if `id` is not a live page, or if the backend injects a
    /// fault (never with [`MemBackend`]).
    pub fn read(&mut self, id: PageId) -> &P {
        self.try_read(id)
            .expect("pager fault (use try_read with fallible backends)")
    }

    /// Fetches page `id` for reading. A buffer miss costs one read I/O.
    ///
    /// # Errors
    /// Fails with [`PagerError::ReadFailed`] if the backend rejects the
    /// fetch (after exhausting retries for transient faults), or with a
    /// write error if faulting the page in forces a rejected write-back.
    ///
    /// # Panics
    /// Panics if `id` is not a live page.
    pub fn try_read(&mut self, id: PageId) -> Result<&P, PagerError> {
        self.try_fault_in(id, false)?;
        Ok(self.pages[id.0 as usize]
            .as_deref()
            .expect("read of dead page"))
    }

    /// Fetches page `id` and mutates it via `f`. A buffer miss costs one
    /// read I/O; the page becomes dirty. Infallible wrapper around
    /// [`PageStore::try_write`] for infallible backends.
    ///
    /// # Panics
    /// Panics if `id` is not a live page, or if the backend injects a
    /// fault (never with [`MemBackend`]).
    pub fn write<R>(&mut self, id: PageId, f: impl FnOnce(&mut P) -> R) -> R
    where
        P: Clone,
    {
        self.try_write(id, f)
            .expect("pager fault (use try_write with fallible backends)")
    }

    /// Fetches page `id` and mutates it via `f`. A buffer miss costs one
    /// read I/O; the page becomes dirty.
    ///
    /// # Errors
    /// * [`PagerError::WriteFailed`] — the mutation was rejected; `f` was
    ///   **not** run and the page holds its previous contents.
    /// * [`PagerError::TornWrite`] — the mutation tore: `f` **was** run
    ///   (the in-store copy holds the new contents) but durability was
    ///   not acknowledged, so the enclosing multi-page operation must be
    ///   treated as failed.
    /// * Read/write errors from faulting the page in.
    ///
    /// # Panics
    /// Panics if `id` is not a live page.
    pub fn try_write<R>(&mut self, id: PageId, f: impl FnOnce(&mut P) -> R) -> Result<R, PagerError>
    where
        P: Clone,
    {
        self.try_fault_in(id, true)?;
        match self.permit(IoKind::Mutate, id) {
            Ok(()) => {
                if self.durable {
                    self.dirty_since_commit.insert(id.0);
                }
                Ok(f(self.page_mut(id)))
            }
            Err(err @ PagerError::TornWrite { .. }) => {
                // Torn semantics: the mutation lands, the ack does not.
                if self.durable {
                    self.dirty_since_commit.insert(id.0);
                }
                let _ = f(self.page_mut(id));
                Err(err)
            }
            Err(err) => Err(err),
        }
    }

    /// Exclusive access to a live page's contents. Copy-on-write: when a
    /// [`FrozenPages`] snapshot still shares the page, `Arc::make_mut`
    /// clones it first — the snapshot keeps the sealed version.
    fn page_mut(&mut self, id: PageId) -> &mut P
    where
        P: Clone,
    {
        Arc::make_mut(
            self.pages[id.0 as usize]
                .as_mut()
                .expect("write of dead page"),
        )
    }

    /// Replaces the contents of page `id` wholesale.
    ///
    /// # Panics
    /// Panics if `id` is not a live page, or if the backend injects a
    /// fault (never with [`MemBackend`]).
    pub fn replace(&mut self, id: PageId, page: P)
    where
        P: Clone,
    {
        self.write(id, |slot| *slot = page);
    }

    /// Replaces the contents of page `id` wholesale.
    ///
    /// # Errors
    /// Same failure modes as [`PageStore::try_write`].
    pub fn try_replace(&mut self, id: PageId, page: P) -> Result<(), PagerError>
    where
        P: Clone,
    {
        self.try_write(id, |slot| *slot = page)
    }

    /// Flushes all dirty pages (counting write I/Os) and empties the
    /// buffer pool. The paper clears the pool before every query.
    /// Infallible wrapper around [`PageStore::try_clear_buffer`] for
    /// infallible backends.
    ///
    /// # Panics
    /// Panics if the backend injects a fault (never with [`MemBackend`]).
    pub fn clear_buffer(&mut self) {
        self.try_clear_buffer()
            .expect("pager fault (use try_clear_buffer with fallible backends)")
    }

    /// Flushes all dirty pages (counting write I/Os) and empties the
    /// buffer pool.
    ///
    /// # Errors
    /// Fails with the first rejected write-back. The pool is emptied
    /// regardless, and the remaining dirty pages are still offered to the
    /// backend (and counted) so a single fault cannot silently skip the
    /// rest of the flush.
    pub fn try_clear_buffer(&mut self) -> Result<(), PagerError> {
        let mut first_err = None;
        for (id, dirty) in self.buffer.drain() {
            if dirty {
                match self.permit(IoKind::WriteBack, id) {
                    Ok(()) => {
                        self.stats.add_writes(1);
                        self.stats.add_writeback();
                    }
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
        }
        // The pinned page pays its owed write-back like everyone else,
        // but keeps its residency: the pin slot is dedicated memory
        // outside the pool, which is the whole point of pinning.
        if let Err(e) = self.flush_pinned() {
            first_err = first_err.or(Some(e));
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Pays the pinned page's owed write-back (if dirty); it stays
    /// resident.
    fn flush_pinned(&mut self) -> Result<(), PagerError> {
        if let Some((pid, mut st)) = self.pinned {
            if st.dirty {
                self.permit(IoKind::WriteBack, PageId(pid))?;
                self.stats.add_writes(1);
                self.stats.add_writeback();
                st.dirty = false;
                self.pinned = Some((pid, st));
            }
        }
        Ok(())
    }

    /// Flushes all dirty pages (counting write I/Os) but keeps them
    /// resident and clean. Infallible wrapper around
    /// [`PageStore::try_flush`] for infallible backends.
    ///
    /// # Panics
    /// Panics if the backend injects a fault (never with [`MemBackend`]).
    pub fn flush(&mut self) {
        self.try_flush()
            .expect("pager fault (use try_flush with fallible backends)")
    }

    /// Flushes all dirty pages (counting write I/Os) but keeps them
    /// resident and clean.
    ///
    /// # Errors
    /// Fails with the first rejected write-back; pages whose write-back
    /// failed stay resident **dirty** so the write is still owed.
    pub fn try_flush(&mut self) -> Result<(), PagerError> {
        let entries = self.buffer.drain();
        let mut first_err = None;
        for &(id, dirty) in &entries {
            let mut still_dirty = false;
            if dirty {
                match self.permit(IoKind::WriteBack, id) {
                    Ok(()) => {
                        self.stats.add_writes(1);
                        self.stats.add_writeback();
                    }
                    Err(e) => {
                        first_err = first_err.or(Some(e));
                        still_dirty = true;
                    }
                }
            }
            let _ = self.buffer.insert(id, still_dirty);
        }
        if let Err(e) = self.flush_pinned() {
            first_err = first_err.or(Some(e));
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Direct, *un-counted* access to a page. For assertions, invariant
    /// checks and test oracles only — never in the measured path.
    ///
    /// # Panics
    /// Panics if `id` is not a live page.
    #[must_use]
    pub fn peek(&self, id: PageId) -> &P {
        self.pages[id.0 as usize]
            .as_deref()
            .expect("peek of dead page")
    }

    /// Iterates over `(id, page)` for all live pages, without I/O
    /// accounting. For invariant checks and space audits only.
    pub fn iter_live(&self) -> impl Iterator<Item = (PageId, &P)> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_deref().map(|p| (PageId(i as u32), p)))
    }

    /// Seals the current page contents into an immutable, shareable
    /// snapshot.
    ///
    /// Publication cost is O(live slots) reference-count bumps — no page
    /// contents are copied. Later mutations through this store
    /// copy-on-write exactly the pages the snapshot still shares (see
    /// [`PageStore::page_mut`]), so the amortized content-copy cost
    /// between two snapshots is O(pages dirtied in between).
    ///
    /// Snapshot reads are *not* I/O-counted here: a frozen page is a
    /// sealed in-memory image outside the buffer-pool residency model.
    /// Callers that model snapshot-read cost count the pages they visit
    /// themselves (see the frozen tree views in `mobidx-bptree`).
    #[must_use]
    pub fn freeze(&self) -> FrozenPages<P> {
        FrozenPages {
            pages: Arc::new(self.pages.clone()),
        }
    }

    fn try_fault_in(&mut self, id: PageId, dirty: bool) -> Result<(), PagerError> {
        assert!(
            self.pages
                .get(id.0 as usize)
                .is_some_and(std::option::Option::is_some),
            "access to dead page {id}"
        );
        if let Some((pid, mut st)) = self.pinned.filter(|&(p, _)| p == id.0) {
            if st.resident {
                self.stats.add_hits(1);
            } else {
                self.permit(IoKind::Read, id)?;
                self.stats.add_reads(1);
                st.resident = true;
            }
            st.dirty |= dirty;
            self.pinned = Some((pid, st));
            return Ok(());
        }
        if self.buffer.touch(id) {
            self.stats.add_hits(1);
            if dirty {
                self.buffer.mark_dirty(id);
            }
            return Ok(());
        }
        self.permit(IoKind::Read, id)?;
        self.stats.add_reads(1);
        self.insert_resident(id, dirty)
    }

    /// Inserts `id` into the buffer, accounting for the displaced page.
    /// A dirty eviction owes a write-back, which the backend may reject.
    fn insert_resident(&mut self, id: PageId, dirty: bool) -> Result<(), PagerError> {
        if let Some((evicted, was_dirty)) = self.buffer.insert(id, dirty) {
            self.stats.add_eviction();
            if was_dirty {
                self.permit(IoKind::WriteBack, evicted)?;
                self.stats.add_writes(1);
                self.stats.add_writeback();
            }
        }
        Ok(())
    }

    /// Asks the backend's permission for one access, retrying transient
    /// faults within the [`RetryPolicy`] (with exponential *logical*
    /// backoff — counted, not slept) and mapping unabsorbed faults to
    /// typed errors.
    fn permit(&mut self, kind: IoKind, id: PageId) -> Result<(), PagerError> {
        let mut attempt: u32 = 0;
        loop {
            match self.backend.permit(kind, id) {
                Ok(()) => {
                    if attempt > 0 {
                        self.stats.add_fault_recovered();
                    }
                    return Ok(());
                }
                Err(fault) => {
                    self.stats.add_fault_injected();
                    if fault.transient && attempt < self.retry.max_retries {
                        self.stats.add_retry();
                        self.stats.add_backoff_units(1 << attempt.min(16));
                        attempt += 1;
                        continue;
                    }
                    return Err(self.map_fault(kind, id, fault));
                }
            }
        }
    }

    fn map_fault(&self, kind: IoKind, id: PageId, fault: Fault) -> PagerError {
        match fault.kind {
            FaultKind::Crashed => PagerError::Crashed {
                after_ios: self.stats.total_ios(),
            },
            FaultKind::Torn => PagerError::TornWrite { page: id },
            FaultKind::Failed => match kind {
                IoKind::Read => PagerError::ReadFailed { page: id },
                IoKind::WriteBack | IoKind::Mutate | IoKind::Alloc | IoKind::Free => {
                    PagerError::WriteFailed { page: id }
                }
            },
        }
    }

    /// Runs one journal operation against the backend, retrying
    /// transient faults within the [`RetryPolicy`] exactly like
    /// [`PageStore::permit`] (same logical-backoff accounting).
    fn journal_retry(
        &mut self,
        id: PageId,
        mut op: impl FnMut(&mut dyn Backend) -> Result<JournalAck, Fault>,
    ) -> Result<JournalAck, PagerError> {
        let mut attempt: u32 = 0;
        loop {
            match op(self.backend.as_mut()) {
                Ok(ack) => {
                    if attempt > 0 {
                        self.stats.add_fault_recovered();
                    }
                    return Ok(ack);
                }
                Err(fault) => {
                    self.stats.add_fault_injected();
                    if fault.transient && attempt < self.retry.max_retries {
                        self.stats.add_retry();
                        self.stats.add_backoff_units(1 << attempt.min(16));
                        attempt += 1;
                        continue;
                    }
                    return Err(self.map_fault(IoKind::Mutate, id, fault));
                }
            }
        }
    }
}

/// An immutable snapshot of a [`PageStore`]'s pages at one instant
/// (see [`PageStore::freeze`]).
///
/// The handle is cheap to clone and safe to read from any thread; it
/// holds the sealed page versions alive independently of the store's
/// further mutations (copy-on-write) and of the store's own lifetime.
#[derive(Debug)]
pub struct FrozenPages<P> {
    pages: Arc<Vec<Option<Arc<P>>>>,
}

impl<P> Clone for FrozenPages<P> {
    fn clone(&self) -> Self {
        Self {
            pages: Arc::clone(&self.pages),
        }
    }
}

impl<P> FrozenPages<P> {
    /// The page `id` held at freeze time, or `None` if the slot was
    /// free. Un-counted — callers model snapshot-read cost themselves.
    #[must_use]
    pub fn get(&self, id: PageId) -> Option<&P> {
        self.pages.get(id.index() as usize)?.as_deref()
    }

    /// Number of live pages in the snapshot.
    #[must_use]
    pub fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }
}

/// Pseudo page id reported when a commit or checkpoint record itself
/// faults (no single page is to blame).
const COMMIT_PAGE: PageId = PageId(u32::MAX);

impl<P: PageCodec> PageStore<P> {
    /// Rebuilds a store from the byte image a durable backend
    /// recovered on open ([`crate::FileBackend::open`]): every live
    /// page is decoded, dead slots repopulate the free list, and the
    /// replayed-record count lands in [`IoStats::wal_replayed`].
    ///
    /// The rebuilt store starts with **no** pending commit work — its
    /// contents are exactly what is on disk. Returns `None` if any
    /// recovered image fails to decode as `P` (which a checksummed log
    /// only produces if the wrong page type is used).
    #[must_use]
    pub fn open_recovered(
        buffer_pages: usize,
        backend: Box<dyn Backend>,
        image: &RecoveredImage,
    ) -> Option<Self> {
        let mut store = Self::with_backend(buffer_pages, backend);
        for (idx, slot) in image.pages.iter().enumerate() {
            match slot {
                Some(bytes) => {
                    store.pages.push(Some(Arc::new(P::decode(bytes)?)));
                    store.stats.add_alloc();
                }
                None => {
                    store.pages.push(None);
                    store
                        .free_list
                        .push(u32::try_from(idx).expect("slot exceeds u32"));
                }
            }
        }
        store.stats.add_wal_replayed(image.replayed_records);
        Some(store)
    }

    /// Seals the current commit window: journals the byte image of
    /// every page dirtied since the last commit, the freed pages, and
    /// a commit record carrying `meta` — then clears the window. With
    /// the default [`crate::FsyncPolicy::OnCommit`] this is group
    /// commit: one fsync for the whole window.
    ///
    /// No-op (`Ok`) on non-durable backends.
    ///
    /// # Errors
    /// Fails with the first unabsorbed journal fault. The window is
    /// **kept** — if the store is still alive (a clean, non-crash
    /// failure), a later `try_commit` re-journals it in full, which is
    /// idempotent under replay (duplicate page images in one window
    /// resolve to the same bytes).
    pub fn try_commit(&mut self, meta: &[u8]) -> Result<(), PagerError> {
        if !self.durable {
            return Ok(());
        }
        let mut total = JournalAck::default();
        let dirty: Vec<u32> = self.dirty_since_commit.iter().copied().collect();
        let mut bytes = Vec::new();
        for idx in dirty {
            let page = self.pages[idx as usize]
                .as_ref()
                .expect("dirty page must be live (free clears the dirty mark)");
            bytes.clear();
            page.encode(&mut bytes);
            let id = PageId(idx);
            let ack = self.journal_retry(id, |b| b.journal_page(id, &bytes))?;
            total = total.merge(ack);
        }
        let freed: Vec<u32> = self.freed_since_commit.iter().copied().collect();
        for idx in freed {
            let id = PageId(idx);
            let ack = self.journal_retry(id, |b| b.journal_free(id))?;
            total = total.merge(ack);
        }
        let ack = self.journal_retry(COMMIT_PAGE, |b| b.journal_commit(meta))?;
        total = total.merge(ack);
        self.dirty_since_commit.clear();
        self.freed_since_commit.clear();
        self.stats.add_wal(total.records, total.bytes, total.fsyncs);
        Ok(())
    }

    /// Writes a full checkpoint — every live page plus `meta` — and
    /// truncates the journal. A checkpoint *is* a commit: current
    /// state becomes durable and the pending window is cleared, so it
    /// also absorbs any un-committed changes.
    ///
    /// No-op (`Ok`) on non-durable backends.
    ///
    /// # Errors
    /// Fails with the backend's fault; a clean failure leaves the
    /// previous on-disk state (and the pending window) intact.
    pub fn try_checkpoint(&mut self, meta: &[u8]) -> Result<(), PagerError> {
        if !self.durable {
            return Ok(());
        }
        let mut live = Vec::new();
        for (idx, slot) in self.pages.iter().enumerate() {
            if let Some(page) = slot {
                let mut bytes = Vec::new();
                page.encode(&mut bytes);
                live.push((PageId(idx as u32), bytes));
            }
        }
        let ack = self.journal_retry(COMMIT_PAGE, |b| b.checkpoint(&live, meta))?;
        self.dirty_since_commit.clear();
        self.freed_since_commit.clear();
        self.stats.add_wal(ack.records, ack.bytes, ack.fsyncs);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_counts() {
        let mut s: PageStore<Vec<u32>> = PageStore::new(2);
        let a = s.allocate(vec![1]);
        let _b = s.allocate(vec![2]);
        // Both fit in the buffer: no I/O yet.
        assert_eq!(s.stats().reads(), 0);
        assert_eq!(s.stats().writes(), 0);
        // Third page evicts `a` (dirty) -> one write.
        let c = s.allocate(vec![3]);
        assert_eq!(s.stats().writes(), 1);
        // Reading `a` now misses -> one read; evicts `b` (dirty) -> write.
        assert_eq!(s.read(a), &vec![1]);
        assert_eq!(s.stats().reads(), 1);
        assert_eq!(s.stats().writes(), 2);
        // `c` is still resident: reading it is free.
        assert_eq!(s.read(c), &vec![3]);
        assert_eq!(s.stats().reads(), 1);
    }

    #[test]
    fn write_marks_dirty_and_eviction_pays() {
        let mut s: PageStore<u64> = PageStore::new(1);
        let a = s.allocate(7);
        s.clear_buffer(); // pays the allocation write
        assert_eq!(s.stats().writes(), 1);
        // Read it back (miss), then mutate: dirty again.
        s.write(a, |v| *v = 8);
        assert_eq!(s.stats().reads(), 1);
        s.clear_buffer();
        assert_eq!(s.stats().writes(), 2);
        assert_eq!(*s.peek(a), 8);
    }

    #[test]
    fn clear_buffer_makes_reads_cold() {
        let mut s: PageStore<u8> = PageStore::new(4);
        let a = s.allocate(0);
        s.clear_buffer();
        let r0 = s.stats().reads();
        let _ = s.read(a);
        let _ = s.read(a); // hit
        assert_eq!(s.stats().reads() - r0, 1);
        s.clear_buffer();
        let _ = s.read(a); // cold again
        assert_eq!(s.stats().reads() - r0, 2);
    }

    #[test]
    fn free_recycles_ids_and_space() {
        let mut s: PageStore<u8> = PageStore::new(2);
        let a = s.allocate(1);
        assert_eq!(s.live_pages(), 1);
        let v = s.free(a);
        assert_eq!(v, 1);
        assert_eq!(s.live_pages(), 0);
        let b = s.allocate(2);
        assert_eq!(b.index(), a.index(), "freed id should be recycled");
    }

    #[test]
    fn freed_dirty_page_owes_no_write() {
        let mut s: PageStore<u8> = PageStore::new(2);
        let a = s.allocate(1);
        let _ = s.free(a);
        s.clear_buffer();
        assert_eq!(s.stats().writes(), 0);
    }

    #[test]
    fn flush_keeps_pages_resident() {
        let mut s: PageStore<u8> = PageStore::new(2);
        let a = s.allocate(1);
        s.flush();
        assert_eq!(s.stats().writes(), 1);
        let r0 = s.stats().reads();
        let _ = s.read(a); // still resident -> no read
        assert_eq!(s.stats().reads(), r0);
        s.clear_buffer(); // now clean -> no extra write
        assert_eq!(s.stats().writes(), 1);
    }

    #[test]
    #[should_panic(expected = "dead page")]
    fn read_after_free_panics() {
        let mut s: PageStore<u8> = PageStore::new(2);
        let a = s.allocate(1);
        let _ = s.free(a);
        let _ = s.read(a);
    }

    #[test]
    fn buffer_counters_track_hits_and_evictions() {
        let mut s: PageStore<u8> = PageStore::new(1);
        let a = s.allocate(1);
        let b = s.allocate(2); // evicts `a` (dirty): eviction + write-back
        assert_eq!(s.stats().evictions(), 1);
        assert_eq!(s.stats().writebacks(), 1);
        let _ = s.read(b); // resident: hit, no I/O
        assert_eq!(s.stats().hits(), 1);
        assert_eq!(s.stats().reads(), 0);
        let _ = s.read(a); // miss: evicts `b` (dirty)
        assert_eq!(s.stats().reads(), 1);
        assert_eq!(s.stats().evictions(), 2);
        assert_eq!(s.stats().writebacks(), 2);
        assert!((s.stats().hit_rate() - 0.5).abs() < 1e-12);
        s.clear_buffer(); // `a` resident and clean: no write-back
        assert_eq!(s.stats().writebacks(), 2);
    }

    /// A scripted backend for deterministic store-level fault tests:
    /// fails specific (0-based) `permit` calls with a fixed fault.
    #[derive(Debug)]
    struct Scripted {
        calls: u64,
        fail_on: Vec<u64>,
        fault: Fault,
    }

    impl Scripted {
        fn new(fail_on: Vec<u64>, kind: FaultKind, transient: bool) -> Self {
            Self {
                calls: 0,
                fail_on,
                fault: Fault { kind, transient },
            }
        }
    }

    impl Backend for Scripted {
        fn permit(&mut self, _kind: IoKind, _page: PageId) -> Result<(), Fault> {
            let n = self.calls;
            self.calls += 1;
            if self.fail_on.contains(&n) {
                Err(self.fault)
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn write_failed_leaves_page_unchanged() {
        let mut s: PageStore<u64> = PageStore::new(2);
        let a = s.allocate(7);
        // The scripted backend starts counting at its installation:
        // try_write issues touch (hit, no permit) then Mutate permit (0).
        s.set_backend(Box::new(Scripted::new(vec![0], FaultKind::Failed, false)));
        let err = s.try_write(a, |v| *v = 99).unwrap_err();
        assert_eq!(err, PagerError::WriteFailed { page: a });
        assert_eq!(*s.peek(a), 7, "failed write must not be applied");
        // The store keeps working afterwards.
        s.try_write(a, |v| *v = 8).unwrap();
        assert_eq!(*s.peek(a), 8);
    }

    #[test]
    fn torn_write_applies_then_errors() {
        let mut s: PageStore<u64> = PageStore::new(2);
        let a = s.allocate(7);
        s.set_backend(Box::new(Scripted::new(vec![0], FaultKind::Torn, false)));
        let err = s.try_write(a, |v| *v = 99).unwrap_err();
        assert_eq!(err, PagerError::TornWrite { page: a });
        assert_eq!(*s.peek(a), 99, "torn write must be applied");
    }

    #[test]
    fn transient_fault_is_retried_and_recovered() {
        let mut s: PageStore<u64> = PageStore::new(1);
        let a = s.allocate(7);
        s.clear_buffer();
        // The read permit (the scripted backend's calls 0 and 1) fails
        // twice transiently; the default policy (3 retries) absorbs it.
        s.set_backend(Box::new(Scripted::new(vec![0, 1], FaultKind::Failed, true)));
        assert_eq!(*s.try_read(a).unwrap(), 7);
        assert_eq!(s.stats().faults_injected(), 2);
        assert_eq!(s.stats().retries(), 2);
        assert_eq!(s.stats().faults_recovered(), 1);
        assert_eq!(s.stats().backoff_units(), 1 + 2, "exponential units");
        assert_eq!(s.stats().reads(), 1, "the read still cost one I/O");
    }

    #[test]
    fn transient_fault_exhausting_retries_surfaces() {
        let mut s: PageStore<u64> = PageStore::new(1);
        let a = s.allocate(7);
        s.clear_buffer();
        s.set_retry_policy(RetryPolicy { max_retries: 1 });
        s.set_backend(Box::new(Scripted::new(
            vec![0, 1, 2],
            FaultKind::Failed,
            true,
        )));
        let err = s.try_read(a).unwrap_err();
        assert_eq!(err, PagerError::ReadFailed { page: a });
        assert_eq!(s.stats().retries(), 1);
        assert_eq!(s.stats().faults_recovered(), 0);
    }

    #[test]
    fn crashed_store_fails_every_access() {
        use crate::backend::{FaultPlan, FaultStore};
        let mut s: PageStore<u64> =
            PageStore::with_backend(1, Box::new(FaultStore::new(FaultPlan::crash_after(9, 3))));
        let a = s.allocate(1);
        let b = s.allocate(2); // evicts a (dirty): I/O #1 (write-back)
        let _ = b;
        s.clear_buffer(); // I/O #2
        let _ = s.try_read(a).unwrap(); // I/O #3 — budget exhausted
        let err = s.try_read(b).unwrap_err();
        assert!(err.is_crash());
        // Dead forever: misses and mutations keep failing (`a` is still
        // buffer-resident, so only its Mutate permit hits the backend).
        assert!(s.try_read(b).is_err());
        assert!(s.try_write(a, |v| *v = 0).is_err());
        assert_eq!(s.backend_label(), "fault");
    }

    #[test]
    fn dirty_eviction_writeback_fault_surfaces() {
        let mut s: PageStore<u64> = PageStore::new(1);
        let a = s.allocate(1);
        // Allocating a second page evicts `a` (dirty). Scripted calls:
        // Alloc(0) for the new page, then WriteBack(1) for `a` — fails.
        s.set_backend(Box::new(Scripted::new(vec![1], FaultKind::Failed, false)));
        let err = s.try_allocate(2).unwrap_err();
        assert_eq!(err, PagerError::WriteFailed { page: a });
        // The new page was still allocated; its write simply never landed.
        assert_eq!(s.live_pages(), 2);
    }

    #[test]
    fn zero_capacity_buffer_pays_io_on_every_access() {
        let mut s: PageStore<u64> = PageStore::new(0);
        let a = s.allocate(7); // bounced straight out, dirty: 1 write
        assert_eq!(s.stats().writes(), 1);
        assert_eq!(s.stats().evictions(), 1);
        assert_eq!(s.stats().writebacks(), 1);
        let _ = s.read(a); // miss + clean bounce: 1 read, no write
        let _ = s.read(a); // never a hit
        assert_eq!(s.stats().reads(), 2);
        assert_eq!(s.stats().hits(), 0);
        s.write(a, |v| *v = 8); // miss + dirty bounce: read + write
        assert_eq!(s.stats().reads(), 3);
        assert_eq!(s.stats().writes(), 2);
        assert_eq!(*s.peek(a), 8);
    }

    #[test]
    fn zero_capacity_grouped_mutation_pays_exactly_one_write() {
        // The batch-apply contract on a buffer-less store: one grouped
        // mutation (k logical edits inside a single `try_write` closure)
        // faults the page in once (1 read) and bounces it back out dirty
        // once (1 write + 1 write-back) — never k of either. The same k
        // edits as k separate `write` calls pay k reads and k writes.
        let mut grouped: PageStore<Vec<u64>> = PageStore::new(0);
        let g = grouped.allocate(Vec::new()); // dirty bounce: 1 write
        assert_eq!(grouped.stats().writes(), 1);
        grouped.write(g, |v| {
            for x in 0..16 {
                v.push(x);
            }
        });
        assert_eq!(grouped.stats().reads(), 1, "one fault-in per group");
        assert_eq!(grouped.stats().writes(), 2, "one bounce per group");
        assert_eq!(grouped.stats().writebacks(), 2);

        let mut op_by_op: PageStore<Vec<u64>> = PageStore::new(0);
        let o = op_by_op.allocate(Vec::new());
        for x in 0..16 {
            op_by_op.write(o, |v| v.push(x));
        }
        assert_eq!(op_by_op.stats().reads(), 16);
        assert_eq!(op_by_op.stats().writes(), 17);
        assert_eq!(grouped.peek(g), op_by_op.peek(o), "same final contents");
    }

    #[test]
    fn capacity_one_counters_match_io_deltas() {
        let mut s: PageStore<u64> = PageStore::new(1);
        let a = s.allocate(1); // resident, dirty — no I/O yet
        assert_eq!((s.stats().reads(), s.stats().writes()), (0, 0));

        let b = s.allocate(2); // evicts dirty a: 1 write-back
        assert_eq!(s.stats().writes(), 1);
        assert_eq!(s.stats().evictions(), 1);
        assert_eq!(s.stats().writebacks(), 1);

        // Repeated access to the resident page is free.
        let _ = s.read(b);
        let _ = s.read(b);
        assert_eq!(s.stats().reads(), 0);
        assert_eq!(s.stats().hits(), 2);

        // Alternating between two pages thrashes: every switch is one
        // read (miss) and — only when the evictee is dirty — one write.
        let _ = s.read(a); // miss; b dirty from its allocation: write-back
        assert_eq!((s.stats().reads(), s.stats().writes()), (1, 2));
        s.write(b, |v| *v = 20); // miss; a clean; b now dirty again
        assert_eq!((s.stats().reads(), s.stats().writes()), (2, 2));
        let _ = s.read(a); // miss; evicts dirty b: read + write
        assert_eq!((s.stats().reads(), s.stats().writes()), (3, 3));
        assert_eq!(s.stats().hits(), 2); // unchanged throughout
        assert_eq!(s.stats().evictions(), 4);
        assert_eq!(s.stats().writebacks(), 3);
        assert_eq!(*s.peek(b), 20);
    }

    #[test]
    fn pinned_page_survives_clear_buffer() {
        let mut s: PageStore<u8> = PageStore::new(2);
        let a = s.allocate(1);
        s.clear_buffer();
        s.try_pin(Some(a)).unwrap();
        // First post-pin access pays the fault-in read…
        let _ = s.read(a);
        assert_eq!(s.stats().reads(), 1);
        // …then stays resident across clear_buffer, unlike pool pages.
        s.clear_buffer();
        let _ = s.read(a);
        assert_eq!(s.stats().reads(), 1);
        assert_eq!(s.stats().hits(), 1);
        assert_eq!(s.pinned(), Some(a));
    }

    #[test]
    fn pinned_dirty_page_pays_writeback_but_stays_resident() {
        let mut s: PageStore<u64> = PageStore::new(2);
        let a = s.allocate(7);
        s.clear_buffer();
        s.try_pin(Some(a)).unwrap();
        s.write(a, |v| *v = 8); // fault-in read, dirty in the pin slot
        assert_eq!(s.stats().reads(), 1);
        let w0 = s.stats().writes();
        s.clear_buffer(); // pays the owed write-back…
        assert_eq!(s.stats().writes(), w0 + 1);
        let _ = s.read(a); // …but the page is still resident
        assert_eq!(s.stats().reads(), 1);
        s.clear_buffer(); // clean now: no second write
        assert_eq!(s.stats().writes(), w0 + 1);
    }

    #[test]
    fn pin_transfers_pool_residency_and_repin_releases() {
        let mut s: PageStore<u8> = PageStore::new(2);
        let a = s.allocate(1);
        let b = s.allocate(2);
        // `a` is pool-resident (dirty from allocation): pinning adopts
        // both residency and the owed write-back.
        s.try_pin(Some(a)).unwrap();
        let _ = s.read(a);
        assert_eq!(s.stats().reads(), 0, "adopted residency: no fault-in");
        // Re-pinning to `b` hands `a` (dirty) back to the pool.
        s.try_pin(Some(b)).unwrap();
        assert_eq!(s.pinned(), Some(b));
        s.clear_buffer(); // a's write-back is still owed via the pool
        let _ = s.read(a);
        assert_eq!(s.stats().reads(), 1);
        // Freeing the pinned page drops the pin.
        let _ = s.free(b);
        assert_eq!(s.pinned(), None);
    }

    #[test]
    fn freeze_is_cow_and_free_of_io_accounting() {
        let mut s: PageStore<Vec<u32>> = PageStore::new(1);
        let a = s.allocate(vec![1]);
        let b = s.allocate(vec![2]);
        let snap = s.freeze();
        let (r0, w0) = (s.stats().reads(), s.stats().writes());

        // Mutations after the freeze land in a private copy; the
        // snapshot keeps the sealed version, and the snapshot itself
        // never perturbs the store's I/O accounting.
        s.write(a, |v| v.push(10));
        assert_eq!(snap.get(a), Some(&vec![1]));
        assert_eq!(s.peek(a), &vec![1, 10]);
        assert_eq!(snap.get(b), Some(&vec![2]));

        // Freeing a snapshot-held page leaves the snapshot intact.
        let freed = s.free(b);
        assert_eq!(freed, vec![2]);
        assert_eq!(snap.get(b), Some(&vec![2]));
        assert_eq!(snap.live_pages(), 2);

        // The write above cost exactly what it would without the
        // snapshot (one miss-read of `a`, write-backs via the pool).
        let mut plain: PageStore<Vec<u32>> = PageStore::new(1);
        let pa = plain.allocate(vec![1]);
        let _pb = plain.allocate(vec![2]);
        let (pr0, pw0) = (plain.stats().reads(), plain.stats().writes());
        plain.write(pa, |v| v.push(10));
        assert_eq!(s.stats().reads() - r0, plain.stats().reads() - pr0);
        assert_eq!(s.stats().writes() - w0, plain.stats().writes() - pw0);
    }

    #[test]
    fn frozen_snapshot_outlives_store() {
        let snap = {
            let mut s: PageStore<u64> = PageStore::new(2);
            let a = s.allocate(7);
            let f = s.freeze();
            s.write(a, |v| *v = 8);
            f
        };
        assert_eq!(snap.get(PageId::from_index(0)), Some(&7));
    }

    #[test]
    fn iter_live_sees_only_live() {
        let mut s: PageStore<u8> = PageStore::new(4);
        let _a = s.allocate(1);
        let b = s.allocate(2);
        let _c = s.allocate(3);
        let _ = s.free(b);
        let live: Vec<u8> = s.iter_live().map(|(_, p)| *p).collect();
        assert_eq!(live, vec![1, 3]);
    }
}
