//! The simulated disk: a slab of typed pages behind a buffer pool.

use crate::buffer::BufferPool;
use crate::stats::IoStats;
use crate::DEFAULT_BUFFER_PAGES;

/// Identifier of a page within one [`PageStore`].
///
/// Page ids are dense indices; freed ids are recycled. A `PageId` is only
/// meaningful for the store that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(u32);

impl PageId {
    /// Builds a `PageId` from a raw slab index.
    #[must_use]
    pub fn from_index(idx: u32) -> Self {
        Self(idx)
    }

    /// The raw slab index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A store of typed pages `P` with I/O-counted access through a small LRU
/// buffer pool.
///
/// This is the "disk" of the external-memory model. Access pattern:
///
/// * [`PageStore::read`] — fetch a page for reading; a buffer miss costs
///   one read I/O.
/// * [`PageStore::write`] — fetch a page and mutate it in place; a miss
///   costs a read I/O and the page becomes dirty (its write I/O is paid
///   when it is evicted or flushed).
/// * [`PageStore::allocate`] / [`PageStore::free`] — create / destroy pages
///   (tracked for the space metric of Figure 8).
/// * [`PageStore::clear_buffer`] — flush + empty the pool; the paper does
///   this before every query so query costs are cold.
///
/// Pages are typed (structs, not raw bytes): the reproduction measures
/// I/O *counts*, which depend only on page capacities — those are enforced
/// by each index's entry-size arithmetic, see [`crate::page_capacity`].
#[derive(Debug)]
pub struct PageStore<P> {
    pages: Vec<Option<P>>,
    free_list: Vec<u32>,
    buffer: BufferPool,
    stats: IoStats,
}

impl<P> Default for PageStore<P> {
    fn default() -> Self {
        Self::new(DEFAULT_BUFFER_PAGES)
    }
}

impl<P> PageStore<P> {
    /// Creates an empty store with a buffer pool of `buffer_pages` pages.
    #[must_use]
    pub fn new(buffer_pages: usize) -> Self {
        Self {
            pages: Vec::new(),
            free_list: Vec::new(),
            buffer: BufferPool::new(buffer_pages),
            stats: IoStats::new(),
        }
    }

    /// The I/O statistics of this store.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Number of live (allocated, not freed) pages.
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.stats.live_pages()
    }

    /// Allocates a page holding `page`, returning its id.
    ///
    /// The new page enters the buffer dirty; its write I/O is paid on
    /// eviction or flush, like any other mutation.
    pub fn allocate(&mut self, page: P) -> PageId {
        let id = match self.free_list.pop() {
            Some(idx) => {
                debug_assert!(self.pages[idx as usize].is_none());
                self.pages[idx as usize] = Some(page);
                PageId(idx)
            }
            None => {
                let idx = u32::try_from(self.pages.len()).expect("page count exceeds u32");
                self.pages.push(Some(page));
                PageId(idx)
            }
        };
        self.stats.add_alloc();
        if let Some((_, was_dirty)) = self.buffer.insert(id, true) {
            self.stats.add_eviction();
            if was_dirty {
                self.stats.add_writes(1);
                self.stats.add_writeback();
            }
        }
        id
    }

    /// Frees page `id`, returning its contents.
    ///
    /// # Panics
    /// Panics if `id` is not a live page.
    pub fn free(&mut self, id: PageId) -> P {
        // No write-back is owed for a page that ceases to exist.
        let _ = self.buffer.remove(id);
        let slot = self.pages[id.0 as usize].take().expect("free of dead page");
        self.free_list.push(id.0);
        self.stats.add_free();
        slot
    }

    /// Fetches page `id` for reading. A buffer miss costs one read I/O.
    ///
    /// # Panics
    /// Panics if `id` is not a live page.
    pub fn read(&mut self, id: PageId) -> &P {
        self.fault_in(id, false);
        self.pages[id.0 as usize]
            .as_ref()
            .expect("read of dead page")
    }

    /// Fetches page `id` and mutates it via `f`. A buffer miss costs one
    /// read I/O; the page becomes dirty.
    ///
    /// # Panics
    /// Panics if `id` is not a live page.
    pub fn write<R>(&mut self, id: PageId, f: impl FnOnce(&mut P) -> R) -> R {
        self.fault_in(id, true);
        f(self.pages[id.0 as usize]
            .as_mut()
            .expect("write of dead page"))
    }

    /// Replaces the contents of page `id` wholesale.
    pub fn replace(&mut self, id: PageId, page: P) {
        self.write(id, |slot| *slot = page);
    }

    /// Flushes all dirty pages (counting write I/Os) and empties the
    /// buffer pool. The paper clears the pool before every query.
    pub fn clear_buffer(&mut self) {
        for (_, dirty) in self.buffer.drain() {
            if dirty {
                self.stats.add_writes(1);
                self.stats.add_writeback();
            }
        }
    }

    /// Flushes all dirty pages (counting write I/Os) but keeps them
    /// resident and clean.
    pub fn flush(&mut self) {
        let entries = self.buffer.drain();
        for &(id, dirty) in &entries {
            if dirty {
                self.stats.add_writes(1);
                self.stats.add_writeback();
            }
            let _ = self.buffer.insert(id, false);
        }
    }

    /// Direct, *un-counted* access to a page. For assertions, invariant
    /// checks and test oracles only — never in the measured path.
    ///
    /// # Panics
    /// Panics if `id` is not a live page.
    #[must_use]
    pub fn peek(&self, id: PageId) -> &P {
        self.pages[id.0 as usize]
            .as_ref()
            .expect("peek of dead page")
    }

    /// Iterates over `(id, page)` for all live pages, without I/O
    /// accounting. For invariant checks and space audits only.
    pub fn iter_live(&self) -> impl Iterator<Item = (PageId, &P)> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (PageId(i as u32), p)))
    }

    fn fault_in(&mut self, id: PageId, dirty: bool) {
        assert!(
            self.pages
                .get(id.0 as usize)
                .is_some_and(std::option::Option::is_some),
            "access to dead page {id}"
        );
        if self.buffer.touch(id) {
            self.stats.add_hits(1);
            if dirty {
                self.buffer.mark_dirty(id);
            }
            return;
        }
        self.stats.add_reads(1);
        if let Some((_, was_dirty)) = self.buffer.insert(id, dirty) {
            self.stats.add_eviction();
            if was_dirty {
                self.stats.add_writes(1);
                self.stats.add_writeback();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_counts() {
        let mut s: PageStore<Vec<u32>> = PageStore::new(2);
        let a = s.allocate(vec![1]);
        let _b = s.allocate(vec![2]);
        // Both fit in the buffer: no I/O yet.
        assert_eq!(s.stats().reads(), 0);
        assert_eq!(s.stats().writes(), 0);
        // Third page evicts `a` (dirty) -> one write.
        let c = s.allocate(vec![3]);
        assert_eq!(s.stats().writes(), 1);
        // Reading `a` now misses -> one read; evicts `b` (dirty) -> write.
        assert_eq!(s.read(a), &vec![1]);
        assert_eq!(s.stats().reads(), 1);
        assert_eq!(s.stats().writes(), 2);
        // `c` is still resident: reading it is free.
        assert_eq!(s.read(c), &vec![3]);
        assert_eq!(s.stats().reads(), 1);
    }

    #[test]
    fn write_marks_dirty_and_eviction_pays() {
        let mut s: PageStore<u64> = PageStore::new(1);
        let a = s.allocate(7);
        s.clear_buffer(); // pays the allocation write
        assert_eq!(s.stats().writes(), 1);
        // Read it back (miss), then mutate: dirty again.
        s.write(a, |v| *v = 8);
        assert_eq!(s.stats().reads(), 1);
        s.clear_buffer();
        assert_eq!(s.stats().writes(), 2);
        assert_eq!(*s.peek(a), 8);
    }

    #[test]
    fn clear_buffer_makes_reads_cold() {
        let mut s: PageStore<u8> = PageStore::new(4);
        let a = s.allocate(0);
        s.clear_buffer();
        let r0 = s.stats().reads();
        let _ = s.read(a);
        let _ = s.read(a); // hit
        assert_eq!(s.stats().reads() - r0, 1);
        s.clear_buffer();
        let _ = s.read(a); // cold again
        assert_eq!(s.stats().reads() - r0, 2);
    }

    #[test]
    fn free_recycles_ids_and_space() {
        let mut s: PageStore<u8> = PageStore::new(2);
        let a = s.allocate(1);
        assert_eq!(s.live_pages(), 1);
        let v = s.free(a);
        assert_eq!(v, 1);
        assert_eq!(s.live_pages(), 0);
        let b = s.allocate(2);
        assert_eq!(b.index(), a.index(), "freed id should be recycled");
    }

    #[test]
    fn freed_dirty_page_owes_no_write() {
        let mut s: PageStore<u8> = PageStore::new(2);
        let a = s.allocate(1);
        let _ = s.free(a);
        s.clear_buffer();
        assert_eq!(s.stats().writes(), 0);
    }

    #[test]
    fn flush_keeps_pages_resident() {
        let mut s: PageStore<u8> = PageStore::new(2);
        let a = s.allocate(1);
        s.flush();
        assert_eq!(s.stats().writes(), 1);
        let r0 = s.stats().reads();
        let _ = s.read(a); // still resident -> no read
        assert_eq!(s.stats().reads(), r0);
        s.clear_buffer(); // now clean -> no extra write
        assert_eq!(s.stats().writes(), 1);
    }

    #[test]
    #[should_panic(expected = "dead page")]
    fn read_after_free_panics() {
        let mut s: PageStore<u8> = PageStore::new(2);
        let a = s.allocate(1);
        let _ = s.free(a);
        let _ = s.read(a);
    }

    #[test]
    fn buffer_counters_track_hits_and_evictions() {
        let mut s: PageStore<u8> = PageStore::new(1);
        let a = s.allocate(1);
        let b = s.allocate(2); // evicts `a` (dirty): eviction + write-back
        assert_eq!(s.stats().evictions(), 1);
        assert_eq!(s.stats().writebacks(), 1);
        let _ = s.read(b); // resident: hit, no I/O
        assert_eq!(s.stats().hits(), 1);
        assert_eq!(s.stats().reads(), 0);
        let _ = s.read(a); // miss: evicts `b` (dirty)
        assert_eq!(s.stats().reads(), 1);
        assert_eq!(s.stats().evictions(), 2);
        assert_eq!(s.stats().writebacks(), 2);
        assert!((s.stats().hit_rate() - 0.5).abs() < 1e-12);
        s.clear_buffer(); // `a` resident and clean: no write-back
        assert_eq!(s.stats().writebacks(), 2);
    }

    #[test]
    fn iter_live_sees_only_live() {
        let mut s: PageStore<u8> = PageStore::new(4);
        let _a = s.allocate(1);
        let b = s.allocate(2);
        let _c = s.allocate(3);
        let _ = s.free(b);
        let live: Vec<u8> = s.iter_live().map(|(_, p)| *p).collect();
        assert_eq!(live, vec![1, 3]);
    }
}
