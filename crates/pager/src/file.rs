//! The durable backend: a real page file plus a write-ahead log.
//!
//! [`FileBackend`] is the first backend that actually persists bytes.
//! A store using it journals every commit window ([`crate::wal`]) into
//! `wal.log` and periodically checkpoints the full image into
//! `pages.mdb`:
//!
//! * **Commit protocol** — the store serializes each page dirtied since
//!   the last commit and calls [`Backend::journal_page`], then
//!   [`Backend::journal_free`] for freed pages, then
//!   [`Backend::journal_commit`] to seal the window. Fsyncs follow the
//!   [`FsyncPolicy`]; the default (`OnCommit`) is group commit — one
//!   fsync per window regardless of how many pages it carries.
//! * **Checkpoint** — [`Backend::checkpoint`] writes every live page to
//!   `pages.mdb.tmp`, fsyncs, renames over `pages.mdb` (atomic on
//!   POSIX), then truncates the log. A crash anywhere in between leaves
//!   either the old image + full log or the new image + (stale but
//!   seq-filtered) log — both recover correctly.
//! * **Recovery** — [`FileBackend::open`] loads the checkpoint image,
//!   replays committed log windows with a higher sequence number,
//!   truncates the torn tail, and hands the result back as a
//!   [`RecoveredImage`] for the store to decode.
//!
//! [`DurableFaultStore`] aims the existing deterministic fault matrix
//! ([`FaultStore`]) at this real file pair — page-level faults and
//! WAL-level faults are driven by two *independent* plans, so tests can
//! crash during the Nth journal append while page traffic stays clean,
//! or tear an in-memory mutation while the log stays intact.

use crate::backend::{Backend, Fault, FaultKind, FaultStore, IoKind, JournalAck};
use crate::codec::{crc32, put_bytes, put_u32, put_u64, ByteReader};
use crate::store::PageId;
use crate::wal::{self, WalOp, WalRecord};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Page-file name inside a [`FileBackend`] directory.
pub const PAGE_FILE: &str = "pages.mdb";
/// Write-ahead-log name inside a [`FileBackend`] directory.
pub const WAL_FILE: &str = "wal.log";
const PAGE_TMP: &str = "pages.mdb.tmp";
const PAGE_MAGIC: &[u8; 8] = b"MOBIDXPF";
const PAGE_VERSION: u32 = 1;

/// When the durable backend issues `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync after every journal append. Maximum paranoia, one sync
    /// per record.
    Always,
    /// Fsync once per sealed commit window (group commit) and per
    /// checkpoint — the default: a window is durable exactly when its
    /// commit record is.
    #[default]
    OnCommit,
    /// Never fsync; bytes reach the OS but durability across *OS*
    /// crashes is not promised. Process-crash recovery still works,
    /// which is what the harness and benches exercise.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling (`always` / `on-commit` / `never`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(Self::Always),
            "on-commit" | "oncommit" | "commit" => Some(Self::OnCommit),
            "never" => Some(Self::Never),
            _ => None,
        }
    }

    /// The canonical CLI spelling ([`Self::parse`] accepts it back).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Always => "always",
            Self::OnCommit => "on-commit",
            Self::Never => "never",
        }
    }
}

/// What [`FileBackend::open`] recovered from disk: the byte image of
/// every live page as of the last committed window, plus the metadata
/// blob that window carried. [`crate::PageStore::open_recovered`]
/// decodes it back into typed pages.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveredImage {
    /// Slab of page images; `None` slots are dead (freed or never
    /// allocated).
    pub pages: Vec<Option<Vec<u8>>>,
    /// The metadata blob sealed by the newest committed window (or
    /// checkpoint).
    pub meta: Vec<u8>,
    /// The newest committed sequence number.
    pub commit_seq: u64,
    /// WAL records replayed (committed windows only, commit records
    /// included).
    pub replayed_records: u64,
    /// Bytes of torn/uncommitted log tail discarded on open.
    pub dropped_bytes: u64,
}

impl RecoveredImage {
    /// Whether nothing was recovered (a fresh directory).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.commit_seq == 0 && self.pages.iter().all(Option::is_none)
    }

    /// Number of live page images.
    #[must_use]
    pub fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }
}

/// The real-file durable backend (see the module docs).
///
/// `permit` allows everything — durability changes what *happens* on
/// journal calls, not which accesses succeed. Fault injection against
/// the files goes through [`DurableFaultStore`].
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    wal: File,
    wal_len: u64,
    policy: FsyncPolicy,
    commit_seq: u64,
    total: JournalAck,
}

impl FileBackend {
    /// Opens (or creates) the backend rooted at `dir`, running crash
    /// recovery: checkpoint image + committed WAL windows, torn tail
    /// truncated.
    ///
    /// # Errors
    /// Fails on real filesystem errors (permissions, full disk).
    /// Corrupt or torn content is not an error — it is recovered
    /// around, per the WAL contract.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> io::Result<(Self, RecoveredImage)> {
        std::fs::create_dir_all(dir)?;
        let (mut pages, mut meta, checkpoint_seq) = match std::fs::read(dir.join(PAGE_FILE)) {
            Ok(buf) => decode_page_file(&buf).unwrap_or_default(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Default::default(),
            Err(e) => return Err(e),
        };
        let wal_path = dir.join(WAL_FILE);
        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)?;
        let mut log = Vec::new();
        wal.read_to_end(&mut log)?;
        let scan = wal::replay(&log);
        let mut commit_seq = checkpoint_seq;
        let mut replayed_records = 0u64;
        for window in &scan.windows {
            if window.seq <= checkpoint_seq {
                // Stale window from before a checkpoint whose log
                // truncation the crash interrupted.
                continue;
            }
            for op in &window.ops {
                match op {
                    WalOp::Page { page, bytes } => {
                        let idx = page.index() as usize;
                        if pages.len() <= idx {
                            pages.resize(idx + 1, None);
                        }
                        pages[idx] = Some(bytes.clone());
                    }
                    WalOp::Free { page } => {
                        let idx = page.index() as usize;
                        if idx < pages.len() {
                            pages[idx] = None;
                        }
                    }
                }
            }
            meta = window.meta.clone();
            commit_seq = window.seq;
            replayed_records += 1 + window.ops.len() as u64;
        }
        // Drop the torn tail so new appends continue the committed
        // prefix.
        let committed = scan.committed_bytes as u64;
        wal.set_len(committed)?;
        wal.seek(SeekFrom::Start(committed))?;
        let image = RecoveredImage {
            pages,
            meta,
            commit_seq,
            replayed_records,
            dropped_bytes: scan.dropped_bytes as u64,
        };
        Ok((
            Self {
                dir: dir.to_path_buf(),
                wal,
                wal_len: committed,
                policy,
                commit_seq,
                total: JournalAck::default(),
            },
            image,
        ))
    }

    /// The directory holding the page file and WAL.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fsync policy in force.
    #[must_use]
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The newest committed sequence number.
    #[must_use]
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// Current WAL length in bytes.
    #[must_use]
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// Lifetime totals of journal work (bytes / fsyncs / records).
    #[must_use]
    pub fn totals(&self) -> JournalAck {
        self.total
    }

    /// The sequence number the *next* sealed window will carry.
    fn next_seq(&self) -> u64 {
        self.commit_seq + 1
    }

    /// Appends raw bytes to the WAL, optionally fsyncing.
    fn raw_append(&mut self, bytes: &[u8], sync: bool) -> io::Result<JournalAck> {
        self.wal.write_all(bytes)?;
        self.wal_len += bytes.len() as u64;
        let mut fsyncs = 0u64;
        if sync {
            self.wal.sync_all()?;
            fsyncs = 1;
        }
        let ack = JournalAck {
            bytes: bytes.len() as u64,
            fsyncs,
            records: 1,
        };
        self.total = self.total.merge(ack);
        Ok(ack)
    }

    /// Writes the checkpoint image atomically (tmp + rename) and
    /// truncates the WAL.
    fn write_checkpoint(
        &mut self,
        pages: &[(PageId, Vec<u8>)],
        meta: &[u8],
    ) -> io::Result<JournalAck> {
        let seq = self.next_seq();
        let buf = encode_page_file(seq, meta, pages);
        let tmp = self.dir.join(PAGE_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            if self.policy != FsyncPolicy::Never {
                f.sync_all()?;
            }
        }
        std::fs::rename(&tmp, self.dir.join(PAGE_FILE))?;
        self.wal.set_len(0)?;
        self.wal.seek(SeekFrom::Start(0))?;
        if self.policy != FsyncPolicy::Never {
            self.wal.sync_all()?;
        }
        self.wal_len = 0;
        self.commit_seq = seq;
        let ack = JournalAck {
            bytes: buf.len() as u64,
            fsyncs: if self.policy == FsyncPolicy::Never {
                0
            } else {
                2
            },
            records: 1,
        };
        self.total = self.total.merge(ack);
        Ok(ack)
    }
}

/// Maps a real filesystem error to a hard (non-transient) fault.
fn io_fault(_e: &io::Error) -> Fault {
    Fault {
        kind: FaultKind::Failed,
        transient: false,
    }
}

impl Backend for FileBackend {
    fn permit(&mut self, _kind: IoKind, _page: PageId) -> Result<(), Fault> {
        // Page contents live in the store's slab; the files only see
        // journal traffic. Every access is permitted.
        Ok(())
    }

    fn label(&self) -> &'static str {
        "file"
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn journal_page(&mut self, page: PageId, bytes: &[u8]) -> Result<JournalAck, Fault> {
        let mut frame = Vec::new();
        wal::encode_record(
            &WalRecord::PageImage {
                page,
                bytes: bytes.to_vec(),
            },
            &mut frame,
        );
        self.raw_append(&frame, self.policy == FsyncPolicy::Always)
            .map_err(|e| io_fault(&e))
    }

    fn journal_free(&mut self, page: PageId) -> Result<JournalAck, Fault> {
        let mut frame = Vec::new();
        wal::encode_record(&WalRecord::Free { page }, &mut frame);
        self.raw_append(&frame, self.policy == FsyncPolicy::Always)
            .map_err(|e| io_fault(&e))
    }

    fn journal_commit(&mut self, meta: &[u8]) -> Result<JournalAck, Fault> {
        let seq = self.next_seq();
        let mut frame = Vec::new();
        wal::encode_record(
            &WalRecord::Commit {
                seq,
                meta: meta.to_vec(),
            },
            &mut frame,
        );
        let sync = self.policy != FsyncPolicy::Never;
        let ack = self.raw_append(&frame, sync).map_err(|e| io_fault(&e))?;
        self.commit_seq = seq;
        Ok(ack)
    }

    fn checkpoint(
        &mut self,
        pages: &[(PageId, Vec<u8>)],
        meta: &[u8],
    ) -> Result<JournalAck, Fault> {
        self.write_checkpoint(pages, meta).map_err(|e| io_fault(&e))
    }
}

fn encode_page_file(commit_seq: u64, meta: &[u8], pages: &[(PageId, Vec<u8>)]) -> Vec<u8> {
    let slot_count = pages
        .iter()
        .map(|(id, _)| id.index() + 1)
        .max()
        .unwrap_or(0);
    let mut out = Vec::new();
    out.extend_from_slice(PAGE_MAGIC);
    put_u32(&mut out, PAGE_VERSION);
    put_u64(&mut out, commit_seq);
    put_bytes(&mut out, meta);
    put_u32(&mut out, slot_count);
    let mut slots: Vec<Option<&[u8]>> = vec![None; slot_count as usize];
    for (id, bytes) in pages {
        slots[id.index() as usize] = Some(bytes);
    }
    for slot in slots {
        match slot {
            Some(bytes) => {
                out.push(1);
                put_bytes(&mut out, bytes);
            }
            None => out.push(0),
        }
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

#[allow(clippy::type_complexity)]
fn decode_page_file(buf: &[u8]) -> Option<(Vec<Option<Vec<u8>>>, Vec<u8>, u64)> {
    if buf.len() < 4 {
        return None;
    }
    let (body, tail) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().ok()?);
    if crc32(body) != stored {
        return None;
    }
    let mut r = ByteReader::new(body);
    if r.take(8)? != PAGE_MAGIC {
        return None;
    }
    if r.u32()? != PAGE_VERSION {
        return None;
    }
    let commit_seq = r.u64()?;
    let meta = r.bytes()?.to_vec();
    let slot_count = r.u32()? as usize;
    let mut pages = Vec::with_capacity(slot_count);
    for _ in 0..slot_count {
        match r.u8()? {
            0 => pages.push(None),
            1 => pages.push(Some(r.bytes()?.to_vec())),
            _ => return None,
        }
    }
    if !r.is_empty() {
        return None;
    }
    Some((pages, meta, commit_seq))
}

/// Aims the deterministic fault matrix at a [`FileBackend`]: one
/// [`FaultStore`] plan arbitrates page-level accesses (`permit`), an
/// independent plan arbitrates journal appends and checkpoints — so a
/// test can tear WAL records or crash at the Nth append while page
/// traffic stays clean, or vice versa.
///
/// Fault semantics against the real files:
///
/// * **failed** — nothing is written; transient failures may be
///   retried by the store's policy and then succeed.
/// * **torn** — a deterministic *prefix* of the framed record reaches
///   the file (exactly what an interrupted `write` leaves behind), and
///   the store is dead from then on. Recovery drops the partial frame.
/// * **crashed** — the store dies before writing anything further.
///
/// After any torn/crash fault the adapter is dead: every subsequent
/// access or journal call fails with a crash fault. "Rebooting" is
/// reopening the directory with [`DurableFaultStore::open`] (or a
/// plain [`FileBackend::open`]), which sees exactly the bytes that
/// physically landed.
#[derive(Debug)]
pub struct DurableFaultStore {
    file: FileBackend,
    page_faults: FaultStore,
    wal_faults: FaultStore,
    /// Private splitmix64 stream for torn-prefix lengths.
    torn_rng: u64,
    dead: bool,
}

/// Pseudo page id the WAL fault plan sees for commit records.
const COMMIT_SLOT: u32 = u32::MAX;
/// Pseudo page id the WAL fault plan sees for checkpoints.
const CHECKPOINT_SLOT: u32 = u32::MAX - 1;

impl DurableFaultStore {
    /// Opens `dir` (with recovery) and arms the two fault plans.
    ///
    /// # Errors
    /// Fails on real filesystem errors, like [`FileBackend::open`].
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        page_plan: crate::FaultPlan,
        wal_plan: crate::FaultPlan,
    ) -> io::Result<(Self, RecoveredImage)> {
        let (file, image) = FileBackend::open(dir, policy)?;
        Ok((
            Self {
                file,
                page_faults: FaultStore::new(page_plan),
                wal_faults: FaultStore::new(wal_plan),
                torn_rng: wal_plan.seed ^ 0xA24B_AED4_963E_E407,
                dead: false,
            },
            image,
        ))
    }

    /// The wrapped file backend.
    #[must_use]
    pub fn file(&self) -> &FileBackend {
        &self.file
    }

    /// Total faults injected across both plans.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.page_faults.injected() + self.wal_faults.injected()
    }

    /// Whether a torn or crash fault has killed the store.
    #[must_use]
    pub fn dead(&self) -> bool {
        self.dead
    }

    fn next_torn_len(&mut self, frame_len: usize) -> usize {
        self.torn_rng = self.torn_rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.torn_rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // 1..frame_len: at least one byte lands, the frame never
        // completes.
        1 + (z as usize) % frame_len.max(2).saturating_sub(1)
    }

    const DEAD: Fault = Fault {
        kind: FaultKind::Crashed,
        transient: false,
    };

    /// Arbitrates one journal append of `frame`; on permit, appends it
    /// for real via `self.file`.
    fn arbitrated_append(
        &mut self,
        slot: u32,
        frame: &[u8],
        sync: bool,
    ) -> Result<JournalAck, Fault> {
        if self.dead {
            return Err(Self::DEAD);
        }
        // Journal appends are arbitrated as mutations: that is the
        // access class whose plan draws both clean write faults and
        // torn writes, and it advances the plan's write clock
        // (`crash_after_writes`) without disturbing the read clock.
        match self
            .wal_faults
            .permit(IoKind::Mutate, PageId::from_index(slot))
        {
            Ok(()) => self.file.raw_append(frame, sync).map_err(|e| io_fault(&e)),
            Err(fault) => match fault.kind {
                FaultKind::Failed => Err(fault),
                FaultKind::Torn => {
                    // An interrupted write: a prefix physically lands,
                    // then the process dies.
                    let cut = self.next_torn_len(frame.len());
                    let _ = self.file.raw_append(&frame[..cut], false);
                    self.dead = true;
                    Err(fault)
                }
                FaultKind::Crashed => {
                    self.dead = true;
                    Err(fault)
                }
            },
        }
    }
}

impl Backend for DurableFaultStore {
    fn permit(&mut self, kind: IoKind, page: PageId) -> Result<(), Fault> {
        if self.dead {
            return Err(Self::DEAD);
        }
        match self.page_faults.permit(kind, page) {
            Ok(()) => Ok(()),
            Err(fault) => {
                if fault.kind == FaultKind::Crashed {
                    self.dead = true;
                }
                Err(fault)
            }
        }
    }

    fn label(&self) -> &'static str {
        "durable-fault"
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn journal_page(&mut self, page: PageId, bytes: &[u8]) -> Result<JournalAck, Fault> {
        let mut frame = Vec::new();
        wal::encode_record(
            &WalRecord::PageImage {
                page,
                bytes: bytes.to_vec(),
            },
            &mut frame,
        );
        let sync = self.file.policy() == FsyncPolicy::Always;
        self.arbitrated_append(page.index(), &frame, sync)
    }

    fn journal_free(&mut self, page: PageId) -> Result<JournalAck, Fault> {
        let mut frame = Vec::new();
        wal::encode_record(&WalRecord::Free { page }, &mut frame);
        let sync = self.file.policy() == FsyncPolicy::Always;
        self.arbitrated_append(page.index(), &frame, sync)
    }

    fn journal_commit(&mut self, meta: &[u8]) -> Result<JournalAck, Fault> {
        let seq = self.file.next_seq();
        let mut frame = Vec::new();
        wal::encode_record(
            &WalRecord::Commit {
                seq,
                meta: meta.to_vec(),
            },
            &mut frame,
        );
        let sync = self.file.policy() != FsyncPolicy::Never;
        let ack = self.arbitrated_append(COMMIT_SLOT, &frame, sync)?;
        self.file.commit_seq = seq;
        Ok(ack)
    }

    fn checkpoint(
        &mut self,
        pages: &[(PageId, Vec<u8>)],
        meta: &[u8],
    ) -> Result<JournalAck, Fault> {
        if self.dead {
            return Err(Self::DEAD);
        }
        match self
            .wal_faults
            .permit(IoKind::Mutate, PageId::from_index(CHECKPOINT_SLOT))
        {
            Ok(()) => self.file.checkpoint(pages, meta),
            Err(fault) => match fault.kind {
                FaultKind::Failed => Err(fault),
                FaultKind::Torn => {
                    // A torn checkpoint: a partial tmp file lands, the
                    // rename never happens, the process dies. The old
                    // image + full log stay authoritative.
                    let seq = self.file.next_seq();
                    let buf = encode_page_file(seq, meta, pages);
                    let cut = self.next_torn_len(buf.len());
                    let _ = std::fs::write(self.file.dir().join(PAGE_TMP), &buf[..cut]);
                    self.dead = true;
                    Err(fault)
                }
                FaultKind::Crashed => {
                    self.dead = true;
                    Err(fault)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mobidx-pager-file-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pid(n: u32) -> PageId {
        PageId::from_index(n)
    }

    #[test]
    fn fresh_open_is_empty_and_commits_survive_reopen() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut b, image) = FileBackend::open(&dir, FsyncPolicy::OnCommit).unwrap();
            assert!(image.is_empty());
            assert!(b.is_durable());
            assert_eq!(b.label(), "file");
            b.journal_page(pid(0), b"root").unwrap();
            b.journal_page(pid(1), b"leaf").unwrap();
            let ack = b.journal_commit(b"meta-1").unwrap();
            assert_eq!(ack.fsyncs, 1, "group commit: one fsync per window");
            assert_eq!(b.commit_seq(), 1);
            // A second window frees a page.
            b.journal_free(pid(1)).unwrap();
            b.journal_commit(b"meta-2").unwrap();
        }
        let (b, image) = FileBackend::open(&dir, FsyncPolicy::OnCommit).unwrap();
        assert_eq!(image.commit_seq, 2);
        assert_eq!(image.meta, b"meta-2");
        assert_eq!(image.pages, vec![Some(b"root".to_vec()), None]);
        assert_eq!(image.replayed_records, 5);
        assert_eq!(image.dropped_bytes, 0);
        assert_eq!(b.commit_seq(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_window_is_dropped_and_wal_truncated() {
        let dir = tmp_dir("tail");
        {
            let (mut b, _) = FileBackend::open(&dir, FsyncPolicy::Never).unwrap();
            b.journal_page(pid(0), b"committed").unwrap();
            b.journal_commit(b"m").unwrap();
            // Window 2 never commits (the "crash").
            b.journal_page(pid(0), b"lost").unwrap();
            b.journal_page(pid(1), b"also lost").unwrap();
        }
        let committed_wal = {
            let (b, image) = FileBackend::open(&dir, FsyncPolicy::Never).unwrap();
            assert_eq!(image.pages, vec![Some(b"committed".to_vec())]);
            assert!(image.dropped_bytes > 0);
            b.wal_len()
        };
        // The truncation is physical: a third open sees no tail at all.
        let (b, image) = FileBackend::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(image.dropped_bytes, 0);
        assert_eq!(b.wal_len(), committed_wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_recovers_alone() {
        let dir = tmp_dir("checkpoint");
        {
            let (mut b, _) = FileBackend::open(&dir, FsyncPolicy::OnCommit).unwrap();
            b.journal_page(pid(0), b"a").unwrap();
            b.journal_commit(b"m1").unwrap();
            let live = vec![(pid(0), b"a".to_vec()), (pid(2), b"c".to_vec())];
            b.checkpoint(&live, b"ckpt-meta").unwrap();
            assert_eq!(b.wal_len(), 0);
            assert_eq!(b.commit_seq(), 2);
            // Post-checkpoint window.
            b.journal_page(pid(1), b"b").unwrap();
            b.journal_commit(b"m3").unwrap();
        }
        let (_, image) = FileBackend::open(&dir, FsyncPolicy::OnCommit).unwrap();
        assert_eq!(image.commit_seq, 3);
        assert_eq!(image.meta, b"m3");
        assert_eq!(
            image.pages,
            vec![
                Some(b"a".to_vec()),
                Some(b"b".to_vec()),
                Some(b"c".to_vec())
            ]
        );
        // Only the post-checkpoint window replays from the log.
        assert_eq!(image.replayed_records, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_windows_below_checkpoint_seq_are_skipped() {
        let dir = tmp_dir("stale");
        {
            let (mut b, _) = FileBackend::open(&dir, FsyncPolicy::Never).unwrap();
            b.journal_page(pid(0), b"old").unwrap();
            b.journal_commit(b"m1").unwrap();
        }
        // Simulate a crash between checkpoint rename and WAL
        // truncation: write a newer checkpoint image directly, leaving
        // the seq-1 window in the log.
        let buf = encode_page_file(5, b"ckpt", &[(pid(0), b"new".to_vec())]);
        std::fs::write(dir.join(PAGE_FILE), &buf).unwrap();
        let (_, image) = FileBackend::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(
            image.pages,
            vec![Some(b"new".to_vec())],
            "stale window must not clobber the newer checkpoint"
        );
        assert_eq!(image.commit_seq, 5);
        assert_eq!(image.replayed_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_page_file_recovers_from_wal_alone() {
        let dir = tmp_dir("corrupt");
        {
            let (mut b, _) = FileBackend::open(&dir, FsyncPolicy::Never).unwrap();
            b.journal_page(pid(0), b"x").unwrap();
            b.journal_commit(b"m").unwrap();
        }
        std::fs::write(dir.join(PAGE_FILE), b"not a page file").unwrap();
        let (_, image) = FileBackend::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(image.pages, vec![Some(b"x".to_vec())]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_counts() {
        let dir = tmp_dir("fsync");
        let (mut b, _) = FileBackend::open(&dir, FsyncPolicy::Always).unwrap();
        let a1 = b.journal_page(pid(0), b"p").unwrap();
        assert_eq!(a1.fsyncs, 1, "Always syncs every append");
        let dir2 = tmp_dir("fsync-never");
        let (mut b2, _) = FileBackend::open(&dir2, FsyncPolicy::Never).unwrap();
        let a2 = b2.journal_page(pid(0), b"p").unwrap();
        let a3 = b2.journal_commit(b"m").unwrap();
        assert_eq!(a2.fsyncs + a3.fsyncs, 0, "Never never syncs");
        assert!(b2.totals().bytes > 0);
        assert_eq!(b2.totals().records, 2);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("on-commit"), Some(FsyncPolicy::OnCommit));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn durable_fault_store_crash_mid_commit_recovers_previous_window() {
        let dir = tmp_dir("crash-mid");
        {
            let (mut b, image) = DurableFaultStore::open(
                &dir,
                FsyncPolicy::Never,
                FaultPlan::none(1),
                // Die on the 3rd journal append: window 2 never seals.
                FaultPlan::crash_after_writes(1, 3),
            )
            .unwrap();
            assert!(image.is_empty());
            b.journal_page(pid(0), b"w1").unwrap();
            b.journal_commit(b"m1").unwrap();
            b.journal_page(pid(0), b"w2").unwrap();
            let f = b.journal_commit(b"m2").unwrap_err();
            assert_eq!(f.kind, FaultKind::Crashed);
            assert!(b.dead());
            // Dead for everything afterwards.
            assert!(b.permit(IoKind::Read, pid(0)).is_err());
            assert!(b.journal_page(pid(1), b"x").is_err());
        }
        let (_, image) = FileBackend::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(image.commit_seq, 1);
        assert_eq!(image.pages, vec![Some(b"w1".to_vec())]);
        assert!(image.dropped_bytes > 0, "window 2's image was discarded");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_fault_store_torn_append_leaves_partial_frame() {
        let dir = tmp_dir("torn-append");
        let committed_len;
        {
            let (mut b, _) = DurableFaultStore::open(
                &dir,
                FsyncPolicy::Never,
                FaultPlan::none(2),
                FaultPlan::none(2),
            )
            .unwrap();
            b.journal_page(pid(0), b"keep").unwrap();
            b.journal_commit(b"m").unwrap();
            committed_len = b.file().wal_len();
        }
        {
            // Re-arm with a plan that tears every journal append.
            let torn_plan = FaultPlan {
                torn_per_mille: 1000,
                ..FaultPlan::none(3)
            };
            let (mut b, _) =
                DurableFaultStore::open(&dir, FsyncPolicy::Never, FaultPlan::none(3), torn_plan)
                    .unwrap();
            let before = b.file().wal_len();
            let f = b.journal_page(pid(1), b"torn-away").unwrap_err();
            assert_eq!(f.kind, FaultKind::Torn);
            assert!(b.dead());
            let after = b.file().wal_len();
            assert!(after > before, "a partial frame physically landed");
            // Dead: the next append fails as a crash, writing nothing.
            let f2 = b.journal_commit(b"m2").unwrap_err();
            assert_eq!(f2.kind, FaultKind::Crashed);
            assert_eq!(b.file().wal_len(), after);
        }
        let (b, image) = FileBackend::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(image.pages, vec![Some(b"keep".to_vec())]);
        assert!(image.dropped_bytes > 0);
        assert_eq!(b.wal_len(), committed_len, "tail truncated on reopen");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_fault_store_torn_checkpoint_keeps_old_image() {
        let dir = tmp_dir("torn-ckpt");
        {
            let (mut b, _) = DurableFaultStore::open(
                &dir,
                FsyncPolicy::Never,
                FaultPlan::none(4),
                FaultPlan::none(4),
            )
            .unwrap();
            b.journal_page(pid(0), b"v1").unwrap();
            b.journal_commit(b"m1").unwrap();
            // Checkpoint succeeds: image v1 on disk, log empty.
            b.checkpoint(&[(pid(0), b"v1".to_vec())], b"c1").unwrap();
        }
        {
            // Now a wal plan whose first arbitration tears — the tmp
            // file lands partially, the rename never happens.
            let torn_always = FaultPlan {
                torn_per_mille: 1000,
                ..FaultPlan::none(5)
            };
            let (mut b, _) =
                DurableFaultStore::open(&dir, FsyncPolicy::Never, FaultPlan::none(5), torn_always)
                    .unwrap();
            let f = b
                .checkpoint(&[(pid(0), b"v2".to_vec())], b"c2")
                .unwrap_err();
            assert_eq!(f.kind, FaultKind::Torn);
            assert!(b.dead());
            assert!(dir.join(PAGE_TMP).exists(), "partial tmp file landed");
        }
        let (_, image) = FileBackend::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(image.pages, vec![Some(b"v1".to_vec())]);
        assert_eq!(image.meta, b"c1");
        let _ = std::fs::remove_file(dir.join(PAGE_TMP));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn page_file_encoding_round_trips() {
        let pages = vec![
            (pid(0), vec![1, 2, 3]),
            (pid(2), vec![]),
            (pid(5), vec![9; 100]),
        ];
        let buf = encode_page_file(7, b"hello", &pages);
        let (decoded, meta, seq) = decode_page_file(&buf).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(meta, b"hello");
        assert_eq!(decoded.len(), 6);
        assert_eq!(decoded[0], Some(vec![1, 2, 3]));
        assert_eq!(decoded[1], None);
        assert_eq!(decoded[2], Some(vec![]));
        assert_eq!(decoded[5], Some(vec![9; 100]));
        // Any single-byte corruption fails the whole-file CRC.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x10;
            assert!(decode_page_file(&bad).is_none(), "flip at {i}");
        }
    }
}
