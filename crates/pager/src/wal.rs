//! Write-ahead log framing and recovery scan.
//!
//! The durable backend journals *commit windows*: the byte images of
//! every page dirtied since the last commit, the pages freed, and a
//! final commit record sealing the window. Recovery replays whole
//! windows only — a window without its commit record (the torn tail a
//! crash leaves behind) is discarded byte-for-byte, so recovered state
//! is always exactly the state as of some committed window ("reads see
//! a prefix of applies").
//!
//! # Record format
//!
//! Every record is framed as
//!
//! ```text
//! [len: u32 LE] [kind: u8] [payload…] [crc: u32 LE]
//! ```
//!
//! where `len` counts `kind + payload`, and `crc` is [`crc32`] over
//! `len ‖ kind ‖ payload` (the length prefix is covered, so a record
//! whose frame was truncated *and* whose tail happens to parse cannot
//! masquerade as valid). Payloads:
//!
//! * `kind 1` — page image: `[page: u32] [bytes: len-prefixed]`
//! * `kind 2` — free: `[page: u32]`
//! * `kind 3` — commit: `[seq: u64] [meta: len-prefixed]`

use crate::codec::{crc32, put_bytes, put_u32, put_u64, ByteReader};
use crate::store::PageId;

const KIND_PAGE: u8 = 1;
const KIND_FREE: u8 = 2;
const KIND_COMMIT: u8 = 3;

/// One logical WAL record (see the module docs for the wire format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// The full byte image of a page dirtied in this commit window.
    PageImage {
        /// The page the image belongs to.
        page: PageId,
        /// Its encoded contents ([`crate::PageCodec`]).
        bytes: Vec<u8>,
    },
    /// A page freed in this commit window.
    Free {
        /// The freed page.
        page: PageId,
    },
    /// Seals the current commit window; windows apply atomically.
    Commit {
        /// Monotonic commit sequence number.
        seq: u64,
        /// Opaque structure metadata (e.g. a B+-tree's root/height/len)
        /// captured at commit time and handed back on recovery.
        meta: Vec<u8>,
    },
}

/// Appends the framed image of `rec` to `out`.
pub fn encode_record(rec: &WalRecord, out: &mut Vec<u8>) {
    let mut body = Vec::new();
    match rec {
        WalRecord::PageImage { page, bytes } => {
            body.push(KIND_PAGE);
            put_u32(&mut body, page.index());
            put_bytes(&mut body, bytes);
        }
        WalRecord::Free { page } => {
            body.push(KIND_FREE);
            put_u32(&mut body, page.index());
        }
        WalRecord::Commit { seq, meta } => {
            body.push(KIND_COMMIT);
            put_u64(&mut body, *seq);
            put_bytes(&mut body, meta);
        }
    }
    let start = out.len();
    put_u32(out, u32::try_from(body.len()).expect("record exceeds u32"));
    out.extend_from_slice(&body);
    let crc = crc32(&out[start..]);
    put_u32(out, crc);
}

/// Decodes the record starting at `pos` in `buf`. Returns the record
/// and the offset just past its frame, or `None` if the bytes at `pos`
/// are not a complete, checksum-valid record (a torn tail).
#[must_use]
pub fn decode_record_at(buf: &[u8], pos: usize) -> Option<(WalRecord, usize)> {
    let mut header = ByteReader::new(buf.get(pos..)?);
    let len = header.u32()? as usize;
    let frame_end = pos.checked_add(4 + len + 4)?;
    if frame_end > buf.len() {
        return None; // truncated frame
    }
    let stored_crc = u32::from_le_bytes(buf[frame_end - 4..frame_end].try_into().ok()?);
    if crc32(&buf[pos..frame_end - 4]) != stored_crc {
        return None; // corrupt or torn frame
    }
    let mut body = ByteReader::new(&buf[pos + 4..frame_end - 4]);
    let kind = body.u8()?;
    let rec = match kind {
        KIND_PAGE => WalRecord::PageImage {
            page: PageId::from_index(body.u32()?),
            bytes: body.bytes()?.to_vec(),
        },
        KIND_FREE => WalRecord::Free {
            page: PageId::from_index(body.u32()?),
        },
        KIND_COMMIT => WalRecord::Commit {
            seq: body.u64()?,
            meta: body.bytes()?.to_vec(),
        },
        _ => return None,
    };
    if !body.is_empty() {
        return None; // trailing garbage inside a "valid" frame
    }
    Some((rec, frame_end))
}

/// One durable operation inside a committed window, in log order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Install `bytes` as the contents of `page` (allocating it if it
    /// was dead).
    Page {
        /// Target page.
        page: PageId,
        /// Encoded contents.
        bytes: Vec<u8>,
    },
    /// Kill `page`.
    Free {
        /// Target page.
        page: PageId,
    },
}

/// One committed window recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitWindow {
    /// The window's commit sequence number.
    pub seq: u64,
    /// The metadata blob captured by the sealing commit record.
    pub meta: Vec<u8>,
    /// The window's operations, in log order.
    pub ops: Vec<WalOp>,
}

/// The result of scanning a WAL byte image (see [`replay`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalReplay {
    /// Every fully committed window, in log order.
    pub windows: Vec<CommitWindow>,
    /// Bytes of log covered by committed windows — the recovery
    /// truncation point: everything past this offset is discarded.
    pub committed_bytes: usize,
    /// Bytes past the last committed window (the torn tail, including
    /// any sealed-but-uncommitted records).
    pub dropped_bytes: usize,
    /// Records inside committed windows, commit records included.
    pub records_replayed: u64,
}

/// Scans a WAL image, grouping records into committed windows and
/// locating the torn tail.
///
/// The scan stops at the first frame that is incomplete, fails its
/// checksum, or has an unknown kind — everything from there on is tail.
/// Records after the last commit record (a window the crash interrupted
/// before sealing) are likewise dropped, even when individually valid.
#[must_use]
pub fn replay(buf: &[u8]) -> WalReplay {
    let mut out = WalReplay::default();
    let mut pos = 0usize;
    let mut window: Vec<WalOp> = Vec::new();
    let mut window_records = 0u64;
    while let Some((rec, next)) = decode_record_at(buf, pos) {
        window_records += 1;
        match rec {
            WalRecord::PageImage { page, bytes } => window.push(WalOp::Page { page, bytes }),
            WalRecord::Free { page } => window.push(WalOp::Free { page }),
            WalRecord::Commit { seq, meta } => {
                out.windows.push(CommitWindow {
                    seq,
                    meta,
                    ops: std::mem::take(&mut window),
                });
                out.records_replayed += window_records;
                window_records = 0;
                out.committed_bytes = next;
            }
        }
        pos = next;
    }
    out.dropped_bytes = buf.len() - out.committed_bytes;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> PageId {
        PageId::from_index(n)
    }

    fn sample_log() -> Vec<u8> {
        let mut buf = Vec::new();
        encode_record(
            &WalRecord::PageImage {
                page: pid(0),
                bytes: vec![1, 2, 3],
            },
            &mut buf,
        );
        encode_record(&WalRecord::Free { page: pid(4) }, &mut buf);
        encode_record(
            &WalRecord::Commit {
                seq: 1,
                meta: vec![9],
            },
            &mut buf,
        );
        encode_record(
            &WalRecord::PageImage {
                page: pid(2),
                bytes: vec![7; 40],
            },
            &mut buf,
        );
        encode_record(
            &WalRecord::Commit {
                seq: 2,
                meta: vec![8, 8],
            },
            &mut buf,
        );
        buf
    }

    #[test]
    fn records_round_trip() {
        let recs = [
            WalRecord::PageImage {
                page: pid(7),
                bytes: vec![0; 100],
            },
            WalRecord::Free { page: pid(3) },
            WalRecord::Commit {
                seq: 42,
                meta: b"meta".to_vec(),
            },
        ];
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(r, &mut buf);
        }
        let mut pos = 0;
        for r in &recs {
            let (got, next) = decode_record_at(&buf, pos).expect("valid record");
            assert_eq!(&got, r);
            pos = next;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn replay_groups_windows_and_counts() {
        let buf = sample_log();
        let scan = replay(&buf);
        assert_eq!(scan.windows.len(), 2);
        assert_eq!(scan.windows[0].seq, 1);
        assert_eq!(scan.windows[0].meta, vec![9]);
        assert_eq!(
            scan.windows[0].ops,
            vec![
                WalOp::Page {
                    page: pid(0),
                    bytes: vec![1, 2, 3]
                },
                WalOp::Free { page: pid(4) },
            ]
        );
        assert_eq!(scan.windows[1].seq, 2);
        assert_eq!(scan.records_replayed, 5);
        assert_eq!(scan.committed_bytes, buf.len());
        assert_eq!(scan.dropped_bytes, 0);
    }

    #[test]
    fn truncation_at_every_offset_keeps_committed_prefix() {
        let buf = sample_log();
        let full = replay(&buf);
        let first_window_end = {
            // End of the first commit record.
            let mut pos = 0;
            let mut end = 0;
            for _ in 0..3 {
                let (_, next) = decode_record_at(&buf, pos).unwrap();
                end = next;
                pos = next;
            }
            end
        };
        for cut in 0..buf.len() {
            let scan = replay(&buf[..cut]);
            // Committed windows are an exact prefix of the full replay.
            assert_eq!(
                scan.windows,
                full.windows[..scan.windows.len()],
                "cut at {cut}"
            );
            assert_eq!(scan.committed_bytes + scan.dropped_bytes, cut);
            if cut < first_window_end {
                assert!(scan.windows.is_empty(), "cut at {cut}");
            } else if cut < buf.len() {
                assert_eq!(scan.windows.len(), 1, "cut at {cut}");
                assert_eq!(scan.committed_bytes, first_window_end);
            }
        }
    }

    #[test]
    fn corruption_at_every_byte_never_loses_a_committed_record() {
        let buf = sample_log();
        let scan = replay(&buf);
        let first_window_end = scan.windows.len(); // sanity below
        assert_eq!(first_window_end, 2);
        for byte in 0..buf.len() {
            let mut bad = buf.clone();
            bad[byte] ^= 0x40;
            let scan = replay(&bad);
            // Every surviving window must equal an untouched prefix —
            // corruption may only shorten history, never alter it.
            // (A flip in a later record must not disturb earlier ones.)
            for (i, w) in scan.windows.iter().enumerate() {
                assert_eq!(w, &replay(&buf).windows[i], "flip at {byte}");
            }
        }
    }

    #[test]
    fn uncommitted_window_records_are_dropped() {
        let mut buf = sample_log();
        let committed = buf.len();
        // A third window that never commits.
        encode_record(
            &WalRecord::PageImage {
                page: pid(9),
                bytes: vec![5; 10],
            },
            &mut buf,
        );
        encode_record(&WalRecord::Free { page: pid(0) }, &mut buf);
        let scan = replay(&buf);
        assert_eq!(scan.windows.len(), 2, "unsealed window must not apply");
        assert_eq!(scan.committed_bytes, committed);
        assert_eq!(scan.dropped_bytes, buf.len() - committed);
    }

    #[test]
    fn empty_and_garbage_logs_replay_to_nothing() {
        assert_eq!(replay(&[]), WalReplay::default());
        let scan = replay(&[0xFF; 64]);
        assert!(scan.windows.is_empty());
        assert_eq!(scan.dropped_bytes, 64);
    }
}
