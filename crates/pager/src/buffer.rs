//! A tiny LRU buffer pool.
//!
//! The paper's experimental setup (§5) deliberately uses an almost
//! buffer-less configuration: only the current root-to-leaf path (3–4
//! pages) is cached, and the pool is cleared before every query so that
//! query I/O counts are not flattered by residual cache contents. The pool
//! is therefore small enough that a plain vector with linear scans is both
//! simpler and faster than a hash-map + linked-list LRU.

use crate::store::PageId;

/// An LRU cache of page identifiers with per-page dirty bits.
///
/// The pool tracks *which* pages are resident, not their contents (contents
/// always live in the [`crate::PageStore`], our simulated disk). A page
/// evicted while dirty must be written back — the caller counts that as a
/// write I/O.
#[derive(Debug, Clone)]
pub struct BufferPool {
    /// Resident pages in LRU order: index 0 is least recently used.
    entries: Vec<(PageId, bool)>,
    capacity: usize,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    ///
    /// A capacity of zero is legal and models a buffer-less store: every
    /// [`BufferPool::insert`] immediately returns the incoming page as
    /// the evicted one, so every access is a miss and every dirty access
    /// pays an immediate write-back.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of resident pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marks `id` as most recently used. Returns `true` on a hit.
    pub fn touch(&mut self, id: PageId) -> bool {
        if let Some(pos) = self.position(id) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
            true
        } else {
            false
        }
    }

    /// Inserts `id` (most recently used position) with the given dirty bit.
    ///
    /// If `id` is already resident its dirty bit is OR-ed and it is moved to
    /// the MRU position. If the pool is full, the LRU page is evicted and
    /// returned as `(page, was_dirty)`. With capacity zero nothing is ever
    /// resident: the incoming page itself bounces straight back as the
    /// eviction.
    pub fn insert(&mut self, id: PageId, dirty: bool) -> Option<(PageId, bool)> {
        if self.capacity == 0 {
            return Some((id, dirty));
        }
        if let Some(pos) = self.position(id) {
            let (_, d) = self.entries.remove(pos);
            self.entries.push((id, d || dirty));
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            Some(self.entries.remove(0))
        } else {
            None
        };
        self.entries.push((id, dirty));
        evicted
    }

    /// Sets the dirty bit of a resident page. Returns `false` if absent.
    pub fn mark_dirty(&mut self, id: PageId) -> bool {
        if let Some(pos) = self.position(id) {
            self.entries[pos].1 = true;
            true
        } else {
            false
        }
    }

    /// Whether `id` is resident (does not affect LRU order).
    #[must_use]
    pub fn contains(&self, id: PageId) -> bool {
        self.position(id).is_some()
    }

    /// Removes `id` from the pool, returning its dirty bit if it was
    /// resident. Used when a page is freed (no write-back is owed for a
    /// page that ceases to exist).
    pub fn remove(&mut self, id: PageId) -> Option<bool> {
        self.position(id).map(|pos| self.entries.remove(pos).1)
    }

    /// Empties the pool, returning the evicted `(page, was_dirty)` pairs in
    /// LRU order. The caller is responsible for counting write I/Os for the
    /// dirty ones.
    pub fn drain(&mut self) -> Vec<(PageId, bool)> {
        std::mem::take(&mut self.entries)
    }

    fn position(&self, id: PageId) -> Option<usize> {
        self.entries.iter().position(|&(p, _)| p == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> PageId {
        PageId::from_index(n)
    }

    #[test]
    fn lru_eviction_order() {
        let mut b = BufferPool::new(2);
        assert!(b.insert(pid(1), false).is_none());
        assert!(b.insert(pid(2), false).is_none());
        // 1 is LRU; inserting 3 evicts it.
        assert_eq!(b.insert(pid(3), false), Some((pid(1), false)));
        // Touch 2, making 3 the LRU.
        assert!(b.touch(pid(2)));
        assert_eq!(b.insert(pid(4), false), Some((pid(3), false)));
    }

    #[test]
    fn dirty_bit_survives_reinsert() {
        let mut b = BufferPool::new(2);
        b.insert(pid(1), true);
        b.insert(pid(1), false); // must stay dirty
        b.insert(pid(2), false);
        assert_eq!(b.insert(pid(3), false), Some((pid(1), true)));
    }

    #[test]
    fn mark_dirty_and_drain() {
        let mut b = BufferPool::new(3);
        b.insert(pid(1), false);
        b.insert(pid(2), false);
        assert!(b.mark_dirty(pid(1)));
        assert!(!b.mark_dirty(pid(9)));
        let drained = b.drain();
        assert_eq!(drained, vec![(pid(1), true), (pid(2), false)]);
        assert!(b.is_empty());
    }

    #[test]
    fn remove_returns_dirty_bit() {
        let mut b = BufferPool::new(2);
        b.insert(pid(1), true);
        assert_eq!(b.remove(pid(1)), Some(true));
        assert_eq!(b.remove(pid(1)), None);
    }

    #[test]
    fn touch_miss() {
        let mut b = BufferPool::new(1);
        assert!(!b.touch(pid(7)));
    }

    #[test]
    fn capacity_one_always_evicts_the_other_page() {
        let mut b = BufferPool::new(1);
        assert!(b.insert(pid(1), true).is_none());
        // Re-inserting the resident page never evicts, and keeps dirty.
        assert!(b.insert(pid(1), false).is_none());
        assert!(b.touch(pid(1)));
        // Any other page displaces the sole resident (dirty bit intact).
        assert_eq!(b.insert(pid(2), false), Some((pid(1), true)));
        assert!(b.contains(pid(2)));
        assert!(!b.contains(pid(1)));
        assert_eq!(b.insert(pid(1), false), Some((pid(2), false)));
        assert_eq!(b.drain(), vec![(pid(1), false)]);
    }

    #[test]
    fn zero_capacity_bounces_every_insert() {
        let mut b = BufferPool::new(0);
        assert_eq!(b.insert(pid(1), false), Some((pid(1), false)));
        assert_eq!(b.insert(pid(1), true), Some((pid(1), true)));
        assert!(b.is_empty());
        assert!(!b.touch(pid(1)));
        assert!(!b.contains(pid(1)));
        assert!(b.drain().is_empty());
    }
}
