//! An LRU buffer pool with two representations.
//!
//! The paper's experimental setup (§5) deliberately uses an almost
//! buffer-less configuration: only the current root-to-leaf path (3–4
//! pages) is cached, and the pool is cleared before every query so that
//! query I/O counts are not flattered by residual cache contents. At that
//! size a plain vector with linear scans is both simpler and faster than a
//! hash-map + linked-list LRU — so that stays the representation for small
//! capacities, bit-identical to the original (same eviction order, same
//! return values, same I/O counts observed by [`crate::PageStore`]).
//!
//! Serving-scale configurations are different: a pool of hundreds or
//! thousands of pages turns the `position()` scan and `Vec::remove`
//! shuffle into O(capacity) work on *every* page touch. Above
//! [`INDEXED_THRESHOLD`] the pool therefore switches to a hash-indexed
//! representation (`HashMap` into an intrusive doubly-linked slab) with
//! O(1) touch/insert/evict. The two representations implement the exact
//! same LRU policy; a differential test below drives them through the same
//! random op sequence and asserts identical observable behavior.

use crate::store::PageId;
use std::collections::HashMap;

/// Largest capacity still served by the linear-scan representation.
///
/// Small pools (the paper's 4-page root-to-leaf cache, the model checker's
/// tiny configs) stay on the vector: better constants, zero allocation
/// churn, and trivially auditable eviction order. Anything larger — the
/// serving tier's warm pools — gets the O(1) indexed form.
pub const INDEXED_THRESHOLD: usize = 64;

/// Sentinel slab index for "no node" in the intrusive list.
const NIL: usize = usize::MAX;

/// An LRU cache of page identifiers with per-page dirty bits.
///
/// The pool tracks *which* pages are resident, not their contents (contents
/// always live in the [`crate::PageStore`], our simulated disk). A page
/// evicted while dirty must be written back — the caller counts that as a
/// write I/O.
#[derive(Debug, Clone)]
pub struct BufferPool {
    repr: Repr,
    capacity: usize,
}

/// The two interchangeable LRU representations (see the module docs).
#[derive(Debug, Clone)]
enum Repr {
    /// LRU order as a vector: index 0 is least recently used.
    Scan(Vec<(PageId, bool)>),
    /// Hash-indexed intrusive list: O(1) per touch at any capacity.
    Indexed(Indexed),
}

/// One resident page in the indexed representation's slab.
#[derive(Debug, Clone, Copy)]
struct Node {
    id: PageId,
    dirty: bool,
    /// Toward the LRU end (`NIL` at the head).
    prev: usize,
    /// Toward the MRU end (`NIL` at the tail).
    next: usize,
}

/// Hash map from page id to slab slot, plus an intrusive doubly-linked
/// list threading the slots in LRU order (head = least recently used).
#[derive(Debug, Clone, Default)]
struct Indexed {
    map: HashMap<PageId, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl Indexed {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Unlinks `slot` from the LRU list (the slot itself stays allocated).
    fn unlink(&mut self, slot: usize) {
        let Node { prev, next, .. } = self.slab[slot];
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    /// Appends `slot` at the MRU (tail) end.
    fn push_back(&mut self, slot: usize) {
        self.slab[slot].prev = self.tail;
        self.slab[slot].next = NIL;
        match self.tail {
            NIL => self.head = slot,
            t => self.slab[t].next = slot,
        }
        self.tail = slot;
    }

    /// Moves a resident slot to the MRU position.
    fn promote(&mut self, slot: usize) {
        if self.tail != slot {
            self.unlink(slot);
            self.push_back(slot);
        }
    }

    /// Allocates a slab slot for `(id, dirty)` (not yet linked).
    fn alloc(&mut self, id: PageId, dirty: bool) -> usize {
        let node = Node {
            id,
            dirty,
            prev: NIL,
            next: NIL,
        };
        if let Some(slot) = self.free.pop() {
            self.slab[slot] = node;
            slot
        } else {
            self.slab.push(node);
            self.slab.len() - 1
        }
    }

    /// Unlinks and frees `slot`, returning its payload.
    fn release(&mut self, slot: usize) -> (PageId, bool) {
        self.unlink(slot);
        self.free.push(slot);
        let n = self.slab[slot];
        self.map.remove(&n.id);
        (n.id, n.dirty)
    }
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    ///
    /// A capacity of zero is legal and models a buffer-less store: every
    /// [`BufferPool::insert`] immediately returns the incoming page as
    /// the evicted one, so every access is a miss and every dirty access
    /// pays an immediate write-back.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let repr = if capacity > INDEXED_THRESHOLD {
            Repr::Indexed(Indexed::new(capacity))
        } else {
            Repr::Scan(Vec::with_capacity(capacity))
        };
        Self { repr, capacity }
    }

    /// Maximum number of resident pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Scan(entries) => entries.len(),
            Repr::Indexed(ix) => ix.map.len(),
        }
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks `id` as most recently used. Returns `true` on a hit.
    ///
    /// Scan representation: one scan plus an in-place rotation of the tail
    /// slice — no remove/push element shuffle, so a hit on the MRU page
    /// (the common case on a root-to-leaf walk) moves nothing.
    pub fn touch(&mut self, id: PageId) -> bool {
        match &mut self.repr {
            Repr::Scan(entries) => match entries.iter().position(|&(p, _)| p == id) {
                Some(pos) => {
                    entries[pos..].rotate_left(1);
                    true
                }
                None => false,
            },
            Repr::Indexed(ix) => match ix.map.get(&id) {
                Some(&slot) => {
                    ix.promote(slot);
                    true
                }
                None => false,
            },
        }
    }

    /// Inserts `id` (most recently used position) with the given dirty bit.
    ///
    /// If `id` is already resident its dirty bit is OR-ed and it is moved to
    /// the MRU position — a single scan plus rotate, not two element
    /// shuffles. If the pool is full, the LRU page is evicted and returned
    /// as `(page, was_dirty)`. With capacity zero nothing is ever resident:
    /// the incoming page itself bounces straight back as the eviction.
    pub fn insert(&mut self, id: PageId, dirty: bool) -> Option<(PageId, bool)> {
        if self.capacity == 0 {
            return Some((id, dirty));
        }
        match &mut self.repr {
            Repr::Scan(entries) => {
                if let Some(pos) = entries.iter().position(|&(p, _)| p == id) {
                    entries[pos].1 |= dirty;
                    entries[pos..].rotate_left(1);
                    return None;
                }
                let evicted = if entries.len() == self.capacity {
                    Some(entries.remove(0))
                } else {
                    None
                };
                entries.push((id, dirty));
                evicted
            }
            Repr::Indexed(ix) => {
                if let Some(&slot) = ix.map.get(&id) {
                    ix.slab[slot].dirty |= dirty;
                    ix.promote(slot);
                    return None;
                }
                let evicted = if ix.map.len() == self.capacity {
                    let lru = ix.head;
                    debug_assert_ne!(lru, NIL, "full pool with empty list");
                    Some(ix.release(lru))
                } else {
                    None
                };
                let slot = ix.alloc(id, dirty);
                ix.map.insert(id, slot);
                ix.push_back(slot);
                evicted
            }
        }
    }

    /// Sets the dirty bit of a resident page. Returns `false` if absent.
    pub fn mark_dirty(&mut self, id: PageId) -> bool {
        match &mut self.repr {
            Repr::Scan(entries) => match entries.iter_mut().find(|(p, _)| *p == id) {
                Some(e) => {
                    e.1 = true;
                    true
                }
                None => false,
            },
            Repr::Indexed(ix) => match ix.map.get(&id) {
                Some(&slot) => {
                    ix.slab[slot].dirty = true;
                    true
                }
                None => false,
            },
        }
    }

    /// Whether `id` is resident (does not affect LRU order).
    #[must_use]
    pub fn contains(&self, id: PageId) -> bool {
        match &self.repr {
            Repr::Scan(entries) => entries.iter().any(|&(p, _)| p == id),
            Repr::Indexed(ix) => ix.map.contains_key(&id),
        }
    }

    /// Removes `id` from the pool, returning its dirty bit if it was
    /// resident. Used when a page is freed (no write-back is owed for a
    /// page that ceases to exist).
    pub fn remove(&mut self, id: PageId) -> Option<bool> {
        match &mut self.repr {
            Repr::Scan(entries) => entries
                .iter()
                .position(|&(p, _)| p == id)
                .map(|pos| entries.remove(pos).1),
            Repr::Indexed(ix) => ix.map.get(&id).copied().map(|slot| ix.release(slot).1),
        }
    }

    /// Empties the pool, returning the evicted `(page, was_dirty)` pairs in
    /// LRU order. The caller is responsible for counting write I/Os for the
    /// dirty ones.
    pub fn drain(&mut self) -> Vec<(PageId, bool)> {
        match &mut self.repr {
            Repr::Scan(entries) => std::mem::take(entries),
            Repr::Indexed(ix) => {
                let mut out = Vec::with_capacity(ix.map.len());
                let mut slot = ix.head;
                while slot != NIL {
                    let n = ix.slab[slot];
                    out.push((n.id, n.dirty));
                    slot = n.next;
                }
                *ix = Indexed::new(self.capacity);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> PageId {
        PageId::from_index(n)
    }

    #[test]
    fn lru_eviction_order() {
        let mut b = BufferPool::new(2);
        assert!(b.insert(pid(1), false).is_none());
        assert!(b.insert(pid(2), false).is_none());
        // 1 is LRU; inserting 3 evicts it.
        assert_eq!(b.insert(pid(3), false), Some((pid(1), false)));
        // Touch 2, making 3 the LRU.
        assert!(b.touch(pid(2)));
        assert_eq!(b.insert(pid(4), false), Some((pid(3), false)));
    }

    #[test]
    fn dirty_bit_survives_reinsert() {
        let mut b = BufferPool::new(2);
        b.insert(pid(1), true);
        b.insert(pid(1), false); // must stay dirty
        b.insert(pid(2), false);
        assert_eq!(b.insert(pid(3), false), Some((pid(1), true)));
    }

    #[test]
    fn mark_dirty_and_drain() {
        let mut b = BufferPool::new(3);
        b.insert(pid(1), false);
        b.insert(pid(2), false);
        assert!(b.mark_dirty(pid(1)));
        assert!(!b.mark_dirty(pid(9)));
        let drained = b.drain();
        assert_eq!(drained, vec![(pid(1), true), (pid(2), false)]);
        assert!(b.is_empty());
    }

    #[test]
    fn remove_returns_dirty_bit() {
        let mut b = BufferPool::new(2);
        b.insert(pid(1), true);
        assert_eq!(b.remove(pid(1)), Some(true));
        assert_eq!(b.remove(pid(1)), None);
    }

    #[test]
    fn touch_miss() {
        let mut b = BufferPool::new(1);
        assert!(!b.touch(pid(7)));
    }

    #[test]
    fn capacity_one_always_evicts_the_other_page() {
        let mut b = BufferPool::new(1);
        assert!(b.insert(pid(1), true).is_none());
        // Re-inserting the resident page never evicts, and keeps dirty.
        assert!(b.insert(pid(1), false).is_none());
        assert!(b.touch(pid(1)));
        // Any other page displaces the sole resident (dirty bit intact).
        assert_eq!(b.insert(pid(2), false), Some((pid(1), true)));
        assert!(b.contains(pid(2)));
        assert!(!b.contains(pid(1)));
        assert_eq!(b.insert(pid(1), false), Some((pid(2), false)));
        assert_eq!(b.drain(), vec![(pid(1), false)]);
    }

    #[test]
    fn zero_capacity_bounces_every_insert() {
        let mut b = BufferPool::new(0);
        assert_eq!(b.insert(pid(1), false), Some((pid(1), false)));
        assert_eq!(b.insert(pid(1), true), Some((pid(1), true)));
        assert!(b.is_empty());
        assert!(!b.touch(pid(1)));
        assert!(!b.contains(pid(1)));
        assert!(b.drain().is_empty());
    }

    #[test]
    fn large_capacity_selects_indexed_repr() {
        let b = BufferPool::new(INDEXED_THRESHOLD + 1);
        assert!(matches!(b.repr, Repr::Indexed(_)));
        let b = BufferPool::new(INDEXED_THRESHOLD);
        assert!(matches!(b.repr, Repr::Scan(_)));
    }

    #[test]
    fn indexed_repr_honors_lru_semantics() {
        // Same scenario as `lru_eviction_order` + dirty handling, but at
        // an indexed capacity, filled so eviction actually happens.
        let cap = INDEXED_THRESHOLD + 4;
        let mut b = BufferPool::new(cap);
        for i in 0..cap {
            assert!(b
                .insert(pid(u32::try_from(i).unwrap()), i % 2 == 0)
                .is_none());
        }
        assert_eq!(b.len(), cap);
        // Page 0 is LRU (inserted first, even index => dirty).
        assert_eq!(
            b.insert(pid(9000), false),
            Some((pid(0), true)),
            "full pool evicts LRU with its dirty bit"
        );
        // Touch page 1 (next LRU) so page 2 becomes the victim.
        assert!(b.touch(pid(1)));
        assert_eq!(b.insert(pid(9001), false), Some((pid(2), true)));
        // Re-insert keeps residency and ORs dirty.
        assert!(b.insert(pid(3), true).is_none());
        assert_eq!(b.remove(pid(3)), Some(true));
        assert_eq!(b.len(), cap - 1);
    }

    /// A tiny deterministic RNG (SplitMix64) for the differential test.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// The indexed representation must be observationally identical to the
    /// scan representation: same hits, same evictions (page *and* dirty
    /// bit), same drain order, under a long random op mix. The scan pool is
    /// built at the same capacity by bypassing the threshold, so both sides
    /// run the identical LRU policy question.
    #[test]
    fn representations_are_observationally_identical() {
        let cap = INDEXED_THRESHOLD + 8;
        let mut indexed = BufferPool::new(cap);
        assert!(matches!(indexed.repr, Repr::Indexed(_)));
        let mut scan = BufferPool {
            repr: Repr::Scan(Vec::new()),
            capacity: cap,
        };
        let mut rng = Rng(0x5EED);
        for step in 0..20_000 {
            let id = pid(u32::try_from(rng.below(cap as u64 * 2)).unwrap());
            match rng.below(100) {
                0..=39 => {
                    let dirty = rng.below(2) == 0;
                    assert_eq!(
                        indexed.insert(id, dirty),
                        scan.insert(id, dirty),
                        "insert diverged at step {step}"
                    );
                }
                40..=79 => {
                    assert_eq!(indexed.touch(id), scan.touch(id), "touch @ {step}");
                }
                80..=89 => {
                    assert_eq!(
                        indexed.mark_dirty(id),
                        scan.mark_dirty(id),
                        "mark_dirty @ {step}"
                    );
                }
                90..=95 => {
                    assert_eq!(indexed.remove(id), scan.remove(id), "remove @ {step}");
                }
                96..=98 => {
                    assert_eq!(indexed.contains(id), scan.contains(id), "contains @ {step}");
                }
                _ => {
                    assert_eq!(indexed.drain(), scan.drain(), "drain @ {step}");
                }
            }
            assert_eq!(indexed.len(), scan.len(), "len diverged at step {step}");
        }
        assert_eq!(indexed.drain(), scan.drain(), "final drain");
    }
}
