//! Page serialization for durable backends.
//!
//! The pager keeps pages as typed structs (the I/O cost model needs
//! counts, not bytes), so durability needs an explicit byte boundary:
//! a [`PageCodec`] turns one page into a self-contained byte image and
//! back. Encodings are little-endian, length-prefixed where variable,
//! and checksummed by the WAL/page-file framing (see [`crate::wal`]) —
//! the codec itself never needs to detect corruption, only to refuse
//! byte images it cannot understand (`decode` returns `None`).
//!
//! [`FixedCodec`] is the leaf-level helper for fixed-width scalar keys
//! and values; index crates compose it into their node encodings.

/// Encodes/decodes one whole page as a self-contained byte image.
pub trait PageCodec: Sized {
    /// Appends the page's byte image to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Rebuilds a page from the image produced by
    /// [`PageCodec::encode`]. Returns `None` for images this codec
    /// does not understand (wrong tag, short buffer, trailing bytes).
    fn decode(bytes: &[u8]) -> Option<Self>;
}

/// A fixed-width scalar that can be written to / read from a byte
/// stream. The building block index crates use inside their
/// [`PageCodec`] node encodings.
pub trait FixedCodec: Sized {
    /// Appends the little-endian image of `self` to `out`.
    fn write(&self, out: &mut Vec<u8>);

    /// Reads one value from `r`, advancing it. `None` on underflow.
    fn read(r: &mut ByteReader<'_>) -> Option<Self>;
}

macro_rules! fixed_codec_prim {
    ($($t:ty => $read:ident),* $(,)?) => {$(
        impl FixedCodec for $t {
            fn write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read(r: &mut ByteReader<'_>) -> Option<Self> {
                r.$read()
            }
        }
    )*};
}

fixed_codec_prim! {
    u16 => u16,
    u32 => u32,
    u64 => u64,
    i32 => i32,
    i64 => i64,
    f32 => f32,
    f64 => f64,
}

impl<A: FixedCodec, B: FixedCodec> FixedCodec for (A, B) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
    }

    fn read(r: &mut ByteReader<'_>) -> Option<Self> {
        Some((A::read(r)?, B::read(r)?))
    }
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed (`u32`) byte slice.
///
/// # Panics
/// Panics if `bytes` is longer than `u32::MAX`.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, u32::try_from(bytes.len()).expect("blob exceeds u32"));
    out.extend_from_slice(bytes);
}

/// A bounds-checked little-endian cursor over a byte slice. Every read
/// advances; underflow returns `None` instead of panicking, so torn or
/// hostile images fail decoding cleanly.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

macro_rules! reader_prim {
    ($($name:ident => $t:ty),* $(,)?) => {$(
        #[doc = concat!("Reads one little-endian `", stringify!($t), "`.")]
        pub fn $name(&mut self) -> Option<$t> {
            const N: usize = std::mem::size_of::<$t>();
            let raw: [u8; N] = self.take(N)?.try_into().ok()?;
            Some(<$t>::from_le_bytes(raw))
        }
    )*};
}

impl<'a> ByteReader<'a> {
    /// Starts a cursor at the beginning of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed the whole buffer — decoders
    /// check this to reject images with trailing garbage.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    reader_prim! {
        u16 => u16,
        u32 => u32,
        u64 => u64,
        i32 => i32,
        i64 => i64,
        f32 => f32,
        f64 => f64,
    }

    /// Reads a length-prefixed byte slice written by [`put_bytes`].
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
/// checksum framing every WAL record and page-file slot. Hand-rolled
/// (table generated at compile time) because the repo is
/// dependency-free by design.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        let idx = (crc ^ u32::from(b)) & 0xFF;
        crc = (crc >> 8) ^ TABLE[idx as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let base = b"mobidx wal record payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn reader_round_trips_scalars() {
        let mut out = Vec::new();
        7u16.write(&mut out);
        0xDEAD_BEEFu32.write(&mut out);
        u64::MAX.write(&mut out);
        (-5i32).write(&mut out);
        (-6i64).write(&mut out);
        1.5f32.write(&mut out);
        2.25f64.write(&mut out);
        (3u32, 4u64).write(&mut out);
        put_bytes(&mut out, b"tail");

        let mut r = ByteReader::new(&out);
        assert_eq!(u16::read(&mut r), Some(7));
        assert_eq!(u32::read(&mut r), Some(0xDEAD_BEEF));
        assert_eq!(u64::read(&mut r), Some(u64::MAX));
        assert_eq!(i32::read(&mut r), Some(-5));
        assert_eq!(i64::read(&mut r), Some(-6));
        assert_eq!(f32::read(&mut r), Some(1.5));
        assert_eq!(f64::read(&mut r), Some(2.25));
        assert_eq!(<(u32, u64)>::read(&mut r), Some((3, 4)));
        assert_eq!(r.bytes(), Some(&b"tail"[..]));
        assert!(r.is_empty());
    }

    #[test]
    fn reader_underflow_is_none_not_panic() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u64(), None);
        // A failed read must not consume.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.u16(), Some(0x0201));
        assert_eq!(r.u32(), None);
        assert_eq!(r.u8(), Some(3));
        assert!(r.is_empty());
        assert_eq!(r.u8(), None);
    }

    #[test]
    fn bytes_with_oversized_length_prefix_is_none() {
        let mut out = Vec::new();
        put_u32(&mut out, 1000); // claims 1000 bytes, provides 2
        out.extend_from_slice(&[1, 2]);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.bytes(), None);
    }
}
