//! Microbenchmarks of the [`BufferPool`] hot paths at the paper's tiny
//! capacity (4 pages, linear-scan representation), the threshold boundary
//! (64, still scanning), and a serving-scale capacity (1024, hash-indexed
//! representation).
//!
//! Three access patterns per capacity:
//!
//! * **hit** — touch the resident LRU page (worst case for the scan
//!   representation: full scan + full-tail rotate);
//! * **miss** — touch an absent page (scan pays a full scan to learn it
//!   missed; indexed pays one hash probe);
//! * **evict** — insert a fresh page into a full pool (scan pays the
//!   `Vec::remove(0)` shuffle; indexed unlinks the head in O(1)).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mobidx_pager::{BufferPool, PageId};

const CAPACITIES: [usize; 3] = [4, 64, 1024];

fn pid(n: usize) -> PageId {
    PageId::from_index(u32::try_from(n).expect("bench page id fits u32"))
}

/// A pool filled to capacity with pages 0..capacity (page 0 is LRU).
fn full_pool(capacity: usize) -> BufferPool {
    let mut pool = BufferPool::new(capacity);
    for i in 0..capacity {
        let _ = pool.insert(pid(i), i % 2 == 0);
    }
    pool
}

fn bench_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool/hit");
    for cap in CAPACITIES {
        let mut pool = full_pool(cap);
        group
            .sample_size(50)
            .bench_function(format!("cap={cap}"), |b| {
                // Touching the LRU page promotes it to MRU, making the next
                // page the new LRU: every iteration is the worst-case hit.
                let mut next = 0usize;
                b.iter(|| {
                    let hit = pool.touch(pid(next));
                    assert!(hit);
                    next = (next + 1) % cap;
                    hit
                });
            });
    }
    group.finish();
}

fn bench_miss(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool/miss");
    for cap in CAPACITIES {
        let mut pool = full_pool(cap);
        group
            .sample_size(50)
            .bench_function(format!("cap={cap}"), |b| {
                b.iter(|| {
                    let hit = pool.touch(pid(cap + 1));
                    assert!(!hit);
                    hit
                });
            });
    }
    group.finish();
}

fn bench_evict(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool/evict");
    for cap in CAPACITIES {
        group
            .sample_size(50)
            .bench_function(format!("cap={cap}"), |b| {
                b.iter_batched(
                    || full_pool(cap),
                    |mut pool| {
                        // A full pool plus a fresh page: one LRU eviction.
                        let evicted = pool.insert(pid(cap + 1), true);
                        assert!(evicted.is_some());
                        pool
                    },
                    BatchSize::SmallInput,
                );
            });
    }
    group.finish();
}

criterion_group!(benches, bench_hit, bench_miss, bench_evict);
criterion_main!(benches);
