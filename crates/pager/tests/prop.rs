//! Property tests: the page store's I/O accounting must match a
//! reference model of an LRU buffer over a flat page array.

use mobidx_pager::PageStore;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Allocate(u8),
    Read(usize),
    Write(usize, u8),
    FreeNth(usize),
    ClearBuffer,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u8>().prop_map(Op::Allocate),
        4 => (0usize..64).prop_map(Op::Read),
        3 => ((0usize..64), any::<u8>()).prop_map(|(i, v)| Op::Write(i, v)),
        1 => (0usize..64).prop_map(Op::FreeNth),
        1 => Just(Op::ClearBuffer),
    ]
}

/// Reference model: contents + an LRU list of (page, dirty).
struct Model {
    contents: Vec<Option<u8>>,
    lru: Vec<(usize, bool)>, // index 0 = least recently used
    cap: usize,
    reads: u64,
    writes: u64,
}

impl Model {
    fn touch(&mut self, page: usize, dirty: bool) {
        if let Some(pos) = self.lru.iter().position(|&(p, _)| p == page) {
            let (_, d) = self.lru.remove(pos);
            self.lru.push((page, d || dirty));
            return;
        }
        self.reads += 1;
        if self.lru.len() == self.cap {
            let (_, was_dirty) = self.lru.remove(0);
            if was_dirty {
                self.writes += 1;
            }
        }
        self.lru.push((page, dirty));
    }

    fn insert_fresh(&mut self, page: usize) {
        // Allocation: enters the buffer dirty without a read.
        if self.lru.len() == self.cap {
            let (_, was_dirty) = self.lru.remove(0);
            if was_dirty {
                self.writes += 1;
            }
        }
        self.lru.push((page, true));
    }

    fn remove(&mut self, page: usize) {
        if let Some(pos) = self.lru.iter().position(|&(p, _)| p == page) {
            self.lru.remove(pos); // freed pages owe no write-back
        }
    }

    fn clear(&mut self) {
        for (_, dirty) in self.lru.drain(..) {
            if dirty {
                self.writes += 1;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn io_counts_match_reference_model(cap in 1usize..6,
                                       ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut store: PageStore<u8> = PageStore::new(cap);
        let mut model = Model {
            contents: Vec::new(),
            lru: Vec::new(),
            cap,
            reads: 0,
            writes: 0,
        };
        // Live page ids, parallel between store and model.
        let mut live: Vec<(mobidx_pager::PageId, usize)> = Vec::new();
        let mut next_model_page = 0usize;

        for op in ops {
            match op {
                Op::Allocate(v) => {
                    let id = store.allocate(v);
                    let mp = next_model_page;
                    next_model_page += 1;
                    if model.contents.len() <= mp {
                        model.contents.resize(mp + 1, None);
                    }
                    model.contents[mp] = Some(v);
                    model.insert_fresh(mp);
                    live.push((id, mp));
                }
                Op::Read(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, mp) = live[i % live.len()];
                    let got = *store.read(id);
                    model.touch(mp, false);
                    prop_assert_eq!(Some(got), model.contents[mp]);
                }
                Op::Write(i, v) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, mp) = live[i % live.len()];
                    store.write(id, |slot| *slot = v);
                    model.touch(mp, true);
                    model.contents[mp] = Some(v);
                }
                Op::FreeNth(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, mp) = live.swap_remove(i % live.len());
                    let v = store.free(id);
                    prop_assert_eq!(Some(v), model.contents[mp]);
                    model.contents[mp] = None;
                    model.remove(mp);
                }
                Op::ClearBuffer => {
                    store.clear_buffer();
                    model.clear();
                }
            }
            prop_assert_eq!(store.stats().reads(), model.reads, "read count diverged");
            prop_assert_eq!(store.stats().writes(), model.writes, "write count diverged");
        }
        prop_assert_eq!(store.live_pages() as usize, live.len());
    }
}
