//! End-to-end durability tests at the `PageStore` level: commit
//! windows against a real [`FileBackend`], crash-and-reopen at seeded
//! points, and the torn-tail sweep (truncate/corrupt the last record
//! at every byte offset — recovery must drop exactly the uncommitted
//! suffix and never a committed record).

use mobidx_pager::{
    DurableFaultStore, FaultPlan, FileBackend, FsyncPolicy, PageCodec, PageId, PageStore,
    RecoveredImage, WAL_FILE,
};
use std::path::{Path, PathBuf};

/// A tiny codec-able page: a vector of u64s.
#[derive(Debug, Clone, PartialEq, Eq)]
struct VecPage(Vec<u64>);

impl PageCodec for VecPage {
    fn encode(&self, out: &mut Vec<u8>) {
        mobidx_pager::put_u32(out, u32::try_from(self.0.len()).unwrap());
        for v in &self.0 {
            mobidx_pager::put_u64(out, *v);
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = mobidx_pager::ByteReader::new(bytes);
        let n = r.u32()? as usize;
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(r.u64()?);
        }
        if !r.is_empty() {
            return None;
        }
        Some(Self(vals))
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mobidx-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &Path) -> (PageStore<VecPage>, RecoveredImage) {
    let (backend, image) = FileBackend::open(dir, FsyncPolicy::OnCommit).expect("open backend");
    let store =
        PageStore::open_recovered(4, Box::new(backend), &image).expect("decode recovered pages");
    (store, image)
}

/// Live contents by slab index, via the uncounted oracle path.
fn contents(store: &PageStore<VecPage>) -> Vec<(u32, Vec<u64>)> {
    let mut live: Vec<(u32, Vec<u64>)> = store
        .iter_live()
        .map(|(id, p)| (id.index(), p.0.clone()))
        .collect();
    live.sort();
    live
}

#[test]
fn store_commits_survive_reopen() {
    let dir = tmp_dir("store-roundtrip");
    let committed;
    {
        let (mut store, image) = open_store(&dir);
        assert!(image.is_empty());
        assert!(store.is_durable());
        let a = store.try_allocate(VecPage(vec![1, 2])).unwrap();
        let b = store.try_allocate(VecPage(vec![3])).unwrap();
        assert_eq!(store.pending_commit(), (2, 0));
        store.try_commit(b"window-1").unwrap();
        assert_eq!(store.pending_commit(), (0, 0));
        assert!(store.stats().wal_records() >= 3);
        assert!(store.stats().wal_bytes() > 0);
        assert_eq!(store.stats().wal_fsyncs(), 1, "group commit");
        // Window 2: mutate a, free b, allocate c. The allocator
        // recycles b's slot for c, which pulls it back out of the
        // freed set — so the window is two dirty pages, zero frees.
        store.try_write(a, |p| p.0.push(99)).unwrap();
        let _ = store.try_free(b).unwrap();
        let c = store.try_allocate(VecPage(vec![7; 10])).unwrap();
        assert_eq!(c.index(), b.index(), "freed slot is recycled");
        assert_eq!(store.pending_commit(), (2, 0));
        store.try_commit(b"window-2").unwrap();
        let _ = c;
        committed = contents(&store);
    }
    let (store, image) = open_store(&dir);
    assert_eq!(image.meta, b"window-2");
    assert_eq!(image.commit_seq, 2);
    assert_eq!(contents(&store), committed);
    assert_eq!(store.stats().wal_replayed(), image.replayed_records);
    assert_eq!(store.pending_commit(), (0, 0));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn uncommitted_store_changes_roll_back_on_reopen() {
    let dir = tmp_dir("store-rollback");
    let committed;
    {
        let (mut store, _) = open_store(&dir);
        let a = store.try_allocate(VecPage(vec![5])).unwrap();
        store.try_commit(b"w1").unwrap();
        committed = contents(&store);
        // Mutations after the commit are never journaled without a
        // second commit: the "crash" is simply dropping the store.
        store.try_write(a, |p| p.0.push(6)).unwrap();
        store.try_allocate(VecPage(vec![8])).unwrap();
    }
    let (store, image) = open_store(&dir);
    assert_eq!(contents(&store), committed, "reads see a prefix of applies");
    assert_eq!(image.commit_seq, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_then_reopen_replays_nothing() {
    let dir = tmp_dir("store-ckpt");
    let committed;
    {
        let (mut store, _) = open_store(&dir);
        for i in 0..20u64 {
            store.try_allocate(VecPage(vec![i])).unwrap();
        }
        store.try_commit(b"w1").unwrap();
        let freed = PageId::from_index(3);
        let _ = store.try_free(freed).unwrap();
        store.try_checkpoint(b"ckpt").unwrap();
        committed = contents(&store);
        let wal = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert_eq!(wal, 0, "checkpoint truncates the log");
    }
    let (store, image) = open_store(&dir);
    assert_eq!(image.replayed_records, 0);
    assert_eq!(image.meta, b"ckpt");
    assert_eq!(contents(&store), committed);
    // The recovered free list recycles the checkpointed hole.
    let mut store = store;
    let re = store.try_allocate(VecPage(vec![77])).unwrap();
    assert_eq!(re.index(), 3, "hole from the freed page is reused");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The torn-tail sweep: after two committed windows, append a third
/// window and truncate the log at **every** byte offset past the
/// committed prefix. Recovery must always yield exactly the
/// two-window state — never a partial third window, never less.
#[test]
fn torn_tail_truncation_sweep_never_loses_committed_state() {
    let dir = tmp_dir("store-tear-sweep");
    let committed;
    let committed_len;
    {
        let (mut store, _) = open_store(&dir);
        let a = store.try_allocate(VecPage(vec![1])).unwrap();
        store.try_commit(b"w1").unwrap();
        store.try_write(a, |p| p.0.push(2)).unwrap();
        store.try_commit(b"w2").unwrap();
        committed = contents(&store);
        committed_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        // Window 3: journaled but — by construction below — torn.
        store.try_write(a, |p| p.0.push(3)).unwrap();
        store.try_allocate(VecPage(vec![4])).unwrap();
        store.try_commit(b"w3").unwrap();
    }
    let full = std::fs::read(dir.join(WAL_FILE)).unwrap();
    assert!(full.len() > committed_len as usize);
    for cut in committed_len as usize..full.len() {
        std::fs::write(dir.join(WAL_FILE), &full[..cut]).unwrap();
        let (store, image) = open_store(&dir);
        assert_eq!(
            contents(&store),
            committed,
            "cut at {cut}: exactly the committed prefix must survive"
        );
        assert_eq!(image.commit_seq, 2, "cut at {cut}");
        assert_eq!(
            image.dropped_bytes,
            (cut - committed_len as usize) as u64,
            "cut at {cut}: exactly the uncommitted suffix is dropped"
        );
    }
    // And with the full (untruncated) log, window 3 applies.
    std::fs::write(dir.join(WAL_FILE), &full).unwrap();
    let (store, image) = open_store(&dir);
    assert_eq!(image.commit_seq, 3);
    assert_ne!(contents(&store), committed);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The corruption sweep: flip one byte at every offset of the last
/// (committed) record; recovery must keep every *earlier* committed
/// window intact and at most drop the corrupted one.
#[test]
fn corrupting_last_record_at_every_offset_never_corrupts_earlier_windows() {
    let dir = tmp_dir("store-corrupt-sweep");
    let w1_state;
    let w1_len;
    {
        let (mut store, _) = open_store(&dir);
        let a = store.try_allocate(VecPage(vec![10])).unwrap();
        store.try_commit(b"w1").unwrap();
        w1_state = contents(&store);
        w1_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len() as usize;
        store.try_write(a, |p| p.0.push(11)).unwrap();
        store.try_commit(b"w2").unwrap();
    }
    let full = std::fs::read(dir.join(WAL_FILE)).unwrap();
    let w2_state = {
        let (store, _) = open_store(&dir);
        contents(&store)
    };
    for offset in w1_len..full.len() {
        let mut bad = full.clone();
        bad[offset] ^= 0x20;
        std::fs::write(dir.join(WAL_FILE), &bad).unwrap();
        let (store, image) = open_store(&dir);
        let got = contents(&store);
        assert!(
            got == w1_state || got == w2_state,
            "offset {offset}: recovered neither window-1 nor window-2 state"
        );
        assert!(image.commit_seq == 1 || image.commit_seq == 2);
        // Reopen already truncated the corrupted tail; restore the
        // intact log for the next iteration.
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash mid-commit via the fault adapter at a seeded write index,
/// then reopen: the recovered state is the last fully committed
/// window.
#[test]
fn seeded_crash_mid_commit_recovers_last_committed_window() {
    for crash_at in 1..=8u64 {
        let dir = tmp_dir(&format!("store-crash-{crash_at}"));
        let mut last_committed: Vec<(u32, Vec<u64>)> = Vec::new();
        let mut pending: Option<Vec<(u32, Vec<u64>)>> = None;
        {
            let (backend, image) = DurableFaultStore::open(
                &dir,
                FsyncPolicy::Never,
                FaultPlan::none(crash_at),
                FaultPlan::crash_after_writes(crash_at, crash_at),
            )
            .unwrap();
            let mut store: PageStore<VecPage> =
                PageStore::open_recovered(4, Box::new(backend), &image).unwrap();
            'windows: for w in 0..4u64 {
                let id = match store.try_allocate(VecPage(vec![w])) {
                    Ok(id) => id,
                    Err(_) => break 'windows,
                };
                if store.try_write(id, |p| p.0.push(w * 10)).is_err() {
                    break 'windows;
                }
                let snapshot = contents(&store);
                pending = Some(snapshot.clone());
                match store.try_commit(&w.to_le_bytes()) {
                    Ok(()) => {
                        last_committed = snapshot;
                        pending = None;
                    }
                    Err(_) => break 'windows,
                }
            }
        }
        let (store, _) = open_store(&dir);
        let got = contents(&store);
        let acceptable = got == last_committed || pending.as_ref().is_some_and(|p| *p == got);
        assert!(
            acceptable,
            "crash_at={crash_at}: recovered state matches neither the last \
             committed window nor the in-flight one"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Transient WAL faults are absorbed by the store's retry policy: the
/// commit succeeds and the log stays fully valid.
#[test]
fn transient_wal_faults_are_retried_through_commit() {
    let dir = tmp_dir("store-transient");
    {
        let (backend, image) = DurableFaultStore::open(
            &dir,
            FsyncPolicy::Never,
            FaultPlan::none(7),
            FaultPlan::transient(7),
        )
        .unwrap();
        let mut store: PageStore<VecPage> =
            PageStore::open_recovered(4, Box::new(backend), &image).unwrap();
        let mut committed_windows = 0u32;
        for w in 0..200u64 {
            if store.try_allocate(VecPage(vec![w])).is_err() {
                break;
            }
            if store.try_commit(b"w").is_ok() {
                committed_windows += 1;
            }
        }
        assert!(committed_windows > 0);
        assert!(
            store.stats().retries() > 0,
            "transient plan should have exercised the journal retry path"
        );
        assert!(store.stats().faults_recovered() > 0);
    }
    // Whatever committed is recoverable; a window whose commit lost its
    // retry budget is re-journaled by the next successful commit, so the
    // recovered page count can only meet or exceed the commit count.
    let (store, image) = open_store(&dir);
    assert!(image.commit_seq > 0);
    assert!(contents(&store).len() as u64 >= image.commit_seq);
    std::fs::remove_dir_all(&dir).unwrap();
}
