//! Host crate for the repository-level `examples/` directory.
//!
//! Cargo examples must belong to a package; this crate exists solely to
//! expose the four runnable examples at the repository root:
//!
//! * `quickstart` — index 10k cars, query with every method, compare
//!   answers and I/O;
//! * `highway_monitor` — continuous congestion prediction on a highway;
//! * `cellular_handoff` — 2-D bandwidth pre-provisioning for cells with
//!   approaching phones;
//! * `route_network` — the 1.5-D problem on a freeway network.
//!
//! Run them with `cargo run --release -p mobidx-examples --example <name>`.
