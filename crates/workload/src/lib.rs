//! # mobidx-workload — the paper's experimental workloads (§5)
//!
//! Reproduces the data and query generation of the performance study:
//!
//! * `N` mobile objects uniform on the terrain `[0, y_max]`
//!   (`y_max = 1000`), speeds uniform in `[0.16, 1.66]` (10–100 mph in
//!   miles/minute), direction random;
//! * objects **reflect** at the terrain borders — modeled, as the paper
//!   prescribes, as a motion *update* issued at the exact border-hit
//!   time;
//! * every time instant, 200 randomly chosen objects change speed and/or
//!   direction (more updates);
//! * queries drawn with y-range length `U(0, YQMAX)` and time-window
//!   length `U(0, TW)` starting at the current time:
//!   `(YQMAX, TW) = (150, 60)` gives the ≈10 % "large" mix,
//!   `(10, 20)` the ≈1 % "small" mix.
//!
//! Plus the 2-D variant (§4.2), a route-network generator for the
//! 1.5-dimensional problem (§4.1), and **brute-force oracles** that
//! define the exact MOR answer sets — every index in `mobidx-core` is
//! tested against them.

mod motion;
mod routes;
mod sim1d;
mod sim2d;

pub use motion::{
    brute_force_1d, brute_force_1d_speed, brute_force_2d, MorQuery1D, MorQuery2D, Motion1D,
    Motion2D,
};
pub use routes::{Route, RouteNetwork, RouteObject, RouteWorkloadConfig};
pub use sim1d::{Simulator1D, Update1D, VelocityModel, WorkloadConfig};
pub use sim2d::{Simulator2D, Update2D, WorkloadConfig2D};

/// Paper defaults (§5).
pub mod paper {
    /// Terrain length (`y_max`).
    pub const TERRAIN: f64 = 1000.0;
    /// Minimum speed: 0.16 miles/min = 10 mph.
    pub const V_MIN: f64 = 0.16;
    /// Maximum speed: 1.66 miles/min = 100 mph.
    pub const V_MAX: f64 = 1.66;
    /// Motion updates per time instant.
    pub const UPDATES_PER_INSTANT: usize = 200;
    /// Large-query mix: max y-range length (≈10 % selectivity).
    pub const YQMAX_LARGE: f64 = 150.0;
    /// Large-query mix: max time-window length.
    pub const TW_LARGE: f64 = 60.0;
    /// Small-query mix: max y-range length (≈1 % selectivity).
    pub const YQMAX_SMALL: f64 = 10.0;
    /// Small-query mix: max time-window length.
    pub const TW_SMALL: f64 = 20.0;
    /// Scenario length in time instants.
    pub const INSTANTS: usize = 2000;
    /// Queries per query time instant.
    pub const QUERIES_PER_INSTANT: usize = 200;
    /// Number of query time instants.
    pub const QUERY_INSTANTS: usize = 10;
}
