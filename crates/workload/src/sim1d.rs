//! The 1-D scenario simulator of §5.

use crate::motion::{MorQuery1D, Motion1D};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the simulator draws speeds for new and updated motions.
///
/// The paper's scenario is [`VelocityModel::Uniform`]; the two-band
/// model is the drift-detection ground truth — switching a running
/// simulator to it ([`Simulator1D::set_velocity_model`]) reshapes the
/// observed velocity histogram the way a highway rush hour does, which
/// is exactly the distribution shift the speed-partitioning literature
/// repartitions on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VelocityModel {
    /// Speeds uniform in `[v_min, v_max]` (the paper's §5 default).
    Uniform,
    /// A bimodal mix: with probability `fast_frac` the speed is uniform
    /// in the top `band_frac` of `[v_min, v_max]`, otherwise uniform in
    /// the bottom `band_frac` — no mass in the middle.
    TwoBand {
        /// Fraction of draws landing in the fast band.
        fast_frac: f64,
        /// Width of each band as a fraction of the full speed range
        /// (`0 < band_frac ≤ 0.5`).
        band_frac: f64,
    },
}

/// Parameters of a 1-D scenario (defaults = the paper's §5 values).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of mobile objects.
    pub n: usize,
    /// Terrain length `y_max`.
    pub terrain: f64,
    /// Minimum speed.
    pub v_min: f64,
    /// Maximum speed.
    pub v_max: f64,
    /// Random motion updates per time instant.
    pub updates_per_instant: usize,
    /// RNG seed (scenarios are fully deterministic given the seed).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            terrain: crate::paper::TERRAIN,
            v_min: crate::paper::V_MIN,
            v_max: crate::paper::V_MAX,
            updates_per_instant: crate::paper::UPDATES_PER_INSTANT,
            seed: 0x5EED,
        }
    }
}

/// One motion update: the database deletes `old` and inserts `new`
/// (§3: "We treat an update as a deletion of the old information and an
/// insertion of the new one").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Update1D {
    /// State being replaced.
    pub old: Motion1D,
    /// New state.
    pub new: Motion1D,
}

/// Border-hit event in the reflection queue.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Hit {
    time: f64,
    id: u64,
    generation: u64,
}

impl Eq for Hit {}
impl Ord for Hit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.id.cmp(&other.id))
    }
}
impl PartialOrd for Hit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The continuously running 1-D world: objects move, reflect at borders
/// (issuing updates at the exact hit time), and a fixed number of random
/// objects change their motion each instant.
#[derive(Debug)]
pub struct Simulator1D {
    cfg: WorkloadConfig,
    rng: SmallRng,
    objects: Vec<Motion1D>,
    /// Per-object generation counters invalidate stale heap entries.
    generations: Vec<u64>,
    hits: BinaryHeap<Reverse<Hit>>,
    now: f64,
    /// Speed distribution for new velocity draws (switchable mid-run).
    velocity_model: VelocityModel,
}

impl Simulator1D {
    /// Creates the world at `t = 0` with uniform initial positions and
    /// speeds.
    #[must_use]
    pub fn new(cfg: WorkloadConfig) -> Self {
        assert!(cfg.n > 0, "empty world");
        assert!(
            0.0 < cfg.v_min && cfg.v_min < cfg.v_max,
            "speed band must satisfy 0 < v_min < v_max"
        );
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut sim = Self {
            cfg,
            objects: Vec::with_capacity(cfg.n),
            generations: vec![0; cfg.n],
            hits: BinaryHeap::with_capacity(cfg.n),
            now: 0.0,
            rng: SmallRng::seed_from_u64(0), // replaced below
            velocity_model: VelocityModel::Uniform,
        };
        std::mem::swap(&mut sim.rng, &mut rng);
        for id in 0..cfg.n as u64 {
            let y0 = sim.rng.gen_range(0.0..cfg.terrain);
            let v = sim.random_velocity();
            sim.objects.push(Motion1D { id, t0: 0.0, y0, v });
            sim.push_hit(id as usize);
        }
        sim
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Current motion table (the database contents).
    #[must_use]
    pub fn objects(&self) -> &[Motion1D] {
        &self.objects
    }

    /// The workload parameters.
    #[must_use]
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Advances the world by one time instant, returning every update
    /// issued (border reflections at their exact times, then the random
    /// motion changes at the new instant), in order.
    pub fn step(&mut self) -> Vec<Update1D> {
        let target = self.now + 1.0;
        let mut updates = Vec::with_capacity(self.cfg.updates_per_instant + 8);
        // Reflections due within this instant.
        while let Some(&Reverse(hit)) = self.hits.peek() {
            if hit.time > target {
                break;
            }
            let _ = self.hits.pop();
            let idx = hit.id as usize;
            if hit.generation != self.generations[idx] {
                continue; // stale
            }
            let old = self.objects[idx];
            let y_hit = old.position_at(hit.time).clamp(0.0, self.cfg.terrain);
            let new = Motion1D {
                id: old.id,
                t0: hit.time,
                y0: y_hit,
                v: -old.v,
            };
            self.objects[idx] = new;
            self.generations[idx] += 1;
            self.push_hit(idx);
            updates.push(Update1D { old, new });
        }
        self.now = target;
        // Random motion changes at the new instant.
        for _ in 0..self.cfg.updates_per_instant {
            let idx = self.rng.gen_range(0..self.cfg.n);
            let old = self.objects[idx];
            let y_now = old.position_at(target).clamp(0.0, self.cfg.terrain);
            let new = Motion1D {
                id: old.id,
                t0: target,
                y0: y_now,
                v: self.random_velocity(),
            };
            self.objects[idx] = new;
            self.generations[idx] += 1;
            self.push_hit(idx);
            updates.push(Update1D { old, new });
        }
        updates
    }

    /// Draws a random MOR query at the current time: y-range length
    /// `U(0, yqmax)`, window length `U(0, tw)`, start at `now`.
    pub fn gen_query(&mut self, yqmax: f64, tw: f64) -> MorQuery1D {
        let len = self.rng.gen_range(0.0..yqmax);
        let y1 = self
            .rng
            .gen_range(0.0..(self.cfg.terrain - len).max(f64::MIN_POSITIVE));
        let dt = self.rng.gen_range(0.0..tw);
        MorQuery1D {
            y1,
            y2: y1 + len,
            t1: self.now,
            t2: self.now + dt,
        }
    }

    /// The active speed distribution.
    #[must_use]
    pub fn velocity_model(&self) -> VelocityModel {
        self.velocity_model
    }

    /// Switches the speed distribution for *future* velocity draws
    /// (existing motions keep their speeds until their next update), the
    /// knob a drift-detection test turns mid-run.
    ///
    /// # Panics
    /// Panics on a degenerate two-band model (`fast_frac` outside
    /// `[0, 1]` or `band_frac` outside `(0, 0.5]`).
    pub fn set_velocity_model(&mut self, model: VelocityModel) {
        if let VelocityModel::TwoBand {
            fast_frac,
            band_frac,
        } = model
        {
            assert!((0.0..=1.0).contains(&fast_frac), "fast_frac {fast_frac}");
            assert!(
                band_frac > 0.0 && band_frac <= 0.5,
                "band_frac {band_frac} outside (0, 0.5]"
            );
        }
        self.velocity_model = model;
    }

    fn random_velocity(&mut self) -> f64 {
        let speed = match self.velocity_model {
            VelocityModel::Uniform => self.rng.gen_range(self.cfg.v_min..=self.cfg.v_max),
            VelocityModel::TwoBand {
                fast_frac,
                band_frac,
            } => {
                let span = self.cfg.v_max - self.cfg.v_min;
                let width = span * band_frac;
                if self.rng.gen_bool(fast_frac.clamp(0.0, 1.0)) {
                    self.rng
                        .gen_range((self.cfg.v_max - width)..=self.cfg.v_max)
                } else {
                    self.rng
                        .gen_range(self.cfg.v_min..=(self.cfg.v_min + width))
                }
            }
        };
        if self.rng.gen_bool(0.5) {
            speed
        } else {
            -speed
        }
    }

    /// Schedules the next border hit of object `idx`.
    fn push_hit(&mut self, idx: usize) {
        let m = self.objects[idx];
        let time = if m.v > 0.0 {
            m.t0 + (self.cfg.terrain - m.y0) / m.v
        } else {
            m.t0 + (0.0 - m.y0) / m.v
        };
        self.hits.push(Reverse(Hit {
            time,
            id: m.id,
            generation: self.generations[idx],
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            n: 500,
            updates_per_instant: 20,
            seed: 42,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Simulator1D::new(small_cfg());
        let mut b = Simulator1D::new(small_cfg());
        for _ in 0..50 {
            assert_eq!(a.step(), b.step());
        }
        assert_eq!(a.objects(), b.objects());
    }

    #[test]
    fn objects_stay_on_terrain() {
        let mut sim = Simulator1D::new(small_cfg());
        for _ in 0..3000 {
            let _ = sim.step();
        }
        let t = sim.now();
        for m in sim.objects() {
            let p = m.position_at(t);
            assert!(
                (-1e-6..=sim.config().terrain + 1e-6).contains(&p),
                "object {} escaped: {p}",
                m.id
            );
        }
    }

    #[test]
    fn speeds_stay_in_band() {
        let mut sim = Simulator1D::new(small_cfg());
        for _ in 0..200 {
            let _ = sim.step();
        }
        let cfg = *sim.config();
        for m in sim.objects() {
            let s = m.v.abs();
            assert!(
                (cfg.v_min..=cfg.v_max).contains(&s),
                "speed {s} out of band"
            );
        }
    }

    #[test]
    fn updates_include_reflections_and_random_changes() {
        let mut sim = Simulator1D::new(small_cfg());
        let mut total = 0usize;
        for _ in 0..500 {
            total += sim.step().len();
        }
        // At least the scheduled random changes; reflections add more.
        assert!(total > 500 * 20, "no reflections generated? total={total}");
        // Updates are consistent: old-id == new-id and a fresh t0.
        let ups = sim.step();
        for u in ups {
            assert_eq!(u.old.id, u.new.id);
            assert!(u.new.t0 > u.old.t0 - 1e-9);
        }
    }

    #[test]
    fn large_query_mix_has_plausible_selectivity() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 5000,
            ..small_cfg()
        });
        for _ in 0..100 {
            let _ = sim.step();
        }
        let mut total_frac = 0.0;
        let queries = 100;
        for _ in 0..queries {
            let q = sim.gen_query(crate::paper::YQMAX_LARGE, crate::paper::TW_LARGE);
            let hits = crate::brute_force_1d(sim.objects(), &q).len();
            #[allow(clippy::cast_precision_loss)]
            {
                total_frac += hits as f64 / 5000.0;
            }
        }
        let avg = total_frac / f64::from(queries);
        // The paper reports ~10 %; accept a broad band.
        assert!(
            (0.02..0.3).contains(&avg),
            "large-query selectivity {avg} implausible"
        );
    }

    #[test]
    fn two_band_model_empties_the_middle_of_the_speed_range() {
        let mut sim = Simulator1D::new(small_cfg());
        sim.set_velocity_model(VelocityModel::TwoBand {
            fast_frac: 0.5,
            band_frac: 0.2,
        });
        // Enough steps that essentially every object has re-drawn its
        // velocity under the new model.
        for _ in 0..2000 {
            let _ = sim.step();
        }
        let cfg = *sim.config();
        let span = cfg.v_max - cfg.v_min;
        let (mut slow, mut fast, mut middle) = (0usize, 0usize, 0usize);
        for m in sim.objects() {
            let s = m.v.abs();
            assert!((cfg.v_min..=cfg.v_max).contains(&s), "speed {s} off band");
            if s <= cfg.v_min + span * 0.2 + 1e-9 {
                slow += 1;
            } else if s >= cfg.v_max - span * 0.2 - 1e-9 {
                fast += 1;
            } else {
                middle += 1;
            }
        }
        assert!(slow > 100 && fast > 100, "bands empty: {slow}/{fast}");
        // A handful of objects may still carry pre-switch uniform speeds
        // (they never re-drew); the middle must be nearly empty.
        assert!(middle < 50, "middle band still populated: {middle}");
    }

    #[test]
    fn queries_start_at_now_and_stay_in_terrain() {
        let mut sim = Simulator1D::new(small_cfg());
        for _ in 0..10 {
            let _ = sim.step();
        }
        for _ in 0..100 {
            let q = sim.gen_query(150.0, 60.0);
            assert!(q.t1 >= sim.now() - 1e-9);
            assert!(q.t2 >= q.t1);
            assert!(q.y1 >= 0.0 && q.y2 <= sim.config().terrain + 1e-9);
            assert!(q.y1 <= q.y2);
        }
    }
}
