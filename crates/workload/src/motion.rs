//! Motion states, MOR queries, and brute-force oracles.

/// The motion information of a 1-D mobile object, as stored in the
//  database (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Motion1D {
    /// Object identifier.
    pub id: u64,
    /// Time of the last update.
    pub t0: f64,
    /// Position at `t0`.
    pub y0: f64,
    /// Signed velocity (`|v| ∈ [v_min, v_max]`).
    pub v: f64,
}

impl Motion1D {
    /// Linear extrapolation `y0 + v·(t − t0)` — the database's knowledge
    /// of the object (future reflections are unknown until the object
    /// issues its update).
    #[must_use]
    pub fn position_at(&self, t: f64) -> f64 {
        self.y0 + self.v * (t - self.t0)
    }

    /// The trajectory's intercept at absolute time zero (`y(0)`), the `a`
    /// of the Hough-X dual `y = v·t + a`.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.y0 - self.v * self.t0
    }
}

/// The motion information of a 2-D mobile object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Motion2D {
    /// Object identifier.
    pub id: u64,
    /// Time of the last update.
    pub t0: f64,
    /// Position at `t0`.
    pub x0: f64,
    /// Position at `t0`.
    pub y0: f64,
    /// Velocity components.
    pub vx: f64,
    /// Velocity components.
    pub vy: f64,
}

impl Motion2D {
    /// Linear extrapolation of both coordinates.
    #[must_use]
    pub fn position_at(&self, t: f64) -> (f64, f64) {
        let dt = t - self.t0;
        (self.x0 + self.vx * dt, self.y0 + self.vy * dt)
    }

    /// The x-projection as a 1-D motion.
    #[must_use]
    pub fn x_motion(&self) -> Motion1D {
        Motion1D {
            id: self.id,
            t0: self.t0,
            y0: self.x0,
            v: self.vx,
        }
    }

    /// The y-projection as a 1-D motion.
    #[must_use]
    pub fn y_motion(&self) -> Motion1D {
        Motion1D {
            id: self.id,
            t0: self.t0,
            y0: self.y0,
            v: self.vy,
        }
    }
}

/// The one-dimensional MOR query (§2): report objects inside
/// `[y1, y2]` at some instant of `[t1, t2]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MorQuery1D {
    /// Spatial range, `y1 ≤ y2`.
    pub y1: f64,
    /// Spatial range, `y1 ≤ y2`.
    pub y2: f64,
    /// Time window, `t_now ≤ t1 ≤ t2`.
    pub t1: f64,
    /// Time window, `t_now ≤ t1 ≤ t2`.
    pub t2: f64,
}

impl MorQuery1D {
    /// Whether `m` satisfies the query under linear extrapolation: the
    /// swept position interval over `[t1, t2]` intersects `[y1, y2]`.
    #[must_use]
    pub fn matches(&self, m: &Motion1D) -> bool {
        let p1 = m.position_at(self.t1);
        let p2 = m.position_at(self.t2);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        lo <= self.y2 && hi >= self.y1
    }
}

/// The two-dimensional MOR query (§2): report objects inside the
/// rectangle at some instant of `[t1, t2]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MorQuery2D {
    /// Spatial rectangle.
    pub x1: f64,
    /// Spatial rectangle.
    pub x2: f64,
    /// Spatial rectangle.
    pub y1: f64,
    /// Spatial rectangle.
    pub y2: f64,
    /// Time window.
    pub t1: f64,
    /// Time window.
    pub t2: f64,
}

impl MorQuery2D {
    /// Whether `m` is inside the rectangle at some single instant of the
    /// window: the per-axis residence time intervals and the query window
    /// must have a common point.
    #[must_use]
    pub fn matches(&self, m: &Motion2D) -> bool {
        let ix = axis_interval(m.x0, m.vx, m.t0, self.x1, self.x2);
        let iy = axis_interval(m.y0, m.vy, m.t0, self.y1, self.y2);
        match (ix, iy) {
            (Some((a1, a2)), Some((b1, b2))) => {
                let lo = a1.max(b1).max(self.t1);
                let hi = a2.min(b2).min(self.t2);
                lo <= hi
            }
            _ => false,
        }
    }

    /// The x-axis sub-query of the decomposition method (§4.2).
    #[must_use]
    pub fn x_query(&self) -> MorQuery1D {
        MorQuery1D {
            y1: self.x1,
            y2: self.x2,
            t1: self.t1,
            t2: self.t2,
        }
    }

    /// The y-axis sub-query of the decomposition method (§4.2).
    #[must_use]
    pub fn y_query(&self) -> MorQuery1D {
        MorQuery1D {
            y1: self.y1,
            y2: self.y2,
            t1: self.t1,
            t2: self.t2,
        }
    }
}

/// Time interval during which `p0 + v·(t − t0)` lies in `[lo, hi]`.
fn axis_interval(p0: f64, v: f64, t0: f64, lo: f64, hi: f64) -> Option<(f64, f64)> {
    if v.abs() < 1e-12 {
        return (lo <= p0 && p0 <= hi).then_some((f64::NEG_INFINITY, f64::INFINITY));
    }
    let ta = t0 + (lo - p0) / v;
    let tb = t0 + (hi - p0) / v;
    Some(if ta <= tb { (ta, tb) } else { (tb, ta) })
}

/// Exact answer to a 1-D MOR query: ids, sorted.
#[must_use]
pub fn brute_force_1d(objects: &[Motion1D], q: &MorQuery1D) -> Vec<u64> {
    let mut out: Vec<u64> = objects
        .iter()
        .filter(|m| q.matches(m))
        .map(|m| m.id)
        .collect();
    out.sort_unstable();
    out
}

/// Exact answer to a 1-D MOR query restricted to objects whose absolute
/// speed lies in `[v_lo, v_hi]` (inclusive): ids, sorted. The oracle for
/// speed-filtered serving queries (a speed-band-sharded front end can
/// prove which shards may hold such objects and skip the rest).
#[must_use]
pub fn brute_force_1d_speed(
    objects: &[Motion1D],
    q: &MorQuery1D,
    v_lo: f64,
    v_hi: f64,
) -> Vec<u64> {
    let mut out: Vec<u64> = objects
        .iter()
        .filter(|m| {
            let s = m.v.abs();
            v_lo <= s && s <= v_hi && q.matches(m)
        })
        .map(|m| m.id)
        .collect();
    out.sort_unstable();
    out
}

/// Exact answer to a 2-D MOR query: ids, sorted.
#[must_use]
pub fn brute_force_2d(objects: &[Motion2D], q: &MorQuery2D) -> Vec<u64> {
    let mut out: Vec<u64> = objects
        .iter()
        .filter(|m| q.matches(m))
        .map(|m| m.id)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_extrapolates_from_update_time() {
        let m = Motion1D {
            id: 1,
            t0: 10.0,
            y0: 100.0,
            v: 2.0,
        };
        assert!((m.position_at(15.0) - 110.0).abs() < 1e-12);
        assert!((m.position_at(10.0) - 100.0).abs() < 1e-12);
        assert!((m.intercept() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn query_matches_swept_interval() {
        let m = Motion1D {
            id: 1,
            t0: 0.0,
            y0: 0.0,
            v: 1.0,
        };
        // Over [5, 10] the object sweeps [5, 10].
        let hit = MorQuery1D {
            y1: 8.0,
            y2: 20.0,
            t1: 5.0,
            t2: 10.0,
        };
        assert!(hit.matches(&m));
        let miss = MorQuery1D {
            y1: 11.0,
            y2: 20.0,
            t1: 5.0,
            t2: 10.0,
        };
        assert!(!miss.matches(&m));
        // Zero-length window = time-slice query.
        let slice = MorQuery1D {
            y1: 7.0,
            y2: 7.0,
            t1: 7.0,
            t2: 7.0,
        };
        assert!(slice.matches(&m));
    }

    #[test]
    fn negative_velocity_objects_match() {
        let m = Motion1D {
            id: 2,
            t0: 0.0,
            y0: 100.0,
            v: -1.0,
        };
        let q = MorQuery1D {
            y1: 0.0,
            y2: 95.0,
            t1: 5.0,
            t2: 6.0,
        };
        assert!(q.matches(&m));
    }

    #[test]
    fn twod_requires_simultaneous_residence() {
        // Object crosses the x-range during [0, 1] and the y-range during
        // [5, 6]: never inside the rectangle at one instant.
        let m = Motion2D {
            id: 3,
            t0: 0.0,
            x0: 0.0,
            y0: 0.0,
            vx: 1.0,
            vy: 0.2,
        };
        let q = MorQuery2D {
            x1: 0.0,
            x2: 1.0,
            y1: 1.0,
            y2: 1.2,
            t1: 0.0,
            t2: 10.0,
        };
        // x ∈ [0,1] during t ∈ [0,1]; y ∈ [1,1.2] during t ∈ [5,6].
        assert!(!q.matches(&m));
        // But each axis query alone matches — the decomposition method's
        // false positive, removed by refinement.
        assert!(q.x_query().matches(&m.x_motion()));
        assert!(q.y_query().matches(&m.y_motion()));
    }

    #[test]
    fn twod_zero_velocity_axis() {
        let m = Motion2D {
            id: 4,
            t0: 0.0,
            x0: 5.0,
            y0: 0.0,
            vx: 0.0,
            vy: 1.0,
        };
        let q = MorQuery2D {
            x1: 4.0,
            x2: 6.0,
            y1: 9.0,
            y2: 11.0,
            t1: 8.0,
            t2: 12.0,
        };
        assert!(q.matches(&m));
        let q_off = MorQuery2D { x1: 6.5, ..q };
        assert!(!q_off.matches(&m));
    }

    #[test]
    fn brute_force_sorted_ids() {
        let objs = vec![
            Motion1D {
                id: 5,
                t0: 0.0,
                y0: 10.0,
                v: 1.0,
            },
            Motion1D {
                id: 2,
                t0: 0.0,
                y0: 11.0,
                v: 1.0,
            },
            Motion1D {
                id: 9,
                t0: 0.0,
                y0: 500.0,
                v: 1.0,
            },
        ];
        let q = MorQuery1D {
            y1: 0.0,
            y2: 50.0,
            t1: 0.0,
            t2: 1.0,
        };
        assert_eq!(brute_force_1d(&objs, &q), vec![2, 5]);
    }
}
