//! The 2-D scenario simulator (§4.2 workloads).
//!
//! Per-axis velocities are drawn independently from the paper's speed
//! band with random signs; objects reflect per-axis at the borders of the
//! `[0, x_max] × [0, y_max]` terrain, each reflection issuing an update.

use crate::motion::{MorQuery2D, Motion2D};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Parameters of a 2-D scenario.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig2D {
    /// Number of mobile objects.
    pub n: usize,
    /// Terrain width (`x_max`).
    pub x_max: f64,
    /// Terrain height (`y_max`).
    pub y_max: f64,
    /// Minimum per-axis speed.
    pub v_min: f64,
    /// Maximum per-axis speed.
    pub v_max: f64,
    /// Random motion updates per time instant.
    pub updates_per_instant: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig2D {
    fn default() -> Self {
        Self {
            n: 100_000,
            x_max: crate::paper::TERRAIN,
            y_max: crate::paper::TERRAIN,
            v_min: crate::paper::V_MIN,
            v_max: crate::paper::V_MAX,
            updates_per_instant: crate::paper::UPDATES_PER_INSTANT,
            seed: 0x5EED2,
        }
    }
}

/// One 2-D motion update (delete `old`, insert `new`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Update2D {
    /// State being replaced.
    pub old: Motion2D,
    /// New state.
    pub new: Motion2D,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Hit {
    time: f64,
    id: u64,
    generation: u64,
    /// Which axes meet a border at `time` (decided at scheduling time —
    /// re-deriving from positions at processing time is brittle under
    /// floating-point rounding).
    flip_x: bool,
    flip_y: bool,
}
impl Eq for Hit {}
impl Ord for Hit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.id.cmp(&other.id))
    }
}
impl PartialOrd for Hit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The continuously running 2-D world.
#[derive(Debug)]
pub struct Simulator2D {
    cfg: WorkloadConfig2D,
    rng: SmallRng,
    objects: Vec<Motion2D>,
    generations: Vec<u64>,
    hits: BinaryHeap<Reverse<Hit>>,
    now: f64,
}

impl Simulator2D {
    /// Creates the world at `t = 0`.
    #[must_use]
    pub fn new(cfg: WorkloadConfig2D) -> Self {
        assert!(cfg.n > 0, "empty world");
        assert!(0.0 < cfg.v_min && cfg.v_min < cfg.v_max, "bad speed band");
        let mut sim = Self {
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed),
            objects: Vec::with_capacity(cfg.n),
            generations: vec![0; cfg.n],
            hits: BinaryHeap::with_capacity(cfg.n),
            now: 0.0,
        };
        for id in 0..cfg.n as u64 {
            let x0 = sim.rng.gen_range(0.0..cfg.x_max);
            let y0 = sim.rng.gen_range(0.0..cfg.y_max);
            let vx = sim.random_velocity();
            let vy = sim.random_velocity();
            sim.objects.push(Motion2D {
                id,
                t0: 0.0,
                x0,
                y0,
                vx,
                vy,
            });
            sim.push_hit(id as usize);
        }
        sim
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Current motion table.
    #[must_use]
    pub fn objects(&self) -> &[Motion2D] {
        &self.objects
    }

    /// The workload parameters.
    #[must_use]
    pub fn config(&self) -> &WorkloadConfig2D {
        &self.cfg
    }

    /// Advances by one instant, returning all issued updates.
    pub fn step(&mut self) -> Vec<Update2D> {
        let target = self.now + 1.0;
        let mut updates = Vec::with_capacity(self.cfg.updates_per_instant + 8);
        while let Some(&Reverse(hit)) = self.hits.peek() {
            if hit.time > target {
                break;
            }
            let _ = self.hits.pop();
            let idx = hit.id as usize;
            if hit.generation != self.generations[idx] {
                continue;
            }
            let old = self.objects[idx];
            let (x, y) = old.position_at(hit.time);
            // Axes flagged at scheduling time land exactly on the border.
            let x = if hit.flip_x {
                if old.vx > 0.0 {
                    self.cfg.x_max
                } else {
                    0.0
                }
            } else {
                x.clamp(0.0, self.cfg.x_max)
            };
            let y = if hit.flip_y {
                if old.vy > 0.0 {
                    self.cfg.y_max
                } else {
                    0.0
                }
            } else {
                y.clamp(0.0, self.cfg.y_max)
            };
            let new = Motion2D {
                id: old.id,
                t0: hit.time,
                x0: x,
                y0: y,
                vx: if hit.flip_x { -old.vx } else { old.vx },
                vy: if hit.flip_y { -old.vy } else { old.vy },
            };
            self.objects[idx] = new;
            self.generations[idx] += 1;
            self.push_hit(idx);
            updates.push(Update2D { old, new });
        }
        self.now = target;
        for _ in 0..self.cfg.updates_per_instant {
            let idx = self.rng.gen_range(0..self.cfg.n);
            let old = self.objects[idx];
            let (x, y) = old.position_at(target);
            let new = Motion2D {
                id: old.id,
                t0: target,
                x0: x.clamp(0.0, self.cfg.x_max),
                y0: y.clamp(0.0, self.cfg.y_max),
                vx: self.random_velocity(),
                vy: self.random_velocity(),
            };
            self.objects[idx] = new;
            self.generations[idx] += 1;
            self.push_hit(idx);
            updates.push(Update2D { old, new });
        }
        updates
    }

    /// Draws a random 2-D MOR query at the current time.
    pub fn gen_query(&mut self, qmax: f64, tw: f64) -> MorQuery2D {
        let wx = self.rng.gen_range(0.0..qmax);
        let wy = self.rng.gen_range(0.0..qmax);
        let x1 = self
            .rng
            .gen_range(0.0..(self.cfg.x_max - wx).max(f64::MIN_POSITIVE));
        let y1 = self
            .rng
            .gen_range(0.0..(self.cfg.y_max - wy).max(f64::MIN_POSITIVE));
        let dt = self.rng.gen_range(0.0..tw);
        MorQuery2D {
            x1,
            x2: x1 + wx,
            y1,
            y2: y1 + wy,
            t1: self.now,
            t2: self.now + dt,
        }
    }

    fn random_velocity(&mut self) -> f64 {
        let speed = self.rng.gen_range(self.cfg.v_min..=self.cfg.v_max);
        if self.rng.gen_bool(0.5) {
            speed
        } else {
            -speed
        }
    }

    /// Next border hit on either axis.
    fn push_hit(&mut self, idx: usize) {
        let m = self.objects[idx];
        let tx = if m.vx > 0.0 {
            m.t0 + (self.cfg.x_max - m.x0) / m.vx
        } else {
            m.t0 + (0.0 - m.x0) / m.vx
        };
        let ty = if m.vy > 0.0 {
            m.t0 + (self.cfg.y_max - m.y0) / m.vy
        } else {
            m.t0 + (0.0 - m.y0) / m.vy
        };
        let time = tx.min(ty);
        let eps = 1e-9;
        self.hits.push(Reverse(Hit {
            time,
            id: m.id,
            generation: self.generations[idx],
            flip_x: tx <= time + eps,
            flip_y: ty <= time + eps,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> WorkloadConfig2D {
        WorkloadConfig2D {
            n: 300,
            updates_per_instant: 15,
            seed: 7,
            ..WorkloadConfig2D::default()
        }
    }

    #[test]
    fn objects_stay_on_terrain() {
        let mut sim = Simulator2D::new(small_cfg());
        for _ in 0..2500 {
            let _ = sim.step();
        }
        let t = sim.now();
        for m in sim.objects() {
            let (x, y) = m.position_at(t);
            assert!((-1e-6..=sim.config().x_max + 1e-6).contains(&x), "x={x}");
            assert!((-1e-6..=sim.config().y_max + 1e-6).contains(&y), "y={y}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Simulator2D::new(small_cfg());
        let mut b = Simulator2D::new(small_cfg());
        for _ in 0..30 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn queries_within_terrain() {
        let mut sim = Simulator2D::new(small_cfg());
        let _ = sim.step();
        for _ in 0..50 {
            let q = sim.gen_query(150.0, 60.0);
            assert!(q.x1 <= q.x2 && q.y1 <= q.y2 && q.t1 <= q.t2);
            assert!(q.x2 <= sim.config().x_max + 1e-9);
            assert!(q.y2 <= sim.config().y_max + 1e-9);
        }
    }
}
