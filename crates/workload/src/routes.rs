//! Route networks for the 1.5-dimensional problem (§4.1).
//!
//! "Objects (cars, airplanes etc.) move on a network of specific routes
//! (highways, airways)": each route is a polyline on the terrain, and an
//! object's motion is 1-dimensional *along the route's arc length*. A
//! 2-D MOR query is decomposed, route by route, into 1-D queries over the
//! arc-length intervals where the route crosses the query rectangle.

use mobidx_geom::{Point2, Rect2, Segment};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a route workload.
#[derive(Debug, Clone, Copy)]
pub struct RouteWorkloadConfig {
    /// Number of routes.
    pub routes: usize,
    /// Straight segments per route.
    pub segments_per_route: usize,
    /// Number of objects on the network.
    pub n_objects: usize,
    /// Terrain side length (square terrain).
    pub terrain: f64,
    /// Minimum speed along the route.
    pub v_min: f64,
    /// Maximum speed along the route.
    pub v_max: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RouteWorkloadConfig {
    fn default() -> Self {
        Self {
            routes: 20,
            segments_per_route: 8,
            n_objects: 10_000,
            terrain: crate::paper::TERRAIN,
            v_min: crate::paper::V_MIN,
            v_max: crate::paper::V_MAX,
            seed: 0x407E5,
        }
    }
}

/// One route: a polyline with precomputed cumulative arc lengths.
#[derive(Debug, Clone)]
pub struct Route {
    /// Route identifier.
    pub id: u32,
    /// Polyline vertices.
    pub vertices: Vec<Point2>,
    /// `cum_len[i]` = arc length from the start to vertex `i`.
    pub cum_len: Vec<f64>,
}

impl Route {
    /// Builds a route from its vertices.
    ///
    /// # Panics
    /// Panics if fewer than two vertices are given.
    #[must_use]
    pub fn new(id: u32, vertices: Vec<Point2>) -> Self {
        assert!(vertices.len() >= 2, "route needs at least one segment");
        let mut cum_len = Vec::with_capacity(vertices.len());
        let mut acc = 0.0;
        cum_len.push(0.0);
        for w in vertices.windows(2) {
            acc += Segment::new(w[0], w[1]).length();
            cum_len.push(acc);
        }
        Self {
            id,
            vertices,
            cum_len,
        }
    }

    /// Total arc length.
    #[must_use]
    pub fn length(&self) -> f64 {
        *self.cum_len.last().expect("non-empty route")
    }

    /// The segments of the polyline with their starting arc lengths.
    pub fn segments(&self) -> impl Iterator<Item = (f64, Segment)> + '_ {
        self.vertices
            .windows(2)
            .zip(&self.cum_len)
            .map(|(w, &s0)| (s0, Segment::new(w[0], w[1])))
    }

    /// The 2-D point at arc length `s` (clamped to the route).
    #[must_use]
    pub fn point_at_arc(&self, s: f64) -> Point2 {
        let s = s.clamp(0.0, self.length());
        // Find the segment containing s.
        let i = match self
            .cum_len
            .binary_search_by(|c| c.partial_cmp(&s).expect("NaN arc"))
        {
            Ok(i) => i.min(self.vertices.len() - 2),
            Err(i) => i - 1,
        };
        let seg = Segment::new(self.vertices[i], self.vertices[i + 1]);
        let seg_len = seg.length();
        let frac = if seg_len > 0.0 {
            (s - self.cum_len[i]) / seg_len
        } else {
            0.0
        };
        seg.at(frac.clamp(0.0, 1.0))
    }

    /// Arc-length intervals where the route passes through `rect`,
    /// merged and sorted.
    #[must_use]
    pub fn clip_rect(&self, rect: &Rect2) -> Vec<(f64, f64)> {
        let mut intervals: Vec<(f64, f64)> = Vec::new();
        for (s0, seg) in self.segments() {
            if let Some((f0, f1)) = seg.clip_to_rect(rect) {
                let len = seg.length();
                intervals.push((s0 + f0 * len, s0 + f1 * len));
            }
        }
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN interval"));
        // Merge adjacent/overlapping intervals.
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
        for (a, b) in intervals {
            match merged.last_mut() {
                Some(last) if a <= last.1 + 1e-9 => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }
        merged
    }
}

/// An object moving along a route at constant arc-length velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteObject {
    /// Object identifier.
    pub id: u64,
    /// Index of the route it travels.
    pub route: u32,
    /// Time of the last update.
    pub t0: f64,
    /// Arc-length position at `t0`.
    pub s0: f64,
    /// Signed arc-length velocity.
    pub v: f64,
}

impl RouteObject {
    /// Linear arc-length extrapolation (the database's knowledge).
    #[must_use]
    pub fn arc_at(&self, t: f64) -> f64 {
        self.s0 + self.v * (t - self.t0)
    }
}

/// A generated route network with its object population.
#[derive(Debug)]
pub struct RouteNetwork {
    /// The routes.
    pub routes: Vec<Route>,
    /// The mobile objects.
    pub objects: Vec<RouteObject>,
    /// Current time.
    pub now: f64,
    rng: SmallRng,
    cfg: RouteWorkloadConfig,
}

impl RouteNetwork {
    /// Generates routes (random-heading polylines on the terrain) and a
    /// uniform object population.
    #[must_use]
    pub fn generate(cfg: RouteWorkloadConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut routes = Vec::with_capacity(cfg.routes);
        for rid in 0..cfg.routes {
            let mut verts = Vec::with_capacity(cfg.segments_per_route + 1);
            let mut x = rng.gen_range(0.0..cfg.terrain);
            let mut y = rng.gen_range(0.0..cfg.terrain);
            let mut heading = rng.gen_range(0.0..std::f64::consts::TAU);
            verts.push(Point2::new(x, y));
            #[allow(clippy::cast_precision_loss)]
            let seg_len = cfg.terrain / cfg.segments_per_route as f64;
            for _ in 0..cfg.segments_per_route {
                heading += rng.gen_range(-0.5..0.5);
                x = (x + seg_len * heading.cos()).clamp(0.0, cfg.terrain);
                y = (y + seg_len * heading.sin()).clamp(0.0, cfg.terrain);
                verts.push(Point2::new(x, y));
            }
            // Drop degenerate repeats introduced by clamping.
            verts.dedup_by(|a, b| (a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9);
            if verts.len() < 2 {
                verts = vec![
                    Point2::new(0.0, rid as f64),
                    Point2::new(cfg.terrain, rid as f64),
                ];
            }
            routes.push(Route::new(u32::try_from(rid).expect("route count"), verts));
        }
        let mut objects = Vec::with_capacity(cfg.n_objects);
        for id in 0..cfg.n_objects as u64 {
            let route = rng.gen_range(0..routes.len());
            let s0 = rng.gen_range(0.0..routes[route].length());
            let speed = rng.gen_range(cfg.v_min..=cfg.v_max);
            let v = if rng.gen_bool(0.5) { speed } else { -speed };
            objects.push(RouteObject {
                id,
                route: u32::try_from(route).expect("route index"),
                t0: 0.0,
                s0,
                v,
            });
        }
        Self {
            routes,
            objects,
            now: 0.0,
            rng,
            cfg,
        }
    }

    /// Advances one instant: objects reaching a route end reverse
    /// (an update), and a few random objects change speed.
    pub fn step(&mut self, random_changes: usize) -> Vec<(RouteObject, RouteObject)> {
        let target = self.now + 1.0;
        let mut updates = Vec::new();
        for i in 0..self.objects.len() {
            let o = self.objects[i];
            let route_len = self.routes[o.route as usize].length();
            let s = o.arc_at(target);
            if s < 0.0 || s > route_len {
                let old = o;
                let new = RouteObject {
                    t0: target,
                    s0: s.clamp(0.0, route_len),
                    v: -o.v,
                    ..o
                };
                self.objects[i] = new;
                updates.push((old, new));
            }
        }
        for _ in 0..random_changes {
            let i = self.rng.gen_range(0..self.objects.len());
            let old = self.objects[i];
            let route_len = self.routes[old.route as usize].length();
            let speed = self.rng.gen_range(self.cfg.v_min..=self.cfg.v_max);
            let new = RouteObject {
                t0: target,
                s0: old.arc_at(target).clamp(0.0, route_len),
                v: if self.rng.gen_bool(0.5) {
                    speed
                } else {
                    -speed
                },
                ..old
            };
            self.objects[i] = new;
            updates.push((old, new));
        }
        self.now = target;
        updates
    }

    /// Exact answer to "which objects are inside `rect` at some instant
    /// of `[t1, t2]`" under per-route linear arc extrapolation.
    #[must_use]
    pub fn brute_force(&self, rect: &Rect2, t1: f64, t2: f64) -> Vec<u64> {
        let clips: Vec<Vec<(f64, f64)>> = self.routes.iter().map(|r| r.clip_rect(rect)).collect();
        let mut out: Vec<u64> = self
            .objects
            .iter()
            .filter(|o| {
                let a = o.arc_at(t1);
                let b = o.arc_at(t2);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                clips[o.route as usize]
                    .iter()
                    .any(|&(c0, c1)| c0 <= hi && c1 >= lo)
            })
            .map(|o| o.id)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_length_parameterization() {
        let r = Route::new(
            0,
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(3.0, 4.0),  // length 5
                Point2::new(3.0, 10.0), // length 6
            ],
        );
        assert!((r.length() - 11.0).abs() < 1e-12);
        let p = r.point_at_arc(5.0);
        assert!((p.x - 3.0).abs() < 1e-9 && (p.y - 4.0).abs() < 1e-9);
        let p = r.point_at_arc(8.0);
        assert!((p.x - 3.0).abs() < 1e-9 && (p.y - 7.0).abs() < 1e-9);
        // Clamped beyond the ends.
        let p = r.point_at_arc(100.0);
        assert!((p.y - 10.0).abs() < 1e-9);
    }

    #[test]
    fn clip_rect_intervals() {
        let r = Route::new(
            0,
            vec![
                Point2::new(0.0, 5.0),
                Point2::new(10.0, 5.0),
                Point2::new(10.0, 15.0),
            ],
        );
        // Rectangle covering x ∈ [2, 4] at the route's first leg.
        let rect = Rect2::from_bounds(2.0, 0.0, 4.0, 10.0);
        let clips = r.clip_rect(&rect);
        assert_eq!(clips.len(), 1);
        assert!((clips[0].0 - 2.0).abs() < 1e-9);
        assert!((clips[0].1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn clip_merges_contiguous_segment_pieces() {
        // L-shaped route fully inside the rect: one merged interval.
        let r = Route::new(
            0,
            vec![
                Point2::new(1.0, 1.0),
                Point2::new(2.0, 1.0),
                Point2::new(2.0, 2.0),
            ],
        );
        let rect = Rect2::from_bounds(0.0, 0.0, 5.0, 5.0);
        let clips = r.clip_rect(&rect);
        assert_eq!(clips.len(), 1);
        assert!((clips[0].0 - 0.0).abs() < 1e-9);
        assert!((clips[0].1 - r.length()).abs() < 1e-9);
    }

    #[test]
    fn generated_network_is_well_formed() {
        let net = RouteNetwork::generate(RouteWorkloadConfig {
            n_objects: 500,
            ..RouteWorkloadConfig::default()
        });
        assert_eq!(net.routes.len(), 20);
        for r in &net.routes {
            assert!(r.length() > 0.0);
            assert!(r.vertices.len() >= 2);
        }
        for o in &net.objects {
            let len = net.routes[o.route as usize].length();
            assert!((0.0..=len).contains(&o.s0));
            assert!(o.v.abs() >= crate::paper::V_MIN && o.v.abs() <= crate::paper::V_MAX);
        }
    }

    #[test]
    fn step_reflects_at_route_ends() {
        let mut net = RouteNetwork::generate(RouteWorkloadConfig {
            n_objects: 200,
            routes: 3,
            segments_per_route: 2,
            ..RouteWorkloadConfig::default()
        });
        let mut reflections = 0;
        for _ in 0..2000 {
            reflections += net.step(0).len();
        }
        assert!(reflections > 0, "no route-end reflections in 2000 steps");
        // All objects still on their routes.
        for o in &net.objects {
            let len = net.routes[o.route as usize].length();
            let s = o.arc_at(net.now);
            assert!((-1.0..=len + 1.0).contains(&s), "object {} at {s}", o.id);
        }
    }

    #[test]
    fn brute_force_sanity() {
        let net = RouteNetwork::generate(RouteWorkloadConfig {
            n_objects: 300,
            ..RouteWorkloadConfig::default()
        });
        // The whole terrain over a window must return everything... except
        // objects whose linear extrapolation has already left their route
        // (none at t=0 with zero-length window).
        let all = net.brute_force(&Rect2::from_bounds(0.0, 0.0, 1000.0, 1000.0), 0.0, 0.0);
        assert_eq!(all.len(), 300);
        // An empty rectangle region far away matches nothing.
        let none = net.brute_force(&Rect2::from_bounds(-10.0, -10.0, -5.0, -5.0), 0.0, 10.0);
        assert!(none.is_empty());
    }
}
