//! Property tests for the workload generators: the simulated world must
//! stay physically consistent under arbitrary seeds and scenario
//! lengths, and the oracles must agree with definitional sampling.

use mobidx_workload::{
    brute_force_1d, brute_force_2d, MorQuery1D, MorQuery2D, Motion1D, Simulator1D, Simulator2D,
    WorkloadConfig, WorkloadConfig2D,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Update streams are exactly consistent: every `old` state is the
    /// state the previous update (or the initial table) installed.
    #[test]
    fn update_streams_are_consistent(seed in any::<u64>(), steps in 1usize..40) {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 120,
            updates_per_instant: 8,
            seed,
            ..WorkloadConfig::default()
        });
        let mut table: std::collections::HashMap<u64, Motion1D> =
            sim.objects().iter().map(|m| (m.id, *m)).collect();
        for _ in 0..steps {
            for u in sim.step() {
                let known = table.insert(u.new.id, u.new);
                prop_assert_eq!(known, Some(u.old), "update chain broken");
            }
        }
        // The final table matches the simulator's.
        for m in sim.objects() {
            prop_assert_eq!(table.get(&m.id), Some(m));
        }
    }

    /// Positions stay on the terrain at every integer instant.
    #[test]
    fn objects_confined(seed in any::<u64>()) {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 80,
            updates_per_instant: 4,
            seed,
            ..WorkloadConfig::default()
        });
        for _ in 0..200 {
            let _ = sim.step();
            let t = sim.now();
            for m in sim.objects() {
                let p = m.position_at(t);
                prop_assert!((-1e-6..=1000.0 + 1e-6).contains(&p));
            }
        }
    }

    /// The 1-D oracle agrees with dense time sampling (sampling can only
    /// find a subset — the swept interval is exact).
    #[test]
    fn oracle_matches_time_sampling(y0 in 0.0f64..1000.0, v in -1.66f64..1.66,
                                    y1 in 0.0f64..900.0, len in 0.0f64..100.0,
                                    t1 in 0.0f64..100.0, dt in 0.0f64..60.0) {
        prop_assume!(v.abs() >= 0.16);
        let m = Motion1D { id: 1, t0: 0.0, y0, v };
        let q = MorQuery1D { y1, y2: y1 + len, t1, t2: t1 + dt };
        let exact = !brute_force_1d(&[m], &q).is_empty();
        let sampled = (0..=200).any(|i| {
            let t = t1 + dt * f64::from(i) / 200.0;
            let p = m.position_at(t);
            q.y1 <= p && p <= q.y2
        });
        if sampled {
            prop_assert!(exact, "sampling found a hit the oracle missed");
        }
        // Conversely: if the oracle matches, some time in the window
        // works (solve exactly rather than sample).
        if exact {
            let p1 = m.position_at(q.t1);
            let p2 = m.position_at(q.t2);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(lo <= q.y2 && hi >= q.y1);
        }
    }

    /// The 2-D oracle is the conjunction of per-axis residence with a
    /// common instant — verified against sampling.
    #[test]
    fn oracle_2d_matches_sampling(seed in any::<u64>(), qmax in 20.0f64..400.0) {
        let mut sim = Simulator2D::new(WorkloadConfig2D {
            n: 60,
            updates_per_instant: 3,
            seed,
            ..WorkloadConfig2D::default()
        });
        for _ in 0..3 {
            let _ = sim.step();
        }
        let q: MorQuery2D = sim.gen_query(qmax, 40.0);
        let exact: std::collections::HashSet<u64> =
            brute_force_2d(sim.objects(), &q).into_iter().collect();
        for m in sim.objects() {
            let sampled = (0..=160).any(|i| {
                let t = q.t1 + (q.t2 - q.t1) * f64::from(i) / 160.0;
                let (x, y) = m.position_at(t);
                q.x1 <= x && x <= q.x2 && q.y1 <= y && y <= q.y2
            });
            if sampled {
                prop_assert!(exact.contains(&m.id), "oracle missed object {}", m.id);
            }
        }
    }
}
