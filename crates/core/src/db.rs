//! A small "motion database" facade over any 1-D index.
//!
//! §2 of the paper: "Objects are responsible to update their motion
//! information, every time when their speed or direction changes", and
//! an update is processed as delete(old) + insert(new) (§3). The index
//! types in [`crate::method`] expose exactly that primitive; this facade
//! adds what a database needs around it — the authoritative motion
//! table, keyed by object id, so callers update by id without tracking
//! the previously inserted record themselves.

use crate::method::{Index1D, IoTotals, QueryOutput, QueryRequest};
use mobidx_workload::{MorQuery1D, Motion1D};
use std::collections::HashMap;
use std::fmt;

/// Typed error of [`MotionDb::try_insert`]: the id is already tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicateId(pub u64);

impl fmt::Display for DuplicateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "object {} already tracked", self.0)
    }
}

impl std::error::Error for DuplicateId {}

/// Typed error of [`MotionDb::try_update`] / [`MotionDb::try_remove`]:
/// no object with this id is tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownId(pub u64);

impl fmt::Display for UnknownId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown object {}", self.0)
    }
}

impl std::error::Error for UnknownId {}

/// One mutation in an [`MotionDb::apply_batch`] group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DbOp {
    /// Register a new object (fails on an already-tracked id).
    Insert(Motion1D),
    /// Replace a tracked object's motion (fails on an unknown id).
    Update(Motion1D),
    /// Deregister a tracked object (fails on an unknown id).
    Remove(u64),
}

/// Typed error of [`MotionDb::try_apply_batch`]: the validation pass
/// rejected one op. The database is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// An `Insert` hit an already-tracked id.
    Duplicate(DuplicateId),
    /// An `Update` or `Remove` named an untracked id.
    Unknown(UnknownId),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Duplicate(e) => e.fmt(f),
            BatchError::Unknown(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BatchError {}

impl From<DuplicateId> for BatchError {
    fn from(e: DuplicateId) -> Self {
        BatchError::Duplicate(e)
    }
}

impl From<UnknownId> for BatchError {
    fn from(e: UnknownId) -> Self {
        BatchError::Unknown(e)
    }
}

/// Sorts motions by dual-space locality: speed, then Hough-X intercept
/// `a = y0 − v·t0`, then id — trajectories whose dual points land in the
/// same index pages arrive adjacently, which is what makes the grouped
/// [`Index1D::batch_update`] path dirty each page once. Every caller
/// that dispatches to `batch_update` (this facade, the serving shards,
/// the benchmark harness) sorts through this one definition.
pub fn sort_by_dual_locality(motions: &mut [Motion1D]) {
    motions.sort_unstable_by(|p, q| {
        p.v.total_cmp(&q.v)
            .then_with(|| (p.y0 - p.v * p.t0).total_cmp(&(q.y0 - q.v * q.t0)))
            .then_with(|| p.id.cmp(&q.id))
    });
}

/// A motion database: an [`Index1D`] plus the current motion table.
///
/// ```
/// use mobidx_core::db::MotionDb;
/// use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
/// use mobidx_core::{Motion1D, MorQuery1D, QueryRequest};
///
/// let mut db = MotionDb::new(DualBPlusIndex::new(DualBPlusConfig::default()));
/// db.insert(Motion1D { id: 42, t0: 0.0, y0: 100.0, v: 1.0 });
///
/// // The object reports a new heading at t = 20 (it is at 120 by then).
/// db.update(Motion1D { id: 42, t0: 20.0, y0: 120.0, v: -0.5 });
///
/// let q = MorQuery1D { y1: 100.0, y2: 111.0, t1: 38.0, t2: 42.0 };
/// // At t = 40 the object is back at 110.
/// assert_eq!(db.query(&QueryRequest::new(&q)), vec![42]);
/// assert_eq!(db.remove(42).map(|m| m.v), Some(-0.5));
/// assert!(db.is_empty());
/// ```
#[derive(Debug)]
pub struct MotionDb<I: Index1D> {
    index: I,
    table: HashMap<u64, Motion1D>,
}

impl<I: Index1D> MotionDb<I> {
    /// Wraps an (empty) index.
    #[must_use]
    pub fn new(index: I) -> Self {
        Self {
            index,
            table: HashMap::new(),
        }
    }

    /// Number of tracked objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the database is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The current motion record of an object.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<&Motion1D> {
        self.table.get(&id)
    }

    /// The full motion table (the brute-force oracle's input).
    pub fn objects(&self) -> impl Iterator<Item = &Motion1D> {
        self.table.values()
    }

    /// Registers a new object, failing with a typed error if the id is
    /// already tracked (use [`MotionDb::try_update`] for updates).
    ///
    /// # Errors
    /// [`DuplicateId`] when the id is already tracked; the database is
    /// unchanged.
    pub fn try_insert(&mut self, m: Motion1D) -> Result<(), DuplicateId> {
        if self.table.contains_key(&m.id) {
            return Err(DuplicateId(m.id));
        }
        self.table.insert(m.id, m);
        self.index.insert(&m);
        Ok(())
    }

    /// Applies a motion update: the stored record is replaced by `m`
    /// (delete old + insert new, §3).
    ///
    /// # Errors
    /// [`UnknownId`] when no object with this id is tracked; the
    /// database is unchanged.
    pub fn try_update(&mut self, m: Motion1D) -> Result<(), UnknownId> {
        let Some(&old) = self.table.get(&m.id) else {
            return Err(UnknownId(m.id));
        };
        self.table.insert(m.id, m);
        let removed = self.index.remove(&old);
        debug_assert!(removed, "index lost object {}", m.id);
        self.index.insert(&m);
        Ok(())
    }

    /// Deregisters an object, returning its last motion record.
    ///
    /// # Errors
    /// [`UnknownId`] when no object with this id is tracked.
    pub fn try_remove(&mut self, id: u64) -> Result<Motion1D, UnknownId> {
        let old = self.table.remove(&id).ok_or(UnknownId(id))?;
        let removed = self.index.remove(&old);
        debug_assert!(removed, "index lost object {id}");
        Ok(old)
    }

    /// Registers a new object.
    ///
    /// # Panics
    /// Panics if the id is already tracked — use [`MotionDb::update`]
    /// (or [`MotionDb::try_insert`] for a typed error).
    pub fn insert(&mut self, m: Motion1D) {
        self.try_insert(m)
            .unwrap_or_else(|e| panic!("object {} already tracked", e.0));
    }

    /// Applies a motion update (delete old + insert new, §3).
    ///
    /// # Panics
    /// Panics if the object is unknown — use [`MotionDb::try_update`]
    /// for a typed error.
    pub fn update(&mut self, m: Motion1D) {
        self.try_update(m)
            .unwrap_or_else(|e| panic!("update of unknown object {}", e.0));
    }

    /// Applies a group of mutations with one index round-trip.
    ///
    /// The whole group is validated first against a staged view of the
    /// table (ops see the effects of earlier ops in the same group), then
    /// folded to the **net** effect per object id — `[Insert(m),
    /// Remove(m.id)]` cancels entirely, and an id updated several times
    /// produces one removal of its pre-batch record plus one insertion
    /// of its final record. The nets are dispatched to
    /// [`Index1D::batch_update`] as one removal list plus one insertion
    /// list, both sorted by dual-space locality `(v, y0 − v·t0, id)`.
    ///
    /// # Errors
    /// The first failing op as a [`BatchError`]; the database is then
    /// unchanged.
    pub fn try_apply_batch(&mut self, ops: &[DbOp]) -> Result<(), BatchError> {
        // Pass 1: validate every op against the staged view.
        let mut staged: HashMap<u64, Option<Motion1D>> = HashMap::new();
        for op in ops {
            match *op {
                DbOp::Insert(m) => {
                    if self.staged_present(&staged, m.id) {
                        return Err(DuplicateId(m.id).into());
                    }
                    staged.insert(m.id, Some(m));
                }
                DbOp::Update(m) => {
                    if !self.staged_present(&staged, m.id) {
                        return Err(UnknownId(m.id).into());
                    }
                    staged.insert(m.id, Some(m));
                }
                DbOp::Remove(id) => {
                    if !self.staged_present(&staged, id) {
                        return Err(UnknownId(id).into());
                    }
                    staged.insert(id, None);
                }
            }
        }
        // Pass 2: the net per-id effect (ids whose record is unchanged
        // drop out entirely).
        let mut removes = Vec::new();
        let mut inserts = Vec::new();
        for (&id, after) in &staged {
            let before = self.table.get(&id).copied();
            if before == *after {
                continue;
            }
            if let Some(old) = before {
                removes.push(old);
            }
            if let Some(new) = *after {
                inserts.push(new);
            }
        }
        // Commit the table, then hand the index one grouped update.
        for (id, after) in staged {
            match after {
                Some(m) => {
                    self.table.insert(id, m);
                }
                None => {
                    self.table.remove(&id);
                }
            }
        }
        sort_by_dual_locality(&mut removes);
        sort_by_dual_locality(&mut inserts);
        let removed = self.index.batch_update(&removes, &inserts);
        debug_assert_eq!(removed, removes.len(), "index lost records in batch");
        Ok(())
    }

    /// Applies a group of mutations (see [`MotionDb::try_apply_batch`]).
    ///
    /// # Panics
    /// Panics on the first invalid op; the database is then unchanged.
    pub fn apply_batch(&mut self, ops: &[DbOp]) {
        self.try_apply_batch(ops)
            .unwrap_or_else(|e| panic!("invalid batch: {e}"));
    }

    /// Whether `id` is tracked in the staged view (`staged` overlays the
    /// committed table).
    fn staged_present(&self, staged: &HashMap<u64, Option<Motion1D>>, id: u64) -> bool {
        staged
            .get(&id)
            .map_or_else(|| self.table.contains_key(&id), Option::is_some)
    }

    /// Inserts or updates, whichever applies.
    pub fn upsert(&mut self, m: Motion1D) {
        if self.table.contains_key(&m.id) {
            self.update(m);
        } else {
            self.insert(m);
        }
    }

    /// Deregisters an object, returning its last motion record (`None`
    /// when untracked).
    pub fn remove(&mut self, id: u64) -> Option<Motion1D> {
        self.try_remove(id).ok()
    }

    /// Answers a MOR query — the one read entry point (see
    /// [`QueryRequest`] for the options: trace/span construction and
    /// out-buffer reuse).
    pub fn query(&mut self, req: &QueryRequest<'_, MorQuery1D>) -> QueryOutput {
        self.index.query(req)
    }

    /// The underlying index (e.g. for method-specific extensions such as
    /// [`crate::method::dual_kd::DualKdIndex::nearest`]).
    pub fn index_mut(&mut self) -> &mut I {
        &mut self.index
    }

    /// I/O counters of the underlying index.
    #[must_use]
    pub fn io_totals(&self) -> IoTotals {
        self.index.io_totals()
    }

    /// Clears the index buffer pools (cold-query protocol).
    pub fn clear_buffers(&mut self) {
        self.index.clear_buffers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
    use mobidx_bptree::TreeConfig;
    use mobidx_workload::{brute_force_1d, Simulator1D, WorkloadConfig};

    fn db() -> MotionDb<DualBPlusIndex> {
        MotionDb::new(DualBPlusIndex::new(DualBPlusConfig {
            c: 3,
            tree: TreeConfig {
                leaf_cap: 16,
                branch_cap: 16,
                buffer_pages: 4,
            },
            ..DualBPlusConfig::default()
        }))
    }

    #[test]
    fn tracks_a_simulated_world() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 300,
            updates_per_instant: 15,
            seed: 0xDB,
            ..WorkloadConfig::default()
        });
        let mut db = db();
        for m in sim.objects() {
            db.insert(*m);
        }
        for _ in 0..20 {
            for u in sim.step() {
                db.update(u.new); // by id; the db finds the old record
            }
        }
        assert_eq!(db.len(), 300);
        for _ in 0..10 {
            let q = sim.gen_query(150.0, 60.0);
            assert_eq!(
                db.query(&QueryRequest::new(&q)),
                brute_force_1d(sim.objects(), &q)
            );
        }
    }

    #[test]
    fn remove_and_upsert() {
        let mut db = db();
        let m = Motion1D {
            id: 5,
            t0: 0.0,
            y0: 10.0,
            v: 1.0,
        };
        db.upsert(m); // insert path
        db.upsert(Motion1D { v: -1.0, ..m }); // update path
        assert_eq!(db.get(5).map(|m| m.v), Some(-1.0));
        assert!(db.remove(5).is_some());
        assert!(db.remove(5).is_none());
        let q = MorQuery1D {
            y1: 0.0,
            y2: 1000.0,
            t1: 0.0,
            t2: 100.0,
        };
        assert!(db.query(&QueryRequest::new(&q)).is_empty());
    }

    #[test]
    fn apply_batch_matches_sequential_ops() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 400,
            updates_per_instant: 40,
            seed: 0xBA7C,
            ..WorkloadConfig::default()
        });
        let mut seq = db();
        let mut bat = db();
        for m in sim.objects() {
            seq.insert(*m);
            bat.insert(*m);
        }
        for _ in 0..15 {
            let ups = sim.step();
            let mut ops = Vec::new();
            for u in &ups {
                seq.update(u.new);
                ops.push(DbOp::Update(u.new));
            }
            bat.apply_batch(&ops);
            assert_eq!(bat.len(), seq.len());
        }
        for _ in 0..10 {
            let q = sim.gen_query(150.0, 60.0);
            let want = brute_force_1d(sim.objects(), &q);
            assert_eq!(seq.query(&QueryRequest::new(&q)), want);
            assert_eq!(bat.query(&QueryRequest::new(&q)), want);
        }
    }

    #[test]
    fn apply_batch_nets_out_cancelling_ops() {
        let mut db = db();
        let m = Motion1D {
            id: 7,
            t0: 0.0,
            y0: 50.0,
            v: 1.0,
        };
        // Insert then remove in one group: net nothing.
        db.apply_batch(&[DbOp::Insert(m), DbOp::Remove(7)]);
        assert!(db.is_empty());
        // Insert + several updates: net one final record.
        let last = Motion1D {
            id: 7,
            t0: 2.0,
            y0: 52.0,
            v: -1.0,
        };
        db.apply_batch(&[
            DbOp::Insert(m),
            DbOp::Update(Motion1D { v: 0.5, ..m }),
            DbOp::Update(last),
        ]);
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(7), Some(&last));
        // Remove + reinsert of the identical record: net nothing, but
        // still tracked afterwards.
        db.apply_batch(&[DbOp::Remove(7), DbOp::Insert(last)]);
        assert_eq!(db.get(7), Some(&last));
    }

    #[test]
    fn apply_batch_rejects_and_leaves_db_unchanged() {
        let mut db = db();
        let m = Motion1D {
            id: 1,
            t0: 0.0,
            y0: 10.0,
            v: 1.0,
        };
        db.insert(m);
        // Duplicate insert, staged-aware.
        assert_eq!(
            db.try_apply_batch(&[DbOp::Update(Motion1D { v: 2.0, ..m }), DbOp::Insert(m)]),
            Err(BatchError::Duplicate(DuplicateId(1)))
        );
        assert_eq!(db.get(1), Some(&m), "failed batch must not commit");
        // Unknown update after a staged remove.
        assert_eq!(
            db.try_apply_batch(&[DbOp::Remove(1), DbOp::Update(m)]),
            Err(BatchError::Unknown(UnknownId(1)))
        );
        assert_eq!(db.get(1), Some(&m));
        // Empty batch is a no-op.
        db.apply_batch(&[]);
        assert_eq!(db.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already tracked")]
    fn double_insert_panics() {
        let mut db = db();
        let m = Motion1D {
            id: 1,
            t0: 0.0,
            y0: 1.0,
            v: 1.0,
        };
        db.insert(m);
        db.insert(m);
    }

    #[test]
    #[should_panic(expected = "unknown object")]
    fn update_unknown_panics() {
        let mut db = db();
        db.update(Motion1D {
            id: 9,
            t0: 0.0,
            y0: 1.0,
            v: 1.0,
        });
    }
}
