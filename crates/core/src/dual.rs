//! The dual space-time representation (§3.2) and Proposition 1.
//!
//! A trajectory `y(t) = v·t + a` maps to the point `(v, a)` of the dual
//! **Hough-X** plane, or to `(1/v, b)` of the **Hough-Y** plane where `b`
//! is the time the trajectory crosses a chosen horizontal line
//! `y = y_r`. The 1-D MOR query becomes a convex polygon in Hough-X
//! (Proposition 1) and a wedge — approximated by a `b`-interval — in
//! Hough-Y (§3.5.2, Figure 4).

use mobidx_geom::{ConvexPolygon, HalfPlane};
use mobidx_workload::{MorQuery1D, Motion1D};

/// The global speed bounds of the "moving" objects (§3): every object's
/// speed magnitude lies in `[v_min, v_max]` with `v_min > 0`.
#[derive(Debug, Clone, Copy)]
pub struct SpeedBand {
    /// Minimum speed magnitude.
    pub v_min: f64,
    /// Maximum speed magnitude.
    pub v_max: f64,
}

impl SpeedBand {
    /// Creates a band.
    ///
    /// # Panics
    /// Panics unless `0 < v_min < v_max`.
    #[must_use]
    pub fn new(v_min: f64, v_max: f64) -> Self {
        assert!(
            0.0 < v_min && v_min < v_max,
            "speed band must satisfy 0 < v_min < v_max"
        );
        Self { v_min, v_max }
    }

    /// The paper's experimental band: 0.16–1.66 miles/minute.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(0.16, 1.66)
    }

    /// The rotation period `T_period = y_max / v_min` (§3.2): every
    /// object is guaranteed to have updated within the last `T_period`
    /// (it must at least reflect at a border), which bounds the dual
    /// intercepts of a rebased index generation.
    #[must_use]
    pub fn rotation_period(&self, y_max: f64) -> f64 {
        y_max / self.v_min
    }
}

/// The Hough-X dual point of a motion, with the intercept computed at
/// `t_base` (the owning index generation's epoch): `(v, y(t_base))`.
///
/// With `t_base = 0` this is the textbook `(v, a)`; a later `t_base`
/// implements the intercept-bounding rebasing of §3.2.
#[must_use]
pub fn hough_x_point(m: &Motion1D, t_base: f64) -> [f64; 2] {
    [m.v, m.position_at(t_base)]
}

/// The Hough-Y `b`-coordinate of a motion observed at the line
/// `y = y_r`: the time the (extrapolated) trajectory crosses `y_r`.
///
/// # Panics
/// Panics (debug builds) on zero velocity — "moving" objects have
/// `|v| ≥ v_min > 0`.
#[must_use]
pub fn hough_y_b(m: &Motion1D, y_r: f64) -> f64 {
    debug_assert!(m.v != 0.0, "Hough-Y undefined for static objects");
    m.t0 + (y_r - m.y0) / m.v
}

/// Proposition 1: the 1-D MOR query as convex polygons in the Hough-X
/// plane `(x = v, y = intercept-at-t_base)`, one polygon per velocity
/// sign. Query times are shifted by the generation's `t_base`.
///
/// Positive-velocity polygon (`v > 0`):
/// `v ≥ v_min ∧ v ≤ v_max ∧ a + t2·v ≥ y1 ∧ a + t1·v ≤ y2`;
/// the negative one mirrors it.
#[must_use]
pub fn hough_x_query(
    q: &MorQuery1D,
    band: &SpeedBand,
    t_base: f64,
) -> (ConvexPolygon, ConvexPolygon) {
    let t1 = q.t1 - t_base;
    let t2 = q.t2 - t_base;
    let positive = ConvexPolygon::new(vec![
        HalfPlane::x_ge(band.v_min),
        HalfPlane::x_le(band.v_max),
        // a + t2·v >= y1  ⇔  −t2·v − a <= −y1
        HalfPlane::new(-t2, -1.0, -q.y1),
        // a + t1·v <= y2
        HalfPlane::new(t1, 1.0, q.y2),
    ]);
    let negative = ConvexPolygon::new(vec![
        HalfPlane::x_le(-band.v_min),
        HalfPlane::x_ge(-band.v_max),
        // a + t1·v >= y1
        HalfPlane::new(-t1, -1.0, -q.y1),
        // a + t2·v <= y2
        HalfPlane::new(t2, 1.0, q.y2),
    ]);
    (positive, negative)
}

/// The conservative Hough-Y `b`-interval for one velocity sign
/// (§3.5.2): every object of that sign matching the query has
/// `b ∈ [lo, hi]`; the exact answer is recovered by per-object speed
/// filtering, as the paper's §5 does.
///
/// Derivation: an object crossing `y_r` at time `b` with velocity `v` is
/// inside `[y1, y2]` at some instant of `[t1, t2]` iff
/// `b ≥ t1 − (y2 − y_r)/v` and `b ≤ t2 − (y1 − y_r)/v`; the envelope
/// over the speed band gives the interval.
#[must_use]
pub fn hough_y_interval(q: &MorQuery1D, band: &SpeedBand, y_r: f64, positive: bool) -> (f64, f64) {
    let (vlo, vhi) = if positive {
        (band.v_min, band.v_max)
    } else {
        (-band.v_max, -band.v_min)
    };
    // For velocity v the object resides in [y1, y2] during
    // [b + min(d1, d2)/1, b + max(d1, d2)] with d_i = (y_i − y_r)/v; it
    // matches iff b ≥ t1 − max(d1, d2) and b ≤ t2 − min(d1, d2). The
    // envelope over the band is attained at the band endpoints.
    let ds = [
        (q.y1 - y_r) / vlo,
        (q.y2 - y_r) / vlo,
        (q.y1 - y_r) / vhi,
        (q.y2 - y_r) / vhi,
    ];
    let d_max = ds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let d_min = ds.iter().copied().fold(f64::INFINITY, f64::min);
    (q.t1 - d_max, q.t2 - d_min)
}

/// The query-enlargement area `E` of equation (1) in §3.5.2 — the
/// measure of extra I/O incurred by approximating the Hough-Y wedge with
/// a rectangle when observing from `y_r`. The paper routes each query to
/// the observation index minimizing `E`, which reduces to minimizing
/// `|y2q − y_r| + |y1q − y_r|`.
#[must_use]
pub fn enlargement_e(q: &MorQuery1D, band: &SpeedBand, y_r: f64) -> f64 {
    let factor = (band.v_max - band.v_min) / (band.v_min * band.v_max);
    0.5 * factor * factor * ((q.y2 - y_r).abs() + (q.y1 - y_r).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_geom::QueryRegion;

    fn band() -> SpeedBand {
        SpeedBand::paper()
    }

    /// Proposition 1 ⇔ primal semantics: a dual point is inside the
    /// polygon of its sign iff the motion matches the query.
    #[test]
    fn proposition1_equivalence() {
        let q = MorQuery1D {
            y1: 300.0,
            y2: 450.0,
            t1: 100.0,
            t2: 160.0,
        };
        let (pos, neg) = hough_x_query(&q, &band(), 0.0);
        // A deterministic grid of motions spanning the space.
        let mut checked = 0;
        for iy in 0..40 {
            for iv in 0..40 {
                let y0 = f64::from(iy) * 25.0;
                let speed = 0.16 + f64::from(iv) * (1.5 / 39.0);
                for v in [speed, -speed] {
                    let m = Motion1D {
                        id: 0,
                        t0: 0.0,
                        y0,
                        v,
                    };
                    let p = hough_x_point(&m, 0.0);
                    let in_dual = if v > 0.0 {
                        QueryRegion::<2>::contains_point(&pos, &p)
                    } else {
                        QueryRegion::<2>::contains_point(&neg, &p)
                    };
                    assert_eq!(in_dual, q.matches(&m), "mismatch at y0={y0} v={v}");
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, 3200);
    }

    #[test]
    fn proposition1_with_rebased_intercept() {
        let q = MorQuery1D {
            y1: 100.0,
            y2: 200.0,
            t1: 5000.0,
            t2: 5050.0,
        };
        let t_base = 4000.0;
        let (pos, _neg) = hough_x_query(&q, &band(), t_base);
        let m = Motion1D {
            id: 0,
            t0: 4900.0,
            y0: 120.0,
            v: 0.5,
        };
        let p = hough_x_point(&m, t_base);
        assert_eq!(QueryRegion::<2>::contains_point(&pos, &p), q.matches(&m));
    }

    #[test]
    fn hough_y_b_is_crossing_time() {
        let m = Motion1D {
            id: 0,
            t0: 10.0,
            y0: 100.0,
            v: 2.0,
        };
        let b = hough_y_b(&m, 150.0);
        assert!((m.position_at(b) - 150.0).abs() < 1e-9);
        // Negative velocity crosses downward.
        let m2 = Motion1D {
            id: 0,
            t0: 0.0,
            y0: 100.0,
            v: -1.0,
        };
        let b2 = hough_y_b(&m2, 50.0);
        assert!((b2 - 50.0).abs() < 1e-9);
    }

    /// The conservative b-interval never loses an answer (it may include
    /// false positives — that is what the speed filter removes).
    #[test]
    fn hough_y_interval_is_conservative() {
        let q = MorQuery1D {
            y1: 420.0,
            y2: 470.0,
            t1: 50.0,
            t2: 80.0,
        };
        let y_r = 250.0;
        for iy in 0..50 {
            for iv in 0..20 {
                let y0 = f64::from(iy) * 20.0;
                let speed = 0.16 + f64::from(iv) * (1.5 / 19.0);
                for v in [speed, -speed] {
                    let m = Motion1D {
                        id: 0,
                        t0: 0.0,
                        y0,
                        v,
                    };
                    if q.matches(&m) {
                        let (lo, hi) = hough_y_interval(&q, &band(), y_r, v > 0.0);
                        let b = hough_y_b(&m, y_r);
                        assert!(
                            lo - 1e-9 <= b && b <= hi + 1e-9,
                            "matching object outside b-envelope: y0={y0} v={v} b={b} [{lo},{hi}]"
                        );
                    }
                }
            }
        }
    }

    /// E is minimized by the observation line closest to the query range
    /// (equation 1).
    #[test]
    fn enlargement_prefers_nearby_observation() {
        let q = MorQuery1D {
            y1: 480.0,
            y2: 520.0,
            t1: 0.0,
            t2: 10.0,
        };
        let e_near = enlargement_e(&q, &band(), 500.0);
        let e_far = enlargement_e(&q, &band(), 0.0);
        assert!(e_near < e_far);
        // Inside the range, E equals the minimum possible (range length
        // times the factor).
        let e_mid = enlargement_e(&q, &band(), 500.0);
        let e_edge = enlargement_e(&q, &band(), 480.0);
        assert!(
            (e_mid - e_edge).abs() < 1e-9,
            "any y_r within the range ties"
        );
    }

    #[test]
    #[should_panic(expected = "0 < v_min < v_max")]
    fn bad_band_panics() {
        let _ = SpeedBand::new(0.0, 1.0);
    }

    #[test]
    fn rotation_period_arithmetic() {
        let b = SpeedBand::paper();
        assert!((b.rotation_period(1000.0) - 6250.0).abs() < 1e-9);
    }
}
