//! # mobidx-core — indexing mobile objects (Kollios, Gunopulos, Tsotras; PODS '99)
//!
//! The paper's contribution: answer **MOR queries** — "report every
//! mobile object inside a spatial range at some instant of a future time
//! window `[t1q, t2q]`" — over objects whose location is a linear
//! function of time, in the external-memory model.
//!
//! This crate assembles the substrates (`mobidx-pager`, `-geom`,
//! `-bptree`, `-rstar`, `-kdtree`, `-interval`, `-ptree`, `-persist`)
//! into the paper's methods:
//!
//! | Module | Paper | Method |
//! |---|---|---|
//! | [`dual`] | §3.2 | Hough-X / Hough-Y dual transforms, Proposition 1 query regions, the approximation-error formula `E` |
//! | [`method::seg_rtree`] | §3.1, §5 | baseline: trajectory segments as MBRs in an R\*-tree |
//! | [`method::dual_kd`] | §3.5.1 | Hough-X dual points in a paged kd-tree, simplex search, two-generation index rotation every `T_period = y_max / v_min` |
//! | [`method::dual_bplus`] | §3.5.2 | the practical method: `c` observation B+-trees at equidistant `y_r`, query routed to the `E`-minimizing index, exact speed filtering, optional subterrain interval indices |
//! | [`method::ptree`] | §3.4 | dual points in the dynamic external partition tree (the "(almost) optimal" solution) |
//! | [`method::mor1`] | §3.6 | the logarithmic-time structure for bounded-horizon time-slice queries (crossings + persistent list B-tree + staggered rebuild) |
//! | [`method::routes`] | §4.1 | the 1.5-dimensional problem: route network in a SAM, per-route 1-D indices on arc length |
//! | [`method::dual2d`] | §4.2 | the full 2-D problem: 4-D duals in kd/partition trees, and the axis-decomposition method |
//! | [`method::join`] | §7 (future work) | within-distance joins among mobile objects (plane sweep + exact linear-motion distance) |
//! | [`method::vp_dual`] | §3.5.2 + velocity partitioning | per-speed-band dual-B+ sub-indexes with analytically optimized band boundaries and incremental online repartitioning |
//! | [`db`] | §2 | [`MotionDb`]: the motion-database facade — update-by-id over any index |
//!
//! Every method implements [`Index1D`] (or its 2-D counterpart), is
//! exercised against brute-force oracles in the test suite, and reports
//! I/O through [`IoTotals`] — the quantity the paper's Figures 6–9 plot.

pub mod db;
pub mod dual;
pub mod method;

pub use db::{sort_by_dual_locality, BatchError, DbOp, DuplicateId, MotionDb, UnknownId};
pub use dual::{hough_x_point, hough_x_query, hough_y_b, SpeedBand};
pub use method::vp_dual::{
    analytic_edges, geometric_edges, optimize_boundaries, VpDualConfig, VpDualIndex,
};
pub use method::{
    BandIo, FrozenIndex1D, FrozenReadStats, Index1D, Index2D, IndexStats, IoTotals, QueryOutput,
    QueryRequest,
};

// Re-export the vocabulary types so downstream users need only this crate.
pub use mobidx_workload::{MorQuery1D, MorQuery2D, Motion1D, Motion2D};
