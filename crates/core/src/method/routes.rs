//! The 1.5-dimensional problem (§4.1): objects on a network of 1-D
//! routes.
//!
//! Routes (polylines) are indexed by a standard SAM — an R\*-tree over
//! their segment MBRs. Objects move 1-dimensionally along a route's arc
//! length and are indexed per route with the practical method of §3.5.2.
//! A 2-D MOR query is answered by (1) probing the SAM with the query
//! rectangle, (2) clipping each candidate route to the rectangle, which
//! yields arc-length intervals, and (3) issuing one 1-D MOR query per
//! interval on that route's index.

use crate::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use crate::method::{finish_ids, Index1D, IndexStats, IoTotals};
use mobidx_geom::Rect2;
use mobidx_rstar::{RStarConfig, RStarTree};
use mobidx_workload::{MorQuery1D, Motion1D, Route, RouteObject};

/// Configuration of the route-network index.
#[derive(Debug, Clone, Copy)]
pub struct RouteIndexConfig {
    /// SAM (R\*-tree) parameters.
    pub sam: RStarConfig,
    /// Per-route 1-D index parameters; the terrain of route `r` is its
    /// arc length (set per route automatically).
    pub per_route: DualBPlusConfig,
}

impl Default for RouteIndexConfig {
    fn default() -> Self {
        Self {
            sam: RStarConfig::default(),
            per_route: DualBPlusConfig {
                c: 2,
                ..DualBPlusConfig::default()
            },
        }
    }
}

/// The §4.1 index.
#[derive(Debug)]
pub struct RouteMorIndex {
    routes: Vec<Route>,
    sam: RStarTree<(u32, u32)>,
    per_route: Vec<DualBPlusIndex>,
}

impl RouteMorIndex {
    /// Builds the SAM over the route network and one empty 1-D index per
    /// route.
    #[must_use]
    pub fn new(cfg: &RouteIndexConfig, routes: Vec<Route>) -> Self {
        let mut sam = RStarTree::new(cfg.sam);
        for route in &routes {
            for (seg_idx, (_, seg)) in route.segments().enumerate() {
                sam.insert(
                    seg.mbr(),
                    (route.id, u32::try_from(seg_idx).expect("segment count")),
                );
            }
        }
        let per_route = routes
            .iter()
            .map(|r| {
                DualBPlusIndex::new(DualBPlusConfig {
                    terrain: r.length(),
                    ..cfg.per_route
                })
            })
            .collect();
        Self {
            routes,
            sam,
            per_route,
        }
    }

    /// The route set.
    #[must_use]
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    fn arc_motion(o: &RouteObject) -> Motion1D {
        Motion1D {
            id: o.id,
            t0: o.t0,
            y0: o.s0,
            v: o.v,
        }
    }

    /// Inserts a route object (1-D record on its route's index).
    pub fn insert(&mut self, o: &RouteObject) {
        self.per_route[o.route as usize].insert(&Self::arc_motion(o));
    }

    /// Removes a route object. Returns whether it was present.
    pub fn remove(&mut self, o: &RouteObject) -> bool {
        self.per_route[o.route as usize].remove(&Self::arc_motion(o))
    }

    /// The 2-D MOR query over the network: objects inside `rect` at some
    /// instant of `[t1, t2]`, by SAM probe + per-route decomposition.
    pub fn query(&mut self, rect: &Rect2, t1: f64, t2: f64) -> Vec<u64> {
        // (1) Which routes does the rectangle touch?
        let mut route_hit = vec![false; self.routes.len()];
        self.sam.search_with(rect, |_, (rid, _)| {
            route_hit[rid as usize] = true;
        });
        // (2)+(3) Clip and run 1-D queries.
        let mut ids = Vec::new();
        let mut route_ids = Vec::new();
        for (r, hit) in route_hit.iter().enumerate() {
            if !hit {
                continue;
            }
            for (s_lo, s_hi) in self.routes[r].clip_rect(rect) {
                let q = MorQuery1D {
                    y1: s_lo,
                    y2: s_hi,
                    t1,
                    t2,
                };
                self.per_route[r].search(&q, &mut route_ids);
                ids.extend_from_slice(&route_ids);
            }
        }
        finish_ids(ids)
    }

    /// Flushes and clears every buffer pool.
    pub fn clear_buffers(&mut self) {
        self.sam.clear_buffer();
        for idx in &mut self.per_route {
            idx.clear_buffers();
        }
    }

    /// Aggregated I/O across the SAM and every per-route index.
    #[must_use]
    pub fn io_totals(&self) -> IoTotals {
        let mut t = IoTotals::from_stats(self.sam.stats());
        for idx in &self.per_route {
            t = t.merge(idx.io_totals());
        }
        t
    }

    /// Resets the read/write counters.
    pub fn reset_io(&self) {
        self.sam.stats().reset_io();
        for idx in &self.per_route {
            idx.reset_io();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_bptree::TreeConfig;
    use mobidx_workload::{RouteNetwork, RouteWorkloadConfig};

    fn small_cfg() -> RouteIndexConfig {
        RouteIndexConfig {
            sam: RStarConfig::with_max(16),
            per_route: DualBPlusConfig {
                c: 2,
                tree: TreeConfig {
                    leaf_cap: 16,
                    branch_cap: 16,
                    buffer_pages: 4,
                },
                ..DualBPlusConfig::default()
            },
        }
    }

    #[test]
    fn matches_network_brute_force() {
        let mut net = RouteNetwork::generate(RouteWorkloadConfig {
            routes: 8,
            segments_per_route: 5,
            n_objects: 400,
            seed: 17,
            ..RouteWorkloadConfig::default()
        });
        let mut idx = RouteMorIndex::new(&small_cfg(), net.routes.clone());
        for o in &net.objects {
            idx.insert(o);
        }
        // Run a while, keeping the index in sync.
        for _ in 0..20 {
            for (old, new) in net.step(10) {
                assert!(idx.remove(&old), "stale {old:?}");
                idx.insert(&new);
            }
        }
        // Random rectangles.
        let probes = [
            (100.0, 100.0, 400.0, 400.0),
            (0.0, 0.0, 1000.0, 1000.0),
            (600.0, 200.0, 700.0, 900.0),
            (50.0, 800.0, 120.0, 860.0),
        ];
        let t1 = net.now;
        for (x1, y1, x2, y2) in probes {
            let rect = Rect2::from_bounds(x1, y1, x2, y2);
            for dt in [0.0, 15.0, 45.0] {
                let got = idx.query(&rect, t1, t1 + dt);
                let want = net.brute_force(&rect, t1, t1 + dt);
                assert_eq!(got, want, "rect=({x1},{y1},{x2},{y2}) dt={dt}");
            }
        }
    }

    #[test]
    fn query_prunes_far_routes() {
        let net = RouteNetwork::generate(RouteWorkloadConfig {
            routes: 30,
            n_objects: 3000,
            seed: 29,
            ..RouteWorkloadConfig::default()
        });
        let mut idx = RouteMorIndex::new(&small_cfg(), net.routes.clone());
        for o in &net.objects {
            idx.insert(o);
        }
        idx.clear_buffers();
        idx.reset_io();
        let rect = Rect2::from_bounds(10.0, 10.0, 60.0, 60.0);
        let _ = idx.query(&rect, 0.0, 5.0);
        let cost = idx.io_totals().reads;
        let pages = idx.io_totals().pages;
        assert!(
            cost < pages / 2,
            "tiny rectangle query read {cost} of {pages} pages"
        );
    }
}
