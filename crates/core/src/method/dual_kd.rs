//! The kd-tree point-access method (§3.5.1).
//!
//! Objects become Hough-X dual points `(v, intercept)`; the MOR query
//! becomes Proposition 1's pair of convex polygons, answered with the
//! linear-constraint search of Goldstein et al. over a paged kd-tree
//! (the paper's hBΠ/LSD family — Figure 3's argument is that kd splits
//! on *both* dual dimensions suit the skewed dual distribution better
//! than R-tree clustering). Intercepts are kept bounded with the
//! two-generation rotation of §3.2.

use crate::dual::SpeedBand;
use crate::method::rotating::{DualPlaneStore, RotatingDual};
use crate::method::{Index1D, IndexStats, IoTotals};
use mobidx_geom::ConvexPolygon;
use mobidx_kdtree::{KdConfig, KdTree};
use mobidx_workload::{MorQuery1D, Motion1D};

/// Configuration of the kd method.
#[derive(Debug, Clone, Copy)]
pub struct DualKdConfig {
    /// Terrain length (`y_max`).
    pub terrain: f64,
    /// The global speed band.
    pub band: SpeedBand,
    /// Paged kd-tree parameters.
    pub kd: KdConfig,
}

impl Default for DualKdConfig {
    fn default() -> Self {
        Self {
            terrain: 1000.0,
            band: SpeedBand::paper(),
            kd: KdConfig::default(),
        }
    }
}

/// One dual-plane generation backed by a paged kd-tree.
#[derive(Debug)]
struct KdStore {
    tree: KdTree<2, u64>,
}

impl DualPlaneStore for KdStore {
    fn insert_point(&mut self, p: [f64; 2], id: u64) {
        self.tree.insert(p, id);
    }

    fn remove_point(&mut self, p: [f64; 2], id: u64) -> bool {
        self.tree.remove(p, id)
    }

    fn query_polygons(&mut self, pos: &ConvexPolygon, neg: &ConvexPolygon, out: &mut Vec<u64>) {
        self.tree.query(pos, |_, id| out.push(id));
        self.tree.query(neg, |_, id| out.push(id));
    }

    fn drain_all(&mut self) -> Vec<([f64; 2], u64)> {
        let all = self.tree.collect_all();
        for &(p, id) in &all {
            let removed = self.tree.remove(p, id);
            debug_assert!(removed);
        }
        all
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn io_totals(&self) -> IoTotals {
        IoTotals::from_stats(self.tree.stats())
    }

    fn reset_io(&self) {
        self.tree.stats().reset_io();
    }

    fn clear_buffer(&mut self) {
        self.tree.clear_buffer();
    }
}

/// The §3.5.1 method.
///
/// ```
/// use mobidx_core::method::dual_kd::{DualKdConfig, DualKdIndex};
/// use mobidx_core::{Index1D, Motion1D, MorQuery1D, QueryRequest};
///
/// let mut index = DualKdIndex::new(DualKdConfig::default());
/// index.insert(&Motion1D { id: 7, t0: 0.0, y0: 500.0, v: 1.0 });
/// index.insert(&Motion1D { id: 8, t0: 0.0, y0: 400.0, v: 0.5 });
///
/// let q = MorQuery1D { y1: 505.0, y2: 515.0, t1: 5.0, t2: 10.0 };
/// assert_eq!(index.query(&QueryRequest::new(&q)), vec![7]);
///
/// // §7 future work: who will be nearest to mile 430 at t = 50?
/// let nn = index.nearest(430.0, 50.0, 1);
/// assert_eq!(nn[0].0, 8); // object 8 is at 425 then, object 7 at 550
/// ```
#[derive(Debug)]
pub struct DualKdIndex {
    rot: RotatingDual<KdStore>,
}

impl DualKdIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new(cfg: DualKdConfig) -> Self {
        let make = || KdStore {
            tree: KdTree::new(cfg.kd),
        };
        Self {
            rot: RotatingDual::new(make(), make(), cfg.band, cfg.terrain),
        }
    }

    /// Future k-nearest-neighbor query — the paper's §7 future work:
    /// "Other interesting queries are near-neighbor queries."
    ///
    /// Reports the `k` objects predicted closest to location `y` at the
    /// future instant `t`, as `(id, predicted distance)` sorted by
    /// distance. In the dual plane the predicted distance
    /// `|a + (t − t_base)·v − y|` is an affine score, so the kd-tree's
    /// best-first search answers this with exact cell bounds and no
    /// false dismissals.
    pub fn nearest(&mut self, y: f64, t: f64, k: usize) -> Vec<(u64, f64)> {
        let period = self.rot.period();
        let mut all: Vec<(u64, f64)> = Vec::new();
        for (epoch, store) in self.rot.generations_mut() {
            #[allow(clippy::cast_precision_loss)]
            let t_base = epoch as f64 * period;
            let scorer = mobidx_kdtree::AffineDistance {
                w: [t - t_base, 1.0],
                b: -y,
            };
            all.extend(
                store
                    .tree
                    .nearest(&scorer, k)
                    .into_iter()
                    .map(|(_, id, score)| (id, score)),
            );
        }
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

impl IndexStats for DualKdIndex {
    fn name(&self) -> String {
        "dual-kd".to_owned()
    }

    fn clear_buffers(&mut self) {
        self.rot.clear_buffers();
    }

    fn io_totals(&self) -> IoTotals {
        self.rot.io_totals()
    }

    fn reset_io(&self) {
        self.rot.reset_io();
    }

    fn last_candidates(&self) -> u64 {
        self.rot.last_candidates()
    }

    fn store_io(&self) -> Vec<(String, IoTotals)> {
        self.rot.store_io()
    }

    fn set_backends(&mut self, make: &mut dyn FnMut() -> Box<dyn mobidx_pager::Backend>) {
        for (_, store) in self.rot.generations_mut() {
            drop(store.tree.set_backend(make()));
        }
    }
}

impl Index1D for DualKdIndex {
    fn insert(&mut self, m: &Motion1D) {
        self.rot.insert(m);
    }

    fn remove(&mut self, m: &Motion1D) -> bool {
        self.rot.remove(m)
    }

    fn search(&mut self, q: &MorQuery1D, out: &mut Vec<u64>) {
        out.clear();
        out.append(&mut self.rot.query(q));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_workload::{brute_force_1d, Simulator1D, WorkloadConfig};

    fn small_index() -> DualKdIndex {
        DualKdIndex::new(DualKdConfig {
            kd: KdConfig::small(16, 8),
            ..DualKdConfig::default()
        })
    }

    #[test]
    fn matches_brute_force_under_updates() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 600,
            updates_per_instant: 30,
            seed: 11,
            ..WorkloadConfig::default()
        });
        let mut idx = small_index();
        for m in sim.objects() {
            idx.insert(m);
        }
        for step in 0..40 {
            for u in sim.step() {
                assert!(idx.remove(&u.old), "step {step}: stale {:?}", u.old);
                idx.insert(&u.new);
            }
            if step % 8 == 0 {
                for _ in 0..10 {
                    let q = sim.gen_query(150.0, 60.0);
                    let got = idx.query(&crate::method::QueryRequest::new(&q));
                    let want = brute_force_1d(sim.objects(), &q);
                    assert_eq!(got, want, "step {step} query {q:?}");
                }
            }
        }
    }

    #[test]
    fn small_queries_match_too() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 800,
            updates_per_instant: 10,
            seed: 23,
            ..WorkloadConfig::default()
        });
        let mut idx = small_index();
        for m in sim.objects() {
            idx.insert(m);
        }
        for _ in 0..5 {
            for u in sim.step() {
                idx.remove(&u.old);
                idx.insert(&u.new);
            }
        }
        for _ in 0..30 {
            let q = sim.gen_query(10.0, 20.0);
            assert_eq!(
                idx.query(&crate::method::QueryRequest::new(&q)),
                brute_force_1d(sim.objects(), &q)
            );
        }
    }

    #[test]
    fn rotation_across_periods() {
        // Tiny terrain + high v_min → short rotation period; drive time
        // across several periods and verify correctness throughout.
        let band = SpeedBand::new(1.0, 2.0);
        let mut idx = DualKdIndex::new(DualKdConfig {
            terrain: 100.0,
            band,
            kd: KdConfig::small(8, 4),
        });
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 200,
            terrain: 100.0,
            v_min: 1.0,
            v_max: 2.0,
            updates_per_instant: 5,
            seed: 3,
        });
        for m in sim.objects() {
            idx.insert(m);
        }
        // Period = 100/1 = 100 instants; run 350.
        for step in 0..350 {
            for u in sim.step() {
                assert!(idx.remove(&u.old), "step {step}");
                idx.insert(&u.new);
            }
            if step % 50 == 0 {
                let q = sim.gen_query(30.0, 10.0);
                assert_eq!(
                    idx.query(&crate::method::QueryRequest::new(&q)),
                    brute_force_1d(sim.objects(), &q)
                );
            }
        }
    }

    #[test]
    fn nearest_matches_naive() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 500,
            seed: 77,
            ..WorkloadConfig::default()
        });
        for _ in 0..10 {
            let _ = sim.step();
        }
        let mut idx = small_index();
        for m in sim.objects() {
            idx.insert(m);
        }
        let (y, t) = (512.0, sim.now() + 12.5);
        for k in [1usize, 3, 10] {
            let got = idx.nearest(y, t, k);
            assert_eq!(got.len(), k);
            assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
            let mut naive: Vec<(u64, f64)> = sim
                .objects()
                .iter()
                .map(|m| (m.id, (m.position_at(t) - y).abs()))
                .collect();
            naive.sort_by(|a, b| a.1.total_cmp(&b.1));
            for (i, &(_, d)) in got.iter().enumerate() {
                assert!(
                    (d - naive[i].1).abs() < 1e-9,
                    "k={k} rank {i}: {d} vs {}",
                    naive[i].1
                );
            }
        }
    }

    #[test]
    fn io_counters_aggregate() {
        let mut idx = small_index();
        let m = Motion1D {
            id: 1,
            t0: 0.0,
            y0: 500.0,
            v: 1.0,
        };
        idx.insert(&m);
        idx.clear_buffers();
        assert!(idx.io_totals().pages >= 1);
        idx.reset_io();
        assert_eq!(idx.io_totals().reads, 0);
    }
}
