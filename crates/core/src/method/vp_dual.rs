//! §5-style velocity partitioning over the dual-B+ method: a family of
//! per-band [`DualBPlusIndex`] sub-indexes behind one [`Index1D`]
//! facade, with analytically optimized band boundaries and an
//! incremental band-to-band repartitioning protocol.
//!
//! # Why partition by speed
//!
//! The Hough-Y query window of the approximation method is conservative
//! over a whole speed band: for an observation element `y_r` the
//! enlargement is `E = ½·f²·(|y2−y_r| + |y1−y_r|)` with
//! `f = (v_max−v_min)/(v_min·v_max)` ([`enlargement_e`]). Every scanned
//! entry outside the exact answer is a false hit, and §3.5.2 charges
//! those directly to query I/O. Substituting `u = 1/v` turns the
//! enlargement factor into a plain width: `f = 1/v_min − 1/v_max = Δu`.
//! Splitting the population into `k` bands therefore replaces one
//! global `Δu²` penalty with per-band `Δu_b²` penalties weighted by how
//! many records actually live in each band — the cost model of the
//! speed/velocity-partitioning papers ("Speed Partitioning for Indexing
//! Moving Objects", "Boosting Moving Object Indexing through Velocity
//! Partitioning") specialized to the dual transform:
//!
//! ```text
//! C(edges) = Σ_b  w_b · Δu_b²  +  κ·k
//! ```
//!
//! where `w_b` is the fraction of records in band `b` (from the
//! observed velocity histogram) and `κ` ([`VpDualConfig::band_cost`])
//! charges each extra band its fixed tree-descent overhead.
//!
//! # The boundary optimizer
//!
//! Minimizing `Σ w_b Δu_b²` is a one-dimensional quantizer design in
//! `u`-space, so the closed form is classic companding (Panter–Dite /
//! Lloyd–Max): at high resolution the optimal band widths satisfy
//! `Δu(u) ∝ g(u)^{-1/3}` for velocity density `g(u)`, i.e. the cuts sit
//! at **equal quantiles of `∫ g(u)^{1/3} du`** ([`analytic_edges`]).
//! Real histograms are discrete and the `κ·k` term makes the band count
//! itself a decision, so [`optimize_boundaries`] sharpens the analytic
//! seed with an exact dynamic program over a log-spaced candidate grid,
//! choosing both the cut positions and the number of bands `k ≤ k_max`.
//! With no observations yet it falls back to equal-ratio
//! ([`geometric_edges`]) cuts, which equalize `Δu_b/u` — the right
//! prior when nothing is known beyond the global band.
//!
//! # Incremental repartitioning
//!
//! The facade migrates between layouts without a stop-the-world
//! rebuild, relying on one structural fact: a sub-index's [`SpeedBand`]
//! is a *query-side* parameter ([`DualBPlusIndex::set_band`]) — stored
//! `b`-coordinates never depend on it, so a band can be widened or
//! narrowed in O(1) while records stay put.
//!
//! 1. [`begin_repartition`](VpDualIndex::begin_repartition) widens each
//!    sub-index's band to cover its old **and** new bands, so queries
//!    stay exact no matter which side of the move a record is on, and
//!    installs the new edges as the *pending* routing table — incoming
//!    inserts land in their final band immediately.
//! 2. [`migrate_chunk`](VpDualIndex::migrate_chunk) moves a batch of
//!    movers: each is removed from its old-layout band (skipped if
//!    absent — it was concurrently updated and already routed) and
//!    re-inserted, grouped and locality-sorted, through the batched
//!    update path. Chunks are sized by the caller, so a serving shard
//!    interleaves migration with live traffic.
//! 3. [`finish_repartition`](VpDualIndex::finish_repartition) narrows
//!    every band to its exact new extent and publishes the new edges.
//!
//! Because pending edges route *all* concurrent writes from step 1
//! onward, a caller that snapshots the record population **after**
//! `begin_repartition` returns needs no locks: records updated after
//! the snapshot are already in their target band, and the stale
//! snapshot entries simply fail their removal and are skipped.

use crate::db::sort_by_dual_locality;
use crate::dual::SpeedBand;
use crate::method::{BandIo, FrozenIndex1D, FrozenReadStats, Index1D, IndexStats, IoTotals};
use mobidx_bptree::TreeConfig;
use mobidx_workload::{MorQuery1D, Motion1D};

use super::dual_bplus::{DualBPlusConfig, DualBPlusIndex};

/// Resolution of the candidate-cut grid the optimizer works over: the
/// global band is split into this many log-spaced cells, and every band
/// edge the optimizer can emit is one of the cell boundaries.
const GRID_CELLS: usize = 48;

/// Relative padding applied to each sub-index band so records whose
/// speed sits exactly on a cut are covered by the band they route to
/// (mirrors the serving tier's shard-band padding).
const EDGE_PAD: f64 = 1e-6;

/// Configuration for [`VpDualIndex`].
#[derive(Debug, Clone, Copy)]
pub struct VpDualConfig {
    /// Maximum number of speed bands (`k_max`). The optimizer may pick
    /// fewer when the fixed per-band probe cost outweighs the
    /// enlargement savings.
    pub bands: usize,
    /// Observation indexes (`c`) per band's dual-B+ sub-index. Bands
    /// answer with tight windows, so they need fewer observation
    /// elements than a global dual-B+ — updates get cheaper too.
    pub c: usize,
    /// Terrain length (the paper's 1000-mile highway).
    pub terrain: f64,
    /// Global speed band; every partition spans exactly this range.
    pub band: SpeedBand,
    /// Page geometry for every sub-index's B+-trees.
    pub tree: TreeConfig,
    /// Fixed cost `κ` charged per band in the boundary optimizer's
    /// objective `Σ w_b·Δu_b² + κ·k` — models the extra root-to-leaf
    /// descents every additional band costs each query. Normalized
    /// against `Σ w_b = 1`.
    pub band_cost: f64,
    /// Keep every sub-tree's root page pinned
    /// ([`DualBPlusIndex::pin_roots`]): `k·(2c + 1)` pages of dedicated
    /// memory so each of the facade's fan-out descents costs
    /// `height - 1` I/Os instead of `height`. This is what makes many
    /// small per-band trees competitive with one flat index at the
    /// paper's scales. Off in the fault-injection harness, whose crash
    /// budgets count physical I/Os per store.
    pub pin_roots: bool,
}

impl Default for VpDualConfig {
    fn default() -> Self {
        VpDualConfig {
            bands: 3,
            c: 3,
            terrain: 1000.0,
            band: SpeedBand::paper(),
            tree: TreeConfig::default(),
            band_cost: 0.05,
            pin_roots: true,
        }
    }
}

/// Cumulative per-band query counters (candidates scanned and exact
/// results contributed), reset whenever the band layout changes.
#[derive(Debug, Clone, Copy, Default)]
struct BandCounters {
    candidates: u64,
    results: u64,
}

/// The velocity-partitioned dual-B+ index (see module docs).
///
/// Records route to bands by speed *magnitude* (`|v|` — each dual-B+
/// sub-index already splits by sign internally), except static records
/// (`v == 0`), which always live in band 0's static tree regardless of
/// the band layout.
pub struct VpDualIndex {
    cfg: VpDualConfig,
    /// Current band edges: `edges[b]..edges[b+1]` is band `b`'s speed
    /// range. `edges[0] == band.v_min`, `edges[k] == band.v_max`.
    edges: Vec<f64>,
    /// New edges installed by `begin_repartition`, routing all writes
    /// until `finish_repartition` publishes them.
    pending: Option<Vec<f64>>,
    subs: Vec<DualBPlusIndex>,
    /// Records resident per sub-index (statics count toward band 0).
    residents: Vec<u64>,
    band_query: Vec<BandCounters>,
    last_candidates: u64,
    repartitions: u64,
    moved_total: u64,
    scratch: Vec<u64>,
}

/// Equal-ratio band edges over `band`: `k` bands whose edges form a
/// geometric progression. The data-free prior — it equalizes the
/// *relative* enlargement `Δu_b·v` across bands.
///
/// # Panics
/// If `k == 0`.
#[must_use]
pub fn geometric_edges(band: SpeedBand, k: usize) -> Vec<f64> {
    assert!(k > 0, "at least one band");
    #[allow(clippy::cast_precision_loss)]
    let rho = (band.v_max / band.v_min).powf(1.0 / k as f64);
    let mut edges: Vec<f64> = Vec::with_capacity(k + 1);
    edges.push(band.v_min);
    for _ in 1..k {
        edges.push(edges.last().expect("non-empty") * rho);
    }
    edges.push(band.v_max);
    edges
}

/// Log-spaced candidate cut positions over `band`, with exact
/// endpoints.
fn grid_edges(band: SpeedBand, cells: usize) -> Vec<f64> {
    let rho = band.v_max / band.v_min;
    #[allow(clippy::cast_precision_loss)]
    let mut edges: Vec<f64> = (0..=cells)
        .map(|j| band.v_min * rho.powf(j as f64 / cells as f64))
        .collect();
    edges[0] = band.v_min;
    *edges.last_mut().expect("non-empty") = band.v_max;
    edges
}

/// Projects a linear-binned speed histogram (`hist` over
/// `[hist_lo, hist_hi]`, uniform density within each bin) onto the
/// grid's cells. Mass outside the global band is clamped into the first
/// / last cell — those records exist and must be covered by *some*
/// band.
fn grid_mass(hist: &[u64], hist_lo: f64, hist_hi: f64, grid: &[f64]) -> Vec<f64> {
    let cells = grid.len() - 1;
    let mut mass = vec![0.0_f64; cells];
    if hist.is_empty() || hist_hi <= hist_lo {
        return mass;
    }
    #[allow(clippy::cast_precision_loss)]
    let bin_w = (hist_hi - hist_lo) / hist.len() as f64;
    let (v_min, v_max) = (grid[0], grid[cells]);
    for (i, &count) in hist.iter().enumerate() {
        if count == 0 {
            continue;
        }
        #[allow(clippy::cast_precision_loss)]
        let (b_lo, b_hi) = (hist_lo + i as f64 * bin_w, hist_lo + (i + 1) as f64 * bin_w);
        #[allow(clippy::cast_precision_loss)]
        let density = count as f64 / bin_w;
        // Clamped overflow: below the band into cell 0, above into the
        // last cell.
        mass[0] += density * (b_hi.min(v_min) - b_lo).max(0.0);
        mass[cells - 1] += density * (b_hi - b_lo.max(v_max)).max(0.0);
        for (c, m) in mass.iter_mut().enumerate() {
            *m += density * (b_hi.min(grid[c + 1]) - b_lo.max(grid[c])).max(0.0);
        }
    }
    mass
}

/// The penalized partition cost `Σ w_b·Δu_b² + κ·k` of a concrete edge
/// set under an observed speed histogram (linear bins over
/// `[hist_lo, hist_hi]`, weights normalized so `Σ w_b = 1`) — the
/// objective [`optimize_boundaries`] minimizes. Exposed so tests and
/// tuning harnesses can compare candidate layouts under the same
/// measure.
#[must_use]
pub fn partition_cost(
    edges: &[f64],
    hist: &[u64],
    hist_lo: f64,
    hist_hi: f64,
    band: SpeedBand,
    band_cost: f64,
) -> f64 {
    let grid = grid_edges(band, GRID_CELLS);
    let mass = grid_mass(hist, hist_lo, hist_hi, &grid);
    let total: f64 = mass.iter().sum();
    if total <= 0.0 {
        #[allow(clippy::cast_precision_loss)]
        return band_cost * (edges.len() - 1) as f64;
    }
    let mut cost = 0.0;
    for b in 0..edges.len() - 1 {
        let (lo, hi) = (edges[b], edges[b + 1]);
        let du = 1.0 / lo - 1.0 / hi;
        // Cell mass is uniform within a cell, so a band collects each
        // cell's mass in proportion to their overlap (edges need not
        // sit on the grid).
        let w: f64 = (0..mass.len())
            .map(|c| {
                let cell = grid[c + 1] - grid[c];
                mass[c] * ((hi.min(grid[c + 1]) - lo.max(grid[c])).max(0.0) / cell)
            })
            .sum();
        cost += (w / total) * du * du + band_cost;
    }
    cost
}

/// Closed-form boundary optimizer for a fixed band count `k`: cuts at
/// equal quantiles of `∫ g(u)^{1/3} du` (Panter–Dite companding; see
/// module docs), snapped to the optimizer's candidate grid. The `κ·k`
/// term plays no role here since `k` is given.
///
/// # Panics
/// If `k == 0`.
#[must_use]
pub fn analytic_edges(
    hist: &[u64],
    hist_lo: f64,
    hist_hi: f64,
    band: SpeedBand,
    k: usize,
) -> Vec<f64> {
    assert!(k > 0, "at least one band");
    let grid = grid_edges(band, GRID_CELLS);
    let mass = grid_mass(hist, hist_lo, hist_hi, &grid);
    if mass.iter().sum::<f64>() <= 0.0 {
        return geometric_edges(band, k);
    }
    // Per-cell companding mass: ∫ g^{1/3} du over the cell, with g
    // constant inside = m/Δu, is m^{1/3}·Δu^{2/3}. Accumulating in
    // ascending-v order is fine — orientation doesn't change quantiles.
    let phi: Vec<f64> = (0..mass.len())
        .map(|c| {
            let du = 1.0 / grid[c] - 1.0 / grid[c + 1];
            mass[c].cbrt() * du.powf(2.0 / 3.0)
        })
        .collect();
    let phi_total: f64 = phi.iter().sum();
    let mut edges = vec![band.v_min];
    let mut acc = 0.0;
    let mut cell = 0usize;
    for cut in 1..k {
        #[allow(clippy::cast_precision_loss)]
        let target = phi_total * cut as f64 / k as f64;
        while cell < phi.len() - 1 && acc + phi[cell] < target {
            acc += phi[cell];
            cell += 1;
        }
        // Snap to the nearer side of the straddling cell, keeping the
        // edges strictly increasing.
        let snapped = if target - acc > acc + phi[cell] - target {
            grid[cell + 1]
        } else {
            grid[cell]
        };
        if snapped > *edges.last().expect("non-empty") {
            edges.push(snapped);
        }
    }
    edges.push(band.v_max);
    edges
}

/// Optimal band edges for the observed velocity histogram: seeds with
/// the closed-form [`analytic_edges`] for each candidate `k`, then runs
/// an exact dynamic program over the candidate grid minimizing the
/// penalized cost `Σ w_b·Δu_b² + κ·k` with `k ≤ k_max` (the DP
/// subsumes every grid-snapped analytic solution, so the result is
/// never worse). An empty histogram yields [`geometric_edges`] with
/// `k_max` bands.
///
/// # Panics
/// If `k_max == 0`.
#[must_use]
pub fn optimize_boundaries(
    hist: &[u64],
    hist_lo: f64,
    hist_hi: f64,
    band: SpeedBand,
    k_max: usize,
    band_cost: f64,
) -> Vec<f64> {
    assert!(k_max > 0, "at least one band");
    let grid = grid_edges(band, GRID_CELLS);
    let mass = grid_mass(hist, hist_lo, hist_hi, &grid);
    let total: f64 = mass.iter().sum();
    if total <= 0.0 {
        return geometric_edges(band, k_max);
    }
    let n = mass.len();
    let prefix: Vec<f64> = std::iter::once(0.0)
        .chain(mass.iter().scan(0.0, |acc, &m| {
            *acc += m;
            Some(*acc)
        }))
        .collect();
    let seg_cost = |a: usize, b: usize| -> f64 {
        let du = 1.0 / grid[a] - 1.0 / grid[b];
        ((prefix[b] - prefix[a]) / total) * du * du + band_cost
    };
    // dp[k][i]: min cost of covering cells [0, i) with exactly k bands.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n + 1]; k_max + 1];
    let mut cut = vec![vec![0usize; n + 1]; k_max + 1];
    dp[0][0] = 0.0;
    for k in 1..=k_max {
        for i in k..=n {
            for j in (k - 1)..i {
                if dp[k - 1][j] < inf {
                    let c = dp[k - 1][j] + seg_cost(j, i);
                    if c < dp[k][i] {
                        dp[k][i] = c;
                        cut[k][i] = j;
                    }
                }
            }
        }
    }
    let best_k = (1..=k_max)
        .min_by(|&a, &b| dp[a][n].total_cmp(&dp[b][n]))
        .expect("k_max >= 1");
    let mut cells = vec![n];
    let (mut k, mut i) = (best_k, n);
    while k > 0 {
        i = cut[k][i];
        k -= 1;
        cells.push(i);
    }
    cells.reverse();
    cells.into_iter().map(|c| grid[c]).collect()
}

/// Band index of `speed` (a magnitude) under `edges`: out-of-range
/// speeds clamp into the first / last band.
fn band_of(edges: &[f64], speed: f64) -> usize {
    debug_assert!(edges.len() >= 2);
    let interior = &edges[1..edges.len() - 1];
    interior.partition_point(|&e| e <= speed)
}

/// The padded [`SpeedBand`] a sub-index uses so edge-sitting speeds
/// stay covered.
fn padded(lo: f64, hi: f64) -> SpeedBand {
    SpeedBand::new(lo * (1.0 - EDGE_PAD), hi * (1.0 + EDGE_PAD))
}

fn validate_edges(edges: &[f64], band: SpeedBand) {
    assert!(edges.len() >= 2, "edges must describe at least one band");
    assert!(
        edges.windows(2).all(|w| w[0] < w[1] && w[0].is_finite()),
        "edges must be finite and strictly increasing: {edges:?}"
    );
    assert!(
        edges[0] > 0.0 && (edges[0] - band.v_min).abs() < band.v_min * 1e-6,
        "first edge must sit at the global v_min"
    );
    let last = *edges.last().expect("non-empty");
    assert!(
        (last - band.v_max).abs() < band.v_max * 1e-6,
        "last edge must sit at the global v_max"
    );
}

impl VpDualIndex {
    /// Builds the index with equal-ratio initial boundaries (nothing is
    /// known about the velocity distribution yet — repartition once a
    /// histogram exists).
    ///
    /// # Panics
    /// If `cfg.bands` or `cfg.c` is zero.
    #[must_use]
    pub fn new(cfg: VpDualConfig) -> Self {
        Self::with_edges(cfg, geometric_edges(cfg.band, cfg.bands))
    }

    /// Builds the index with explicit initial band edges (spanning
    /// `cfg.band` exactly, strictly increasing).
    ///
    /// # Panics
    /// If the edges are malformed or `cfg.c == 0`.
    #[must_use]
    pub fn with_edges(cfg: VpDualConfig, edges: Vec<f64>) -> Self {
        assert!(cfg.bands > 0, "at least one band");
        assert!(cfg.c > 0, "at least one observation index per band");
        validate_edges(&edges, cfg.band);
        let k = edges.len() - 1;
        let subs = (0..k)
            .map(|b| {
                let mut sub =
                    DualBPlusIndex::new(Self::sub_cfg(&cfg, padded(edges[b], edges[b + 1])));
                sub.pin_roots(cfg.pin_roots);
                sub
            })
            .collect();
        VpDualIndex {
            cfg,
            edges,
            pending: None,
            subs,
            residents: vec![0; k],
            band_query: vec![BandCounters::default(); k],
            last_candidates: 0,
            repartitions: 0,
            moved_total: 0,
            scratch: Vec::new(),
        }
    }

    fn sub_cfg(cfg: &VpDualConfig, band: SpeedBand) -> DualBPlusConfig {
        DualBPlusConfig {
            c: cfg.c,
            terrain: cfg.terrain,
            band,
            tree: cfg.tree,
            maintain_subterrain: false,
            ..DualBPlusConfig::default()
        }
    }

    /// The configuration the index was built with.
    #[must_use]
    pub fn config(&self) -> &VpDualConfig {
        &self.cfg
    }

    /// Number of live bands.
    #[must_use]
    pub fn bands(&self) -> usize {
        self.edges.len() - 1
    }

    /// The current (published) band edges.
    #[must_use]
    pub fn band_edges(&self) -> &[f64] {
        &self.edges
    }

    /// Records resident per band (statics count toward band 0).
    #[must_use]
    pub fn residents(&self) -> &[u64] {
        &self.residents
    }

    /// Completed repartitions since construction.
    #[must_use]
    pub fn repartitions(&self) -> u64 {
        self.repartitions
    }

    /// Records migrated band-to-band across all repartitions.
    #[must_use]
    pub fn moved_total(&self) -> u64 {
        self.moved_total
    }

    /// Whether a repartition is in flight (begun but not finished).
    #[must_use]
    pub fn is_repartitioning(&self) -> bool {
        self.pending.is_some()
    }

    /// Optimal boundaries for this index's configuration given an
    /// observed speed histogram (linear bins over
    /// `[hist_lo, hist_hi]`) — [`optimize_boundaries`] with the
    /// configured `k_max` and per-band cost.
    #[must_use]
    pub fn plan_boundaries(&self, hist: &[u64], hist_lo: f64, hist_hi: f64) -> Vec<f64> {
        optimize_boundaries(
            hist,
            hist_lo,
            hist_hi,
            self.cfg.band,
            self.cfg.bands,
            self.cfg.band_cost,
        )
    }

    /// Routing table for writes: the pending edges during a
    /// repartition, the published edges otherwise.
    fn route_edges(&self) -> &[f64] {
        self.pending.as_deref().unwrap_or(&self.edges)
    }

    fn route(&self, m: &Motion1D) -> usize {
        if m.v == 0.0 {
            return 0; // statics live in band 0's static tree
        }
        band_of(self.route_edges(), m.v.abs())
    }

    /// Starts an incremental repartition to `new_edges` (step 1 of the
    /// module-level protocol): widens every sub-index band to cover its
    /// old and new extents and installs `new_edges` as the routing
    /// table for all subsequent writes. Queries remain exact
    /// throughout. Callers must snapshot the record population **after**
    /// this returns and feed it through
    /// [`migrate_chunk`](Self::migrate_chunk).
    ///
    /// # Panics
    /// If a repartition is already in flight or the edges are
    /// malformed.
    pub fn begin_repartition(&mut self, new_edges: Vec<f64>) {
        assert!(
            self.pending.is_none(),
            "repartition already in progress (finish it first)"
        );
        validate_edges(&new_edges, self.cfg.band);
        let new_k = new_edges.len() - 1;
        // Grow to the transitional layout: max(old_k, new_k) sub-indexes.
        while self.subs.len() < new_k {
            let b = self.subs.len();
            let mut sub = DualBPlusIndex::new(Self::sub_cfg(
                &self.cfg,
                padded(new_edges[b], new_edges[b + 1]),
            ));
            sub.pin_roots(self.cfg.pin_roots);
            self.subs.push(sub);
            self.residents.push(0);
            self.band_query.push(BandCounters::default());
        }
        for (b, sub) in self.subs.iter_mut().enumerate() {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            if b + 1 < self.edges.len() {
                lo = lo.min(self.edges[b]);
                hi = hi.max(self.edges[b + 1]);
            }
            if b + 1 < new_edges.len() {
                lo = lo.min(new_edges[b]);
                hi = hi.max(new_edges[b + 1]);
            }
            sub.set_band(padded(lo, hi));
        }
        self.pending = Some(new_edges);
    }

    /// Migrates one chunk of records toward the pending layout (step 2):
    /// every record whose old-layout and new-layout bands differ is
    /// removed from the old band and batch-inserted into the new one.
    /// Records absent from their old band are skipped — they were
    /// updated after [`begin_repartition`](Self::begin_repartition) and
    /// the pending routing already placed them. Returns how many
    /// records moved.
    ///
    /// # Panics
    /// If no repartition is in flight.
    pub fn migrate_chunk(&mut self, records: &[Motion1D]) -> usize {
        let pending = self.pending.clone().expect("no repartition in progress");
        let mut staged: Vec<Vec<Motion1D>> = vec![Vec::new(); self.subs.len()];
        for m in records {
            if m.v == 0.0 {
                continue; // statics are band-layout-independent
            }
            let speed = m.v.abs();
            let src = band_of(&self.edges, speed);
            let dst = band_of(&pending, speed);
            if src == dst || src >= self.subs.len() {
                continue;
            }
            if self.subs[src].remove(m) {
                self.residents[src] -= 1;
                staged[dst].push(*m);
            }
        }
        let mut moved = 0usize;
        for (dst, mut group) in staged.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            sort_by_dual_locality(&mut group);
            moved += group.len();
            self.residents[dst] += group.len() as u64;
            self.subs[dst].batch_update(&[], &group);
        }
        self.moved_total += moved as u64;
        moved
    }

    /// Publishes the pending layout (step 3): narrows every band to its
    /// exact new extent, drops bands beyond the new count, and resets
    /// the per-band query counters (the bands they described no longer
    /// exist).
    ///
    /// # Panics
    /// If no repartition is in flight, or a dropped band still holds
    /// records (a migration chunk was missed — failing loudly here
    /// beats silently losing records; the serving tier turns the panic
    /// into a shard rebuild).
    pub fn finish_repartition(&mut self) {
        let new_edges = self.pending.take().expect("no repartition in progress");
        let new_k = new_edges.len() - 1;
        for b in new_k..self.subs.len() {
            assert_eq!(
                self.residents[b], 0,
                "band {b} still holds records after migration"
            );
        }
        self.subs.truncate(new_k);
        self.residents.truncate(new_k);
        self.band_query.truncate(new_k);
        for (b, sub) in self.subs.iter_mut().enumerate() {
            sub.set_band(padded(new_edges[b], new_edges[b + 1]));
        }
        for counters in &mut self.band_query {
            *counters = BandCounters::default();
        }
        self.edges = new_edges;
        self.repartitions += 1;
    }

    /// One-shot repartition over a full record snapshot: begin, migrate
    /// everything, finish. Returns how many records moved. The serving
    /// tier chunks instead; this is for standalone use (benchmarks, the
    /// check harness).
    ///
    /// # Panics
    /// As the three protocol steps.
    pub fn repartition(&mut self, new_edges: Vec<f64>, records: &[Motion1D]) -> usize {
        self.begin_repartition(new_edges);
        let moved = self.migrate_chunk(records);
        self.finish_repartition();
        moved
    }

    /// Replaces the storage backend of every internal page store across
    /// all band sub-indexes, calling `make` once per store (see
    /// [`DualBPlusIndex::set_backends`]). Used by the model-checking
    /// harness to inject faults.
    pub fn set_backends(&mut self, make: &mut dyn FnMut() -> Box<dyn mobidx_pager::Backend>) {
        for sub in &mut self.subs {
            sub.set_backends(make);
        }
    }

    /// Visits the raw [`mobidx_pager::IoStats`] of every internal page
    /// store across all band sub-indexes, in [`Self::set_backends`]
    /// order.
    pub fn for_each_stats(&self, visit: &mut dyn FnMut(&mobidx_pager::IoStats)) {
        for sub in &self.subs {
            sub.for_each_stats(visit);
        }
    }
}

impl IndexStats for VpDualIndex {
    fn name(&self) -> String {
        format!("vp-dual (k={}, c={})", self.bands(), self.cfg.c)
    }

    fn clear_buffers(&mut self) {
        for sub in &mut self.subs {
            sub.clear_buffers();
        }
    }

    fn io_totals(&self) -> IoTotals {
        self.subs
            .iter()
            .fold(IoTotals::default(), |acc, sub| acc.merge(sub.io_totals()))
    }

    fn reset_io(&self) {
        for sub in &self.subs {
            sub.reset_io();
        }
    }

    fn last_candidates(&self) -> u64 {
        self.last_candidates
    }

    fn store_io(&self) -> Vec<(String, IoTotals)> {
        let mut stores = Vec::new();
        for (b, sub) in self.subs.iter().enumerate() {
            for (label, totals) in sub.store_io() {
                stores.push((format!("b{b}/{label}"), totals));
            }
        }
        stores
    }

    fn band_io(&self) -> Option<Vec<BandIo>> {
        Some(
            (0..self.subs.len())
                .map(|b| BandIo {
                    v_lo: self.edges.get(b).copied().unwrap_or(self.cfg.band.v_min),
                    v_hi: self
                        .edges
                        .get(b + 1)
                        .copied()
                        .unwrap_or(self.cfg.band.v_max),
                    residents: self.residents[b],
                    candidates: self.band_query[b].candidates,
                    results: self.band_query[b].results,
                })
                .collect(),
        )
    }

    fn set_backends(&mut self, make: &mut dyn FnMut() -> Box<dyn mobidx_pager::Backend>) {
        for sub in &mut self.subs {
            sub.set_backends(make);
        }
    }

    fn commit_group(&mut self) -> Result<(), (String, String)> {
        for (b, sub) in self.subs.iter_mut().enumerate() {
            sub.commit_group()
                .map_err(|(label, err)| (format!("b{b}/{label}"), err))?;
        }
        Ok(())
    }
}

impl Index1D for VpDualIndex {
    fn insert(&mut self, m: &Motion1D) {
        let b = self.route(m);
        self.residents[b] += 1;
        self.subs[b].insert(m);
    }

    fn remove(&mut self, m: &Motion1D) -> bool {
        let primary = self.route(m);
        if self.subs[primary].remove(m) {
            self.residents[primary] -= 1;
            return true;
        }
        // During (and immediately after) a repartition a record may
        // still sit in its old band; outside one this scan is a miss on
        // every band and correctly reports "absent".
        for b in 0..self.subs.len() {
            if b != primary && self.subs[b].remove(m) {
                self.residents[b] -= 1;
                return true;
            }
        }
        false
    }

    /// Batched write path: removals group per routed band and ride each
    /// sub-index's merged key-ordered pass; insertions group, re-sort by
    /// dual locality within their band, and take the grouped
    /// `insert_batch` descents. While a repartition is in flight
    /// removals fall back to the per-op path (a record may legitimately
    /// sit outside its routed band until its migration chunk lands, and
    /// the per-band grouped pass cannot tell *which* removal missed).
    fn batch_update(&mut self, removes: &[Motion1D], inserts: &[Motion1D]) -> usize {
        let k = self.subs.len();
        let mut found = 0usize;
        if self.pending.is_none() {
            let mut rm_groups: Vec<Vec<Motion1D>> = vec![Vec::new(); k];
            for m in removes {
                rm_groups[self.route(m)].push(*m);
            }
            for (b, group) in rm_groups.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let found_b = self.subs[b].batch_update(&group, &[]);
                self.residents[b] -= found_b as u64;
                found += found_b;
            }
        } else {
            for m in removes {
                if self.remove(m) {
                    found += 1;
                }
            }
        }
        let mut in_groups: Vec<Vec<Motion1D>> = vec![Vec::new(); k];
        for m in inserts {
            in_groups[self.route(m)].push(*m);
        }
        for (b, mut group) in in_groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            sort_by_dual_locality(&mut group);
            self.residents[b] += group.len() as u64;
            self.subs[b].batch_update(&[], &group);
        }
        found
    }

    fn search(&mut self, q: &MorQuery1D, out: &mut Vec<u64>) {
        out.clear();
        self.last_candidates = 0;
        let mut scratch = std::mem::take(&mut self.scratch);
        for b in 0..self.subs.len() {
            if self.residents[b] == 0 {
                continue; // empty band: skip the descents entirely
            }
            self.subs[b].search(q, &mut scratch);
            let candidates = self.subs[b].last_candidates();
            self.last_candidates += candidates;
            self.band_query[b].candidates += candidates;
            self.band_query[b].results += scratch.len() as u64;
            out.extend_from_slice(&scratch);
        }
        scratch.clear();
        self.scratch = scratch;
        out.sort_unstable();
        out.dedup();
    }

    fn freeze(&self) -> Option<Box<dyn FrozenIndex1D>> {
        let mut views = Vec::new();
        for (b, sub) in self.subs.iter().enumerate() {
            if self.residents[b] == 0 {
                continue;
            }
            views.push(sub.freeze()?);
        }
        Some(Box::new(FrozenVpDual { views }))
    }
}

/// The frozen view published by [`VpDualIndex`]: per-band frozen
/// dual-B+ views (empty bands omitted), answers merged through the
/// sorted-dedup contract.
struct FrozenVpDual {
    views: Vec<Box<dyn FrozenIndex1D>>,
}

impl FrozenIndex1D for FrozenVpDual {
    fn search(&self, q: &MorQuery1D, out: &mut Vec<u64>) -> FrozenReadStats {
        out.clear();
        let mut stats = FrozenReadStats::default();
        let mut scratch = Vec::new();
        for view in &self.views {
            stats = stats.merge(view.search(q, &mut scratch));
            out.extend_from_slice(&scratch);
        }
        out.sort_unstable();
        out.dedup();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::QueryRequest;
    use mobidx_workload::{brute_force_1d, Simulator1D, WorkloadConfig};

    fn small_cfg(bands: usize, c: usize) -> VpDualConfig {
        VpDualConfig {
            bands,
            c,
            tree: TreeConfig {
                leaf_cap: 16,
                branch_cap: 16,
                buffer_pages: 4,
            },
            ..VpDualConfig::default()
        }
    }

    /// Builds a linear-binned histogram of the objects' speed
    /// magnitudes over the global band, as the serving tier's
    /// `WorkloadProfile` would.
    fn speed_hist(objects: &[Motion1D], band: SpeedBand, bins: usize) -> Vec<u64> {
        let mut hist = vec![0u64; bins];
        #[allow(clippy::cast_precision_loss)]
        let w = (band.v_max - band.v_min) / bins as f64;
        for m in objects {
            if m.v == 0.0 {
                continue;
            }
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss,
                clippy::cast_precision_loss
            )]
            let bin = (((m.v.abs() - band.v_min) / w).floor() as usize).min(bins - 1);
            hist[bin] += 1;
        }
        hist
    }

    fn run_scenario(bands: usize, c: usize, yqmax: f64, tw: f64, seed: u64, repartition: bool) {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 600,
            updates_per_instant: 30,
            seed,
            ..WorkloadConfig::default()
        });
        let mut idx = VpDualIndex::new(small_cfg(bands, c));
        for m in sim.objects() {
            idx.insert(m);
        }
        for step in 0..30 {
            for u in sim.step() {
                assert!(idx.remove(&u.old), "step {step}: stale {:?}", u.old);
                idx.insert(&u.new);
            }
            if repartition && step % 10 == 5 {
                let band = idx.config().band;
                let hist = speed_hist(sim.objects(), band, 8);
                let edges = idx.plan_boundaries(&hist, band.v_min, band.v_max);
                idx.repartition(edges, sim.objects());
            }
            if step % 7 == 0 {
                for _ in 0..10 {
                    let q = sim.gen_query(yqmax, tw);
                    let got = idx.query(&QueryRequest::new(&q));
                    let want = brute_force_1d(sim.objects(), &q);
                    assert_eq!(got, want, "step {step} query {q:?}");
                }
            }
        }
    }

    #[test]
    fn large_queries_match_brute_force() {
        run_scenario(4, 2, 150.0, 60.0, 201, false);
    }

    #[test]
    fn small_queries_match_brute_force() {
        run_scenario(4, 2, 10.0, 20.0, 202, false);
    }

    #[test]
    fn other_shapes_also_exact() {
        run_scenario(1, 2, 150.0, 60.0, 203, false);
        run_scenario(6, 1, 150.0, 60.0, 204, false);
    }

    #[test]
    fn exact_across_mid_sequence_repartitions() {
        run_scenario(4, 2, 150.0, 60.0, 205, true);
        run_scenario(3, 2, 10.0, 20.0, 206, true);
    }

    #[test]
    fn exact_while_repartition_in_flight() {
        // Queries and updates interleave with migration chunks between
        // begin and finish; answers must stay exact at every point.
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 500,
            updates_per_instant: 50,
            seed: 207,
            ..WorkloadConfig::default()
        });
        let mut idx = VpDualIndex::new(small_cfg(4, 2));
        for m in sim.objects() {
            idx.insert(m);
        }
        let band = idx.config().band;
        let hist = speed_hist(sim.objects(), band, 8);
        let edges = optimize_boundaries(&hist, band.v_min, band.v_max, band, 3, 0.0);
        idx.begin_repartition(edges);
        assert!(idx.is_repartitioning());
        // Snapshot AFTER begin, as the protocol requires.
        let snapshot = sim.objects().to_vec();
        for (chunk_no, chunk) in snapshot.chunks(120).enumerate() {
            // Live traffic between chunks: updates route by pending
            // edges, removals fall back across bands.
            for u in sim.step() {
                assert!(idx.remove(&u.old), "chunk {chunk_no}: stale {:?}", u.old);
                idx.insert(&u.new);
            }
            for _ in 0..5 {
                let q = sim.gen_query(150.0, 60.0);
                let got = idx.query(&QueryRequest::new(&q));
                let want = brute_force_1d(sim.objects(), &q);
                assert_eq!(got, want, "mid-migration chunk {chunk_no}");
            }
            idx.migrate_chunk(chunk);
        }
        idx.finish_repartition();
        assert!(!idx.is_repartitioning());
        assert_eq!(idx.bands(), 3);
        for _ in 0..10 {
            let q = sim.gen_query(150.0, 60.0);
            let got = idx.query(&QueryRequest::new(&q));
            let want = brute_force_1d(sim.objects(), &q);
            assert_eq!(got, want, "post-migration");
        }
        // Nothing lost: residents reconcile with the population.
        let total: u64 = idx.residents().iter().sum();
        assert_eq!(total as usize, sim.objects().len());
    }

    #[test]
    fn batched_updates_match_per_op() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 400,
            updates_per_instant: 60,
            seed: 208,
            ..WorkloadConfig::default()
        });
        let mut idx = VpDualIndex::new(small_cfg(4, 2));
        for m in sim.objects() {
            idx.insert(m);
        }
        for step in 0..10 {
            let ups = sim.step();
            // Net per id (first old, last new), as the serving tier's
            // apply path does before handing a group to `batch_update`
            // — a twice-updated object must not remove a record whose
            // insert is later in the same batch.
            let mut net: std::collections::BTreeMap<u64, (Motion1D, Motion1D)> =
                std::collections::BTreeMap::new();
            for u in &ups {
                net.entry(u.old.id)
                    .and_modify(|e| e.1 = u.new)
                    .or_insert((u.old, u.new));
            }
            let removes: Vec<Motion1D> = net.values().map(|e| e.0).collect();
            let inserts: Vec<Motion1D> = net.values().map(|e| e.1).collect();
            let found = idx.batch_update(&removes, &inserts);
            assert_eq!(found, removes.len(), "step {step} lost a removal");
            let q = sim.gen_query(150.0, 60.0);
            let got = idx.query(&QueryRequest::new(&q));
            assert_eq!(got, brute_force_1d(sim.objects(), &q), "step {step}");
        }
    }

    #[test]
    fn static_objects_survive_repartitions() {
        let mut idx = VpDualIndex::new(small_cfg(4, 2));
        let parked = Motion1D {
            id: 1,
            t0: 0.0,
            y0: 500.0,
            v: 0.0,
        };
        let moving = Motion1D {
            id: 2,
            t0: 0.0,
            y0: 480.0,
            v: 1.0,
        };
        idx.insert(&parked);
        idx.insert(&moving);
        let band = idx.config().band;
        idx.repartition(geometric_edges(band, 2), &[parked, moving]);
        let q = MorQuery1D {
            y1: 495.0,
            y2: 505.0,
            t1: 10.0,
            t2: 30.0,
        };
        assert_eq!(idx.query(&QueryRequest::new(&q)), vec![1, 2]);
        assert!(idx.remove(&parked));
        assert!(!idx.remove(&parked));
        assert_eq!(idx.query(&QueryRequest::new(&q)), vec![2]);
    }

    #[test]
    fn frozen_view_matches_live() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 500,
            seed: 209,
            ..WorkloadConfig::default()
        });
        let mut idx = VpDualIndex::new(small_cfg(3, 2));
        for m in sim.objects() {
            idx.insert(m);
        }
        let frozen = idx.freeze().expect("no subterrain => freezable");
        let mut out = Vec::new();
        for _ in 0..20 {
            let q = sim.gen_query(150.0, 60.0);
            let stats = frozen.search(&q, &mut out);
            assert_eq!(out, brute_force_1d(sim.objects(), &q), "{q:?}");
            if !out.is_empty() {
                assert!(stats.candidates > 0);
            }
        }
    }

    #[test]
    fn fewer_false_hits_than_unpartitioned() {
        // The tentpole claim at unit scale: same records, same queries,
        // the partitioned facade scans strictly fewer candidates than a
        // single global-band dual-B+ with the same total page budget.
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 2000,
            seed: 210,
            ..WorkloadConfig::default()
        });
        let mut vp = VpDualIndex::new(small_cfg(4, 2));
        let mut flat = DualBPlusIndex::new(DualBPlusConfig {
            c: 6,
            tree: TreeConfig {
                leaf_cap: 16,
                branch_cap: 16,
                buffer_pages: 4,
            },
            ..DualBPlusConfig::default()
        });
        for m in sim.objects() {
            vp.insert(m);
            flat.insert(m);
        }
        let band = vp.config().band;
        let hist = speed_hist(sim.objects(), band, 8);
        let edges = vp.plan_boundaries(&hist, band.v_min, band.v_max);
        vp.repartition(edges, sim.objects());
        let (mut vp_cand, mut flat_cand) = (0u64, 0u64);
        for _ in 0..50 {
            let q = sim.gen_query(150.0, 60.0);
            let a = vp.query(&QueryRequest::new(&q));
            vp_cand += vp.last_candidates();
            let b = flat.query(&QueryRequest::new(&q));
            flat_cand += flat.last_candidates();
            assert_eq!(a, b);
        }
        assert!(
            vp_cand < flat_cand,
            "partitioning must cut candidate scans ({vp_cand} vs {flat_cand})"
        );
    }

    #[test]
    fn band_io_accounts_per_band() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 800,
            seed: 211,
            ..WorkloadConfig::default()
        });
        let mut idx = VpDualIndex::new(small_cfg(4, 2));
        for m in sim.objects() {
            idx.insert(m);
        }
        for _ in 0..20 {
            let q = sim.gen_query(150.0, 60.0);
            let _ = idx.query(&QueryRequest::new(&q));
        }
        let bands = idx.band_io().expect("vp-dual reports band io");
        assert_eq!(bands.len(), idx.bands());
        let residents: u64 = bands.iter().map(|b| b.residents).sum();
        assert_eq!(residents as usize, sim.objects().len());
        let candidates: u64 = bands.iter().map(|b| b.candidates).sum();
        assert!(candidates > 0, "queries must have scanned candidates");
        for b in &bands {
            assert!(b.v_lo < b.v_hi);
            assert!((0.0..=1.0).contains(&b.false_hit_rate()));
        }
        // An unpartitioned method reports none.
        assert!(DualBPlusIndex::new(DualBPlusConfig::default())
            .band_io()
            .is_none());
    }

    #[test]
    fn geometric_edges_shape() {
        let band = SpeedBand::paper();
        let e = geometric_edges(band, 4);
        assert_eq!(e.len(), 5);
        assert_eq!(e[0], band.v_min);
        assert_eq!(e[4], band.v_max);
        // Equal ratios.
        for w in e.windows(3) {
            assert!((w[1] / w[0] - w[2] / w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn optimizer_handles_empty_histogram() {
        let band = SpeedBand::paper();
        assert_eq!(
            optimize_boundaries(&[], 0.0, 0.0, band, 4, 0.01),
            geometric_edges(band, 4)
        );
        assert_eq!(
            optimize_boundaries(&[0, 0, 0], band.v_min, band.v_max, band, 3, 0.01),
            geometric_edges(band, 3)
        );
    }

    #[test]
    fn optimizer_never_worse_than_analytic_or_geometric() {
        let band = SpeedBand::paper();
        // A skewed two-population histogram: slow commuters + a fast
        // minority (the TwoBand drift shape).
        let hist = [400u64, 350, 60, 20, 10, 10, 80, 70];
        let cost = |edges: &[f64]| partition_cost(edges, &hist, band.v_min, band.v_max, band, 0.0);
        for k in [2usize, 3, 4] {
            let dp = optimize_boundaries(&hist, band.v_min, band.v_max, band, k, 0.0);
            let dp_cost = cost(&dp);
            let an = analytic_edges(&hist, band.v_min, band.v_max, band, k);
            let an_cost = cost(&an);
            let geo_cost = cost(&geometric_edges(band, k));
            assert!(
                dp_cost <= an_cost + 1e-12,
                "k={k}: dp {dp_cost} worse than analytic {an_cost}"
            );
            assert!(
                dp_cost <= geo_cost + 1e-12,
                "k={k}: dp {dp_cost} worse than geometric {geo_cost}"
            );
            // And the analytic closed form lands near the DP optimum on
            // this smooth-enough histogram.
            assert!(
                an_cost <= dp_cost * 1.35 + 1e-9,
                "k={k}: analytic {an_cost} far from dp {dp_cost}"
            );
        }
    }

    #[test]
    fn optimizer_spends_bands_where_mass_is() {
        let band = SpeedBand::new(0.1, 1.0);
        // All mass in the slowest eighth of the range — where Δu per
        // unit of v is largest. The optimizer must cut there.
        let hist = [1000u64, 0, 0, 0, 0, 0, 0, 1];
        let edges = optimize_boundaries(&hist, band.v_min, band.v_max, band, 4, 1e-6);
        let interior: Vec<f64> = edges[1..edges.len() - 1].to_vec();
        assert!(!interior.is_empty());
        // hist bin 0 covers [0.1, 0.2125); most cuts must land below it.
        let below = interior.iter().filter(|&&e| e < 0.25).count();
        assert!(
            below * 2 >= interior.len(),
            "cuts {interior:?} ignore the slow-speed mass"
        );
    }

    #[test]
    fn band_cost_penalty_prunes_bands() {
        let band = SpeedBand::paper();
        let hist = [100u64, 100, 100, 100, 100, 100, 100, 100];
        let cheap = optimize_boundaries(&hist, band.v_min, band.v_max, band, 6, 1e-6);
        // The paper band's total Δu² is ~32 and the first split saves
        // ~25 of it, so κ=100 must collapse the partition to one band.
        let pricey = optimize_boundaries(&hist, band.v_min, band.v_max, band, 6, 100.0);
        assert!(cheap.len() > pricey.len(), "{cheap:?} vs {pricey:?}");
        assert_eq!(pricey.len(), 2, "huge per-band cost forces one band");
    }

    #[test]
    #[should_panic(expected = "repartition already in progress")]
    fn double_begin_rejected() {
        let mut idx = VpDualIndex::new(small_cfg(2, 1));
        let band = idx.config().band;
        idx.begin_repartition(geometric_edges(band, 3));
        idx.begin_repartition(geometric_edges(band, 2));
    }
}
