//! The paper's baseline (§3.1, §5): trajectories as line segments in an
//! R\*-tree.
//!
//! Each object's known future trajectory — from its last update until it
//! must hit a terrain border and update again — is a line segment in the
//! `(t, y)` plane, stored by its MBR (the paper's 20-byte entry: two end
//! points + pointer, 204 per page). A MOR query is the rectangle
//! `[t1, t2] × [y1, y2]`; candidates whose MBR intersects are refined
//! against the exact segment.
//!
//! The paper's point, reproduced by Figures 6/7/9: the segments are
//! long, mutually overlapping, and share their "end of knowledge" times,
//! so MBRs overlap massively — queries touch much of the tree and
//! updates cost >90 I/Os.
//!
//! Answer semantics note: this method sees an object only until its
//! border hit (exactly what the database knows — the object *must*
//! update there), so its answers are defined by segment geometry; the
//! test oracle clips trajectories the same way.

use crate::method::{finish_ids, Index1D, IndexStats, IoTotals};
use mobidx_geom::{Point2, Rect2, Segment};
use mobidx_rstar::{RStarConfig, RStarTree};
use mobidx_workload::{MorQuery1D, Motion1D};

/// Configuration of the baseline.
#[derive(Debug, Clone, Copy)]
pub struct SegRTreeConfig {
    /// Terrain length (`y_max`) — determines border-hit times.
    pub terrain: f64,
    /// R\*-tree parameters.
    pub rstar: RStarConfig,
}

impl Default for SegRTreeConfig {
    fn default() -> Self {
        Self {
            terrain: 1000.0,
            rstar: RStarConfig::default(),
        }
    }
}

/// The line-segment R\*-tree baseline.
#[derive(Debug)]
pub struct SegRTreeIndex {
    tree: RStarTree<(u64, bool)>,
    cfg: SegRTreeConfig,
    last_candidates: u64,
}

impl SegRTreeIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new(cfg: SegRTreeConfig) -> Self {
        Self {
            tree: RStarTree::new(cfg.rstar),
            cfg,
            last_candidates: 0,
        }
    }

    /// The trajectory segment the database stores for `m`: from the last
    /// update to the border hit.
    #[must_use]
    pub fn segment_of(&self, m: &Motion1D) -> Segment {
        let t_hit = if m.v > 0.0 {
            m.t0 + (self.cfg.terrain - m.y0) / m.v
        } else if m.v < 0.0 {
            m.t0 + (0.0 - m.y0) / m.v
        } else {
            // Static object: the paper handles v ≈ 0 separately (§3.6);
            // represent it with a long horizontal segment.
            m.t0 + 1e6
        };
        let y_hit = m.position_at(t_hit).clamp(0.0, self.cfg.terrain);
        Segment::new(Point2::new(m.t0, m.y0), Point2::new(t_hit, y_hit))
    }

    /// The exact answer this method's knowledge defines (segment-clipped
    /// trajectories) — the test oracle.
    #[must_use]
    pub fn brute_force(&self, objects: &[Motion1D], q: &MorQuery1D) -> Vec<u64> {
        let rect = query_rect(q);
        finish_ids(
            objects
                .iter()
                .filter(|m| self.segment_of(m).intersects_rect(&rect))
                .map(|m| m.id)
                .collect(),
        )
    }

    fn entry_of(&self, m: &Motion1D) -> (Rect2, (u64, bool)) {
        let seg = self.segment_of(m);
        (seg.mbr(), (m.id, m.v >= 0.0))
    }
}

fn query_rect(q: &MorQuery1D) -> Rect2 {
    Rect2::from_bounds(q.t1, q.y1, q.t2, q.y2)
}

/// Reconstructs the stored segment from its MBR and orientation flag
/// (rising segments run lo→hi corner, falling ones the other diagonal).
fn segment_from_entry(mbr: &Rect2, rising: bool) -> Segment {
    if rising {
        Segment::new(mbr.lo, mbr.hi)
    } else {
        Segment::new(
            Point2::new(mbr.lo.x, mbr.hi.y),
            Point2::new(mbr.hi.x, mbr.lo.y),
        )
    }
}

impl IndexStats for SegRTreeIndex {
    fn name(&self) -> String {
        "seg-R*".to_owned()
    }

    fn clear_buffers(&mut self) {
        self.tree.clear_buffer();
    }

    fn io_totals(&self) -> IoTotals {
        IoTotals::from_stats(self.tree.stats())
    }

    fn reset_io(&self) {
        self.tree.stats().reset_io();
    }

    fn last_candidates(&self) -> u64 {
        self.last_candidates
    }

    fn set_backends(&mut self, make: &mut dyn FnMut() -> Box<dyn mobidx_pager::Backend>) {
        drop(self.tree.set_backend(make()));
    }
}

impl Index1D for SegRTreeIndex {
    fn insert(&mut self, m: &Motion1D) {
        let (mbr, item) = self.entry_of(m);
        self.tree.insert(mbr, item);
    }

    fn remove(&mut self, m: &Motion1D) -> bool {
        let (mbr, item) = self.entry_of(m);
        self.tree.remove(mbr, item)
    }

    fn search(&mut self, q: &MorQuery1D, out: &mut Vec<u64>) {
        out.clear();
        let rect = query_rect(q);
        let mut candidates = 0u64;
        let ids = &mut *out;
        self.tree.search_with(&rect, |mbr, (id, rising)| {
            candidates += 1;
            // Refine: the MBR intersects, does the segment?
            if segment_from_entry(&mbr, rising).intersects_rect(&rect) {
                ids.push(id);
            }
        });
        self.last_candidates = candidates;
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_workload::{Simulator1D, WorkloadConfig};

    fn small_index() -> SegRTreeIndex {
        SegRTreeIndex::new(SegRTreeConfig {
            terrain: 1000.0,
            rstar: RStarConfig::with_max(16),
        })
    }

    #[test]
    fn segment_ends_at_border() {
        let idx = small_index();
        let m = Motion1D {
            id: 1,
            t0: 0.0,
            y0: 900.0,
            v: 1.0,
        };
        let s = idx.segment_of(&m);
        assert!((s.b.x - 100.0).abs() < 1e-9);
        assert!((s.b.y - 1000.0).abs() < 1e-9);
        let m2 = Motion1D {
            id: 2,
            t0: 50.0,
            y0: 100.0,
            v: -0.5,
        };
        let s2 = idx.segment_of(&m2);
        assert!((s2.b.x - 250.0).abs() < 1e-9);
        assert!((s2.b.y - 0.0).abs() < 1e-9);
    }

    #[test]
    fn orientation_roundtrip() {
        let idx = small_index();
        for v in [0.7, -0.7] {
            let m = Motion1D {
                id: 1,
                t0: 10.0,
                y0: 500.0,
                v,
            };
            let seg = idx.segment_of(&m);
            let rebuilt = segment_from_entry(&seg.mbr(), v >= 0.0);
            assert!((rebuilt.a.x - seg.a.x).abs() < 1e-9);
            assert!((rebuilt.a.y - seg.a.y).abs() < 1e-9);
            assert!((rebuilt.b.y - seg.b.y).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_segment_oracle_under_updates() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 400,
            updates_per_instant: 25,
            seed: 5,
            ..WorkloadConfig::default()
        });
        let mut idx = small_index();
        for m in sim.objects() {
            idx.insert(m);
        }
        for _ in 0..30 {
            for u in sim.step() {
                assert!(idx.remove(&u.old), "stale record for {}", u.old.id);
                idx.insert(&u.new);
            }
        }
        for _ in 0..20 {
            let q = sim.gen_query(150.0, 60.0);
            let got = idx.query(&crate::method::QueryRequest::new(&q));
            let want = idx.brute_force(sim.objects(), &q);
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn empty_index_empty_answer() {
        let mut idx = small_index();
        let q = MorQuery1D {
            y1: 0.0,
            y2: 1000.0,
            t1: 0.0,
            t2: 100.0,
        };
        assert!(idx.query(&crate::method::QueryRequest::new(&q)).is_empty());
    }
}
